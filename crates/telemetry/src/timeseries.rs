//! Periodic registry sampling: the live half of the telemetry layer.
//!
//! [`crate::Snapshot`]s are post-mortem — one `STAT v1` block at
//! the end of a run. This module makes the registry observable *while the
//! run is in flight*: a [`Sampler`] periodically snapshots a registry and
//! delta-encodes the result against the previous sample (u64-only —
//! counters as monotonic deltas, gauges as absolute values, unchanged
//! metrics and histograms omitted), producing compact [`Sample`]s in the
//! versioned `STAT-STREAM v1` text format. A [`TimeSeries`] on the
//! consuming side re-applies the deltas in index order into a fixed-capacity
//! ring of reconstructed [`SeriesPoint`]s — the per-node time-indexed
//! series the [`watchdog`](crate::watchdog) consumes.
//!
//! The text format rides the same line-oriented control pipes as `STAT v1`:
//!
//! ```text
//! STAT-STREAM v1 <index> <at>
//! C <name> <delta>
//! G <name> <value>
//! END STAT-STREAM
//! ```
//!
//! `index` is a strictly sequential sample number (the consumer rejects
//! gaps, replays, and reordering); `at` is the producer's clock at sampling
//! time in its own tick units. All allocation while parsing is proportional
//! to the input text — the format carries no length fields a hostile peer
//! could inflate.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::registry::{MetricValue, Snapshot};

/// First line of one encoded sample: `STAT-STREAM v1 <index> <at>`.
pub const STREAM_HEADER: &str = "STAT-STREAM v1";

/// Last line of one encoded sample.
pub const STREAM_FOOTER: &str = "END STAT-STREAM";

/// One metric movement within a [`Sample`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Change {
    /// A counter advanced by `delta` since the previous sample (counters
    /// are monotonic, so the delta is a plain u64).
    Counter {
        /// Metric name.
        name: String,
        /// Increase since the previous sample.
        delta: u64,
    },
    /// A gauge moved to a new absolute `value` (gauges travel both ways;
    /// sending the absolute keeps the encoding u64-only).
    Gauge {
        /// Metric name.
        name: String,
        /// New absolute level.
        value: u64,
    },
}

impl Change {
    /// The metric name this change touches.
    pub fn name(&self) -> &str {
        match self {
            Change::Counter { name, .. } | Change::Gauge { name, .. } => name,
        }
    }
}

/// One delta-encoded periodic sample: everything that moved since the
/// previous sample, stamped with a sequential index and the producer's
/// clock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sample {
    /// Strictly sequential sample number (0, 1, 2, …).
    pub index: u64,
    /// Producer clock at sampling time (virtual ticks on the simulator,
    /// wall-clock ticks elsewhere).
    pub at: u64,
    /// Metrics that changed, in registry (sorted-name) order.
    pub changes: Vec<Change>,
}

impl Sample {
    /// Renders the `STAT-STREAM v1` text block (header, one line per
    /// change, footer — each line newline-terminated).
    pub fn to_text(&self) -> String {
        let mut out = format!("{STREAM_HEADER} {} {}\n", self.index, self.at);
        for change in &self.changes {
            match change {
                Change::Counter { name, delta } => {
                    out.push_str(&format!("C {name} {delta}\n"));
                }
                Change::Gauge { name, value } => {
                    out.push_str(&format!("G {name} {value}\n"));
                }
            }
        }
        out.push_str(STREAM_FOOTER);
        out.push('\n');
        out
    }

    /// Parses one `STAT-STREAM v1` block. Like
    /// [`Snapshot::parse`], lines before the header and after the footer
    /// are ignored (pipes carry unrelated traffic); malformed lines
    /// *inside* the block are errors. Never panics on hostile input, and
    /// allocates only in proportion to the input text.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed construct.
    pub fn parse(text: &str) -> Result<Sample, String> {
        let mut lines = text.lines();
        let header = loop {
            match lines.next() {
                Some(line) if line.trim_start().starts_with(STREAM_HEADER) => {
                    break line.trim_start();
                }
                Some(_) => continue,
                None => return Err(format!("missing `{STREAM_HEADER}` header")),
            }
        };
        let mut head = header[STREAM_HEADER.len()..].split_whitespace();
        let index: u64 = head
            .next()
            .ok_or("header missing sample index")?
            .parse()
            .map_err(|_| "sample index is not a u64".to_string())?;
        let at: u64 = head
            .next()
            .ok_or("header missing sample time")?
            .parse()
            .map_err(|_| "sample time is not a u64".to_string())?;
        if head.next().is_some() {
            return Err("trailing fields after sample header".to_string());
        }
        let mut changes = Vec::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if line == STREAM_FOOTER {
                return Ok(Sample { index, at, changes });
            }
            let mut fields = line.split_whitespace();
            let kind = fields.next().expect("trimmed non-empty line has a field");
            let name = fields
                .next()
                .ok_or_else(|| format!("`{kind}` line missing metric name"))?;
            let value: u64 = fields
                .next()
                .ok_or_else(|| format!("`{kind} {name}` missing value"))?
                .parse()
                .map_err(|_| format!("`{kind} {name}`: value is not a u64"))?;
            if fields.next().is_some() {
                return Err(format!("`{kind} {name}`: trailing fields"));
            }
            match kind {
                "C" => changes.push(Change::Counter {
                    name: name.to_string(),
                    delta: value,
                }),
                "G" => changes.push(Change::Gauge {
                    name: name.to_string(),
                    value,
                }),
                other => return Err(format!("unknown change kind `{other}`")),
            }
        }
        Err(format!("missing `{STREAM_FOOTER}` footer"))
    }
}

/// The producing side: delta-encodes successive registry snapshots.
///
/// Counters emit their increase since the previous sample, gauges their new
/// absolute value; metrics that did not move are omitted, histograms are
/// skipped entirely (the stream is u64-only — the final `STAT v1` block
/// still carries full distributions). The first sample is a delta against
/// an empty baseline, i.e. every nonzero metric in full.
#[derive(Debug, Default)]
pub struct Sampler {
    prev: BTreeMap<String, u64>,
    next_index: u64,
}

impl Sampler {
    /// A fresh sampler (next sample has index 0).
    pub fn new() -> Self {
        Sampler::default()
    }

    /// Index the next sample will carry.
    pub fn next_index(&self) -> u64 {
        self.next_index
    }

    /// Delta-encodes `snap` against the previous sample. A counter that
    /// (erroneously) moved backwards encodes as unchanged — the stream
    /// never carries negative movement.
    pub fn sample(&mut self, at: u64, snap: &Snapshot) -> Sample {
        let mut changes = Vec::new();
        for (name, value) in snap.iter() {
            match value {
                MetricValue::Counter(v) => {
                    let delta = v.saturating_sub(self.prev.get(name).copied().unwrap_or(0));
                    if delta > 0 {
                        changes.push(Change::Counter {
                            name: name.to_string(),
                            delta,
                        });
                        self.prev.insert(name.to_string(), *v);
                    }
                }
                MetricValue::Gauge(v) => {
                    if self.prev.get(name) != Some(v) {
                        changes.push(Change::Gauge {
                            name: name.to_string(),
                            value: *v,
                        });
                        self.prev.insert(name.to_string(), *v);
                    }
                }
                MetricValue::Histogram(_) => {}
            }
        }
        let index = self.next_index;
        self.next_index += 1;
        Sample { index, at, changes }
    }
}

/// One reconstructed point of a time-indexed series: the cumulative metric
/// state as of one applied [`Sample`].
#[derive(Clone, Debug)]
pub struct SeriesPoint {
    /// The applied sample's index.
    pub index: u64,
    /// The applied sample's producer clock.
    pub at: u64,
    /// Cumulative metric values after applying the sample.
    pub values: Snapshot,
}

/// The consuming side: a fixed-capacity ring of reconstructed
/// [`SeriesPoint`]s fed by applying [`Sample`]s in strict index order.
///
/// The ring bounds memory no matter how long the producer runs (oldest
/// points are evicted); the cumulative state is carried forward so a
/// point's [`SeriesPoint::values`] is always the full metric state, not
/// just the delta.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    capacity: usize,
    points: VecDeque<SeriesPoint>,
    state: Snapshot,
    next_index: Option<u64>,
    applied: u64,
}

impl TimeSeries {
    /// A series retaining the most recent `capacity` points (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        TimeSeries {
            capacity: capacity.max(1),
            points: VecDeque::new(),
            state: Snapshot::empty(),
            next_index: None,
            applied: 0,
        }
    }

    /// Applies one sample. The first sample may carry any index; every
    /// later one must carry exactly the previous index plus one —
    /// out-of-order, replayed, or gapped samples are rejected without
    /// mutating the series.
    ///
    /// # Errors
    ///
    /// The index-discipline violation, or a malformed change (an empty or
    /// whitespace-bearing metric name).
    pub fn apply(&mut self, sample: &Sample) -> Result<(), String> {
        if let Some(expected) = self.next_index {
            if sample.index != expected {
                return Err(format!(
                    "out-of-order sample: expected index {expected}, got {}",
                    sample.index
                ));
            }
        }
        for change in &sample.changes {
            let name = change.name();
            if !valid_stream_name(name) {
                return Err(format!("invalid metric name {name:?} in sample"));
            }
        }
        for change in &sample.changes {
            match change {
                Change::Counter { name, delta } => {
                    let cur = self.state.counter(name).unwrap_or(0);
                    self.state.set_counter(name, cur.saturating_add(*delta));
                }
                Change::Gauge { name, value } => {
                    self.state.set_gauge(name, *value);
                }
            }
        }
        if self.points.len() == self.capacity {
            self.points.pop_front();
        }
        self.points.push_back(SeriesPoint {
            index: sample.index,
            at: sample.at,
            values: self.state.clone(),
        });
        self.next_index = Some(sample.index + 1);
        self.applied += 1;
        Ok(())
    }

    /// Retained points, oldest first.
    pub fn points(&self) -> impl Iterator<Item = &SeriesPoint> {
        self.points.iter()
    }

    /// The most recent point.
    pub fn latest(&self) -> Option<&SeriesPoint> {
        self.points.back()
    }

    /// Retained point count (≤ capacity).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no sample has been applied yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total samples ever applied (including evicted ones).
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// The cumulative metric state after the latest applied sample.
    pub fn state(&self) -> &Snapshot {
        &self.state
    }
}

/// Validates a metric name for stream use (the registry enforces the same
/// rule at intern time).
pub fn valid_stream_name(name: &str) -> bool {
    !name.is_empty() && !name.chars().any(char::is_whitespace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_of(registry: &Registry, sampler: &mut Sampler, at: u64) -> Sample {
        sampler.sample(at, &registry.snapshot())
    }

    #[test]
    fn first_sample_carries_every_nonzero_metric() {
        let registry = Registry::new();
        registry.counter("a.count").add(3);
        registry.gauge("b.level").set(7);
        registry.histogram("c.hist").record(5); // u64-only: omitted
        let mut sampler = Sampler::new();
        let s = sample_of(&registry, &mut sampler, 100);
        assert_eq!(s.index, 0);
        assert_eq!(s.at, 100);
        assert_eq!(
            s.changes,
            vec![
                Change::Counter {
                    name: "a.count".into(),
                    delta: 3
                },
                Change::Gauge {
                    name: "b.level".into(),
                    value: 7
                },
            ]
        );
    }

    #[test]
    fn unchanged_metrics_are_omitted() {
        let registry = Registry::new();
        let c = registry.counter("a");
        let g = registry.gauge("b");
        c.add(5);
        g.set(2);
        let mut sampler = Sampler::new();
        let _ = sample_of(&registry, &mut sampler, 1);
        // Nothing moved: the next sample is empty.
        let s = sample_of(&registry, &mut sampler, 2);
        assert_eq!(s.index, 1);
        assert!(s.changes.is_empty());
        // Counter delta, gauge absolute.
        c.add(4);
        g.set(1);
        let s = sample_of(&registry, &mut sampler, 3);
        assert_eq!(
            s.changes,
            vec![
                Change::Counter {
                    name: "a".into(),
                    delta: 4
                },
                Change::Gauge {
                    name: "b".into(),
                    value: 1
                },
            ]
        );
    }

    #[test]
    fn text_round_trip() {
        let s = Sample {
            index: 42,
            at: 12345,
            changes: vec![
                Change::Counter {
                    name: "mesh.keepalives".into(),
                    delta: 9,
                },
                Change::Gauge {
                    name: "link.rtt_ewma.p3".into(),
                    value: 17,
                },
            ],
        };
        let text = s.to_text();
        assert!(text.starts_with("STAT-STREAM v1 42 12345\n"));
        assert!(text.ends_with("END STAT-STREAM\n"));
        assert_eq!(Sample::parse(&text).unwrap(), s);
    }

    #[test]
    fn parse_ignores_surrounding_pipe_traffic() {
        let text = format!(
            "PORT 1234\nnoise\n{}\n",
            Sample {
                index: 0,
                at: 5,
                changes: vec![],
            }
            .to_text()
        ) + "DONE\n";
        let s = Sample::parse(&text).unwrap();
        assert_eq!((s.index, s.at), (0, 5));
        assert!(s.changes.is_empty());
    }

    #[test]
    fn parse_rejects_malformed_blocks() {
        // Truncation: no footer.
        assert!(Sample::parse("STAT-STREAM v1 0 1\nC a 2\n").is_err());
        // Missing header entirely.
        assert!(Sample::parse("C a 2\nEND STAT-STREAM\n").is_err());
        // Bad index / time.
        assert!(Sample::parse("STAT-STREAM v1 x 1\nEND STAT-STREAM\n").is_err());
        assert!(Sample::parse("STAT-STREAM v1 1\nEND STAT-STREAM\n").is_err());
        assert!(Sample::parse("STAT-STREAM v1 1 2 3\nEND STAT-STREAM\n").is_err());
        // Garbage inside the block.
        assert!(Sample::parse("STAT-STREAM v1 0 1\nwhat\nEND STAT-STREAM\n").is_err());
        assert!(Sample::parse("STAT-STREAM v1 0 1\nC a\nEND STAT-STREAM\n").is_err());
        assert!(Sample::parse("STAT-STREAM v1 0 1\nC a -4\nEND STAT-STREAM\n").is_err());
        assert!(Sample::parse("STAT-STREAM v1 0 1\nX a 4\nEND STAT-STREAM\n").is_err());
        assert!(Sample::parse("STAT-STREAM v1 0 1\nG a 4 5\nEND STAT-STREAM\n").is_err());
    }

    #[test]
    fn series_reconstructs_cumulative_state() {
        let registry = Registry::new();
        let c = registry.counter("n.commits");
        let g = registry.gauge("n.floor");
        let mut sampler = Sampler::new();
        let mut series = TimeSeries::with_capacity(8);

        c.add(2);
        g.set(2);
        series
            .apply(&sample_of(&registry, &mut sampler, 10))
            .unwrap();
        c.add(3);
        g.set(5);
        series
            .apply(&sample_of(&registry, &mut sampler, 20))
            .unwrap();

        assert_eq!(series.len(), 2);
        let latest = series.latest().unwrap();
        assert_eq!(latest.at, 20);
        assert_eq!(latest.values.counter("n.commits"), Some(5));
        assert_eq!(latest.values.gauge("n.floor"), Some(5));
        // The older point still shows the older state.
        let first = series.points().next().unwrap();
        assert_eq!(first.values.counter("n.commits"), Some(2));
    }

    #[test]
    fn series_rejects_out_of_order_indices() {
        let mut series = TimeSeries::with_capacity(4);
        let s0 = Sample {
            index: 0,
            at: 1,
            changes: vec![],
        };
        let s2 = Sample {
            index: 2,
            at: 3,
            changes: vec![],
        };
        series.apply(&s0).unwrap();
        assert!(series.apply(&s0).is_err(), "replay must be rejected");
        assert!(series.apply(&s2).is_err(), "gap must be rejected");
        assert_eq!(series.len(), 1, "rejected samples must not mutate");
        let s1 = Sample {
            index: 1,
            at: 2,
            changes: vec![],
        };
        series.apply(&s1).unwrap();
        assert_eq!(series.applied(), 2);
    }

    #[test]
    fn series_ring_evicts_oldest() {
        let mut series = TimeSeries::with_capacity(2);
        for i in 0..5u64 {
            series
                .apply(&Sample {
                    index: i,
                    at: i * 10,
                    changes: vec![Change::Counter {
                        name: "c".into(),
                        delta: 1,
                    }],
                })
                .unwrap();
        }
        assert_eq!(series.len(), 2);
        assert_eq!(series.applied(), 5);
        // Cumulative state survives eviction.
        assert_eq!(series.latest().unwrap().values.counter("c"), Some(5));
        assert_eq!(series.points().next().unwrap().at, 30);
    }

    #[test]
    fn hostile_names_are_rejected() {
        let mut series = TimeSeries::with_capacity(2);
        let bad = Sample {
            index: 0,
            at: 0,
            changes: vec![Change::Gauge {
                name: String::new(),
                value: 1,
            }],
        };
        assert!(series.apply(&bad).is_err());
        assert!(valid_stream_name("a.b"));
        assert!(!valid_stream_name(""));
        assert!(!valid_stream_name("a b"));
    }
}
