//! The structured trace recorder: a bounded ring of typed events stamped
//! with substrate time, dumpable as JSONL and parseable back.
//!
//! Every substrate expresses `at` in **ticks** (the simulator's virtual
//! time directly; wall-clock substrates divide elapsed time by their tick
//! length), so dumps from different substrates of the same seeded run are
//! directly comparable — the meta line carries `tick_ns` to convert back
//! to wall time where it is meaningful.

use std::sync::Mutex;

/// Default ring capacity (events) when a caller has no better number.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// The effect variant a node handed its substrate (mirrors the sans-io
/// `Effect` enum without depending on it — telemetry sits below every
/// protocol crate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EffectKind {
    /// A point-to-point send.
    Send,
    /// A best-effort broadcast.
    Broadcast,
    /// A timer being armed.
    SetTimer,
    /// A timer being cancelled.
    CancelTimer,
    /// An observable output.
    Output,
    /// The node halting.
    Halt,
}

impl EffectKind {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            EffectKind::Send => "send",
            EffectKind::Broadcast => "broadcast",
            EffectKind::SetTimer => "set-timer",
            EffectKind::CancelTimer => "cancel-timer",
            EffectKind::Output => "output",
            EffectKind::Halt => "halt",
        }
    }

    /// Inverse of [`EffectKind::label`].
    pub fn from_label(label: &str) -> Option<Self> {
        Some(match label {
            "send" => EffectKind::Send,
            "broadcast" => EffectKind::Broadcast,
            "set-timer" => EffectKind::SetTimer,
            "cancel-timer" => EffectKind::CancelTimer,
            "output" => EffectKind::Output,
            "halt" => EffectKind::Halt,
            _ => return None,
        })
    }
}

/// What happened. Slot-stage events (`Submitted` → `Proposed` →
/// `Committed` → `AckQuorum`) drive the per-stage latency breakdown;
/// the rest profile the machinery underneath it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A node emitted an effect at the sans-io boundary.
    Effect {
        /// Which effect variant.
        kind: EffectKind,
    },
    /// A frame left the codec (wall-clock substrates).
    FrameEncoded {
        /// Encoded frame length in bytes.
        bytes: u64,
        /// Wall-clock encode cost in nanoseconds.
        nanos: u64,
    },
    /// A frame passed the codec inbound.
    FrameDecoded {
        /// Decoded payload length in bytes.
        bytes: u64,
        /// Wall-clock decode cost in nanoseconds.
        nanos: u64,
    },
    /// Something entered a queue.
    Enqueue {
        /// Which queue (see the `queues` constants).
        queue: u32,
        /// Queue depth after the enqueue.
        depth: u64,
    },
    /// Something left a queue.
    Dequeue {
        /// Which queue.
        queue: u32,
        /// Queue depth after the dequeue.
        depth: u64,
    },
    /// A timer was armed.
    TimerArmed {
        /// Delay in ticks.
        delay: u64,
    },
    /// A timer fired and its handler ran.
    TimerFired,
    /// One handler invocation's wall-clock cost.
    HandlerStep {
        /// Nanoseconds spent inside the handler plus its effect drain.
        nanos: u64,
    },
    /// A slot's client command batch finished arriving (stage 0).
    Submitted {
        /// Log slot.
        slot: u64,
    },
    /// A replica proposed the slot (stage 1).
    Proposed {
        /// Log slot.
        slot: u64,
    },
    /// A replica committed the slot (stage 2).
    Committed {
        /// Log slot.
        slot: u64,
    },
    /// A quorum of replicas acked the slot (stage 3).
    AckQuorum {
        /// Log slot.
        slot: u64,
    },
    /// The invariant watchdog raised an alarm (see
    /// [`watchdog`](crate::watchdog)).
    Alarm {
        /// Alarm class code ([`watchdog::AlarmClass::code`]).
        ///
        /// [`watchdog::AlarmClass::code`]: crate::watchdog::AlarmClass::code
        class: u32,
        /// Class-specific evidence (flat-for ticks, regressed floor, …).
        detail: u64,
    },
}

/// Well-known queue ids for [`TraceKind::Enqueue`]/[`TraceKind::Dequeue`].
pub mod queues {
    /// The simulator's central event queue.
    pub const SIM_EVENTS: u32 = 0;
    /// A wall-clock substrate's inbound message queue.
    pub const INBOX: u32 = 1;
    /// Base id of per-peer outbound queues: peer `p` is `OUTBOUND_BASE + p`.
    pub const OUTBOUND_BASE: u32 = 16;
}

/// One recorded event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Timestamp in ticks (virtual or wall-derived, per the meta line).
    pub at: u64,
    /// Process the event belongs to.
    pub node: u32,
    /// What happened.
    pub kind: TraceKind,
}

/// Run-level context written into a dump's first line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceMeta {
    /// Substrate label (`"sim"`, `"threaded"`, `"tcp"`).
    pub source: String,
    /// Nanoseconds per tick (0 when ticks are purely virtual).
    pub tick_ns: u64,
    /// Seed of the traced run.
    pub seed: u64,
}

#[derive(Debug)]
struct Ring {
    buf: Vec<TraceEvent>,
    /// Index of the oldest event once the ring is full.
    head: usize,
    dropped: u64,
}

/// A bounded, thread-shared ring of [`TraceEvent`]s. When full, the newest
/// event overwrites the oldest and the drop counter advances — recording
/// never blocks on capacity and never allocates after the ring fills.
#[derive(Debug)]
pub struct TraceRecorder {
    capacity: usize,
    ring: Mutex<Ring>,
}

impl TraceRecorder {
    /// A ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity trace ring records nothing");
        TraceRecorder {
            capacity,
            ring: Mutex::new(Ring {
                buf: Vec::new(),
                head: 0,
                dropped: 0,
            }),
        }
    }

    /// Records one event (O(1); overwrites the oldest event when full).
    pub fn record(&self, event: TraceEvent) {
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        if ring.buf.len() < self.capacity {
            ring.buf.push(event);
        } else {
            let head = ring.head;
            ring.buf[head] = event;
            ring.head = (head + 1) % self.capacity;
            ring.dropped += 1;
        }
    }

    /// Convenience constructor + record.
    pub fn record_at(&self, at: u64, node: u32, kind: TraceKind) {
        self.record(TraceEvent { at, node, kind });
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("trace ring poisoned").buf.len()
    }

    /// True if nothing was recorded (or everything was drained).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events overwritten so far.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("trace ring poisoned").dropped
    }

    /// Copies the retained events out in recording order (oldest first)
    /// without draining.
    pub fn events(&self) -> Vec<TraceEvent> {
        let ring = self.ring.lock().expect("trace ring poisoned");
        let mut out = Vec::with_capacity(ring.buf.len());
        out.extend_from_slice(&ring.buf[ring.head..]);
        out.extend_from_slice(&ring.buf[..ring.head]);
        out
    }

    /// Renders the retained events as a JSONL dump: one meta line, then one
    /// line per event, oldest first.
    pub fn dump(&self, meta: &TraceMeta) -> String {
        let events = self.events();
        let mut out = String::with_capacity(64 + events.len() * 48);
        out.push_str(&format!(
            "{{\"meta\":{{\"source\":\"{}\",\"tick_ns\":{},\"seed\":{},\"dropped\":{}}}}}\n",
            meta.source,
            meta.tick_ns,
            meta.seed,
            self.dropped()
        ));
        for ev in &events {
            out.push_str(&event_line(ev));
            out.push('\n');
        }
        out
    }
}

fn event_line(ev: &TraceEvent) -> String {
    let head = format!("{{\"at\":{},\"node\":{}", ev.at, ev.node);
    let tail = match ev.kind {
        TraceKind::Effect { kind } => format!(",\"ev\":\"effect\",\"kind\":\"{}\"", kind.label()),
        TraceKind::FrameEncoded { bytes, nanos } => {
            format!(",\"ev\":\"enc\",\"bytes\":{bytes},\"nanos\":{nanos}")
        }
        TraceKind::FrameDecoded { bytes, nanos } => {
            format!(",\"ev\":\"dec\",\"bytes\":{bytes},\"nanos\":{nanos}")
        }
        TraceKind::Enqueue { queue, depth } => {
            format!(",\"ev\":\"enq\",\"queue\":{queue},\"depth\":{depth}")
        }
        TraceKind::Dequeue { queue, depth } => {
            format!(",\"ev\":\"deq\",\"queue\":{queue},\"depth\":{depth}")
        }
        TraceKind::TimerArmed { delay } => format!(",\"ev\":\"timer-armed\",\"delay\":{delay}"),
        TraceKind::TimerFired => ",\"ev\":\"timer-fired\"".to_string(),
        TraceKind::HandlerStep { nanos } => format!(",\"ev\":\"step\",\"nanos\":{nanos}"),
        TraceKind::Submitted { slot } => format!(",\"ev\":\"submitted\",\"slot\":{slot}"),
        TraceKind::Proposed { slot } => format!(",\"ev\":\"proposed\",\"slot\":{slot}"),
        TraceKind::Committed { slot } => format!(",\"ev\":\"committed\",\"slot\":{slot}"),
        TraceKind::AckQuorum { slot } => format!(",\"ev\":\"ack-quorum\",\"slot\":{slot}"),
        TraceKind::Alarm { class, detail } => {
            format!(",\"ev\":\"alarm\",\"class\":{class},\"detail\":{detail}")
        }
    };
    format!("{head}{tail}}}")
}

/// A parsed trace dump.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceDump {
    /// The run context from the meta line.
    pub meta: TraceMeta,
    /// Events overwritten before the dump was taken.
    pub dropped: u64,
    /// Retained events, oldest first.
    pub events: Vec<TraceEvent>,
}

/// Scans `line` for `"key":<u64>`.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)?;
    let digits: String = line[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Scans `line` for `"key":"<string>"`.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)?;
    let rest = &line[at + pat.len()..];
    rest.split('"').next()
}

/// Parses a dump produced by [`TraceRecorder::dump`].
///
/// # Errors
///
/// A human-readable description of the first malformed line.
pub fn parse_dump(text: &str) -> Result<TraceDump, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let meta_line = lines.next().ok_or("empty trace dump")?;
    if !meta_line.contains("\"meta\"") {
        return Err(format!("first line is not a meta line: {meta_line:?}"));
    }
    let meta = TraceMeta {
        source: field_str(meta_line, "source")
            .ok_or("meta line missing source")?
            .to_string(),
        tick_ns: field_u64(meta_line, "tick_ns").ok_or("meta line missing tick_ns")?,
        seed: field_u64(meta_line, "seed").ok_or("meta line missing seed")?,
    };
    let dropped = field_u64(meta_line, "dropped").unwrap_or(0);
    let mut events = Vec::new();
    for line in lines {
        events.push(parse_event(line)?);
    }
    Ok(TraceDump {
        meta,
        dropped,
        events,
    })
}

fn parse_event(line: &str) -> Result<TraceEvent, String> {
    let at = field_u64(line, "at").ok_or_else(|| format!("event missing at: {line:?}"))?;
    let node =
        field_u64(line, "node").ok_or_else(|| format!("event missing node: {line:?}"))? as u32;
    let ev = field_str(line, "ev").ok_or_else(|| format!("event missing ev: {line:?}"))?;
    let need = |key: &str| {
        field_u64(line, key).ok_or_else(|| format!("{ev} event missing {key}: {line:?}"))
    };
    let kind = match ev {
        "effect" => {
            let label =
                field_str(line, "kind").ok_or_else(|| format!("effect missing kind: {line:?}"))?;
            TraceKind::Effect {
                kind: EffectKind::from_label(label)
                    .ok_or_else(|| format!("unknown effect kind {label:?}"))?,
            }
        }
        "enc" => TraceKind::FrameEncoded {
            bytes: need("bytes")?,
            nanos: need("nanos")?,
        },
        "dec" => TraceKind::FrameDecoded {
            bytes: need("bytes")?,
            nanos: need("nanos")?,
        },
        "enq" => TraceKind::Enqueue {
            queue: need("queue")? as u32,
            depth: need("depth")?,
        },
        "deq" => TraceKind::Dequeue {
            queue: need("queue")? as u32,
            depth: need("depth")?,
        },
        "timer-armed" => TraceKind::TimerArmed {
            delay: need("delay")?,
        },
        "timer-fired" => TraceKind::TimerFired,
        "step" => TraceKind::HandlerStep {
            nanos: need("nanos")?,
        },
        "submitted" => TraceKind::Submitted {
            slot: need("slot")?,
        },
        "proposed" => TraceKind::Proposed {
            slot: need("slot")?,
        },
        "committed" => TraceKind::Committed {
            slot: need("slot")?,
        },
        "ack-quorum" => TraceKind::AckQuorum {
            slot: need("slot")?,
        },
        "alarm" => TraceKind::Alarm {
            class: need("class")? as u32,
            detail: need("detail")?,
        },
        other => return Err(format!("unknown event type {other:?}")),
    };
    Ok(TraceEvent { at, node, kind })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent { at, node: 0, kind }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops_exactly() {
        let rec = TraceRecorder::new(3);
        for i in 0..5 {
            rec.record(ev(i, TraceKind::TimerFired));
        }
        assert_eq!(rec.dropped(), 2);
        let ats: Vec<u64> = rec.events().iter().map(|e| e.at).collect();
        assert_eq!(ats, [2, 3, 4], "oldest evicted, order preserved");
    }

    #[test]
    fn dump_roundtrips_every_kind() {
        let rec = TraceRecorder::new(64);
        let kinds = [
            TraceKind::Effect {
                kind: EffectKind::Broadcast,
            },
            TraceKind::FrameEncoded {
                bytes: 48,
                nanos: 210,
            },
            TraceKind::FrameDecoded {
                bytes: 48,
                nanos: 95,
            },
            TraceKind::Enqueue { queue: 1, depth: 5 },
            TraceKind::Dequeue { queue: 1, depth: 4 },
            TraceKind::TimerArmed { delay: 30 },
            TraceKind::TimerFired,
            TraceKind::HandlerStep { nanos: 1200 },
            TraceKind::Submitted { slot: 7 },
            TraceKind::Proposed { slot: 7 },
            TraceKind::Committed { slot: 7 },
            TraceKind::AckQuorum { slot: 7 },
            TraceKind::Alarm {
                class: 1,
                detail: 640,
            },
        ];
        for (i, &kind) in kinds.iter().enumerate() {
            rec.record(TraceEvent {
                at: i as u64,
                node: i as u32,
                kind,
            });
        }
        let meta = TraceMeta {
            source: "sim".into(),
            tick_ns: 200_000,
            seed: 7,
        };
        let dump = parse_dump(&rec.dump(&meta)).unwrap();
        assert_eq!(dump.meta, meta);
        assert_eq!(dump.dropped, 0);
        assert_eq!(dump.events.len(), kinds.len());
        for (i, &kind) in kinds.iter().enumerate() {
            assert_eq!(dump.events[i].kind, kind);
        }
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_dump("").is_err());
        assert!(parse_dump("{\"at\":1}").is_err(), "no meta line");
        let meta = "{\"meta\":{\"source\":\"sim\",\"tick_ns\":0,\"seed\":0,\"dropped\":0}}";
        assert!(parse_dump(&format!("{meta}\n{{\"at\":1}}")).is_err());
        assert!(parse_dump(&format!("{meta}\n{{\"at\":1,\"node\":0,\"ev\":\"wat\"}}")).is_err());
    }

    #[test]
    fn effect_labels_roundtrip() {
        for kind in [
            EffectKind::Send,
            EffectKind::Broadcast,
            EffectKind::SetTimer,
            EffectKind::CancelTimer,
            EffectKind::Output,
            EffectKind::Halt,
        ] {
            assert_eq!(EffectKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(EffectKind::from_label("nope"), None);
    }
}
