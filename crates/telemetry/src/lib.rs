//! Unified observability layer for the minsync stack.
//!
//! Three pieces, shared by all three substrates (deterministic simulator,
//! threaded runtime, TCP cluster):
//!
//! - [`Registry`]: interned counter / gauge / log2-histogram handles with a
//!   self-describing text [`Snapshot`] format (`STAT v1` … `END STAT`) that
//!   survives a stdout control pipe and round-trips through
//!   [`Snapshot::parse`]. No floats and no allocation on the hot path —
//!   a counter bump is one relaxed atomic add.
//! - [`TraceRecorder`]: a bounded ring of typed [`TraceEvent`]s (effects,
//!   frame codec timing, queue enqueue/dequeue depths, timers, slot stage
//!   transitions) stamped with virtual ticks or monotonic time, dumpable
//!   as JSONL and re-loadable with [`parse_dump`].
//! - the [`analyze`] module: span pairing over a dump — per-slot stage
//!   timelines, the client→propose→commit→ack-quorum latency breakdown,
//!   top-k slowest slots, queue-residency percentiles — consumed by the
//!   `minsync-trace` CLI and the E16 experiment.
//! - the [`timeseries`] module: periodic registry sampling with the
//!   delta-encoded `STAT-STREAM v1` incremental format ([`Sampler`] on the
//!   producing side, [`TimeSeries`] ring reconstruction on the consuming
//!   side), so a run can be watched while it is still in flight.
//! - the [`watchdog`] module: an online invariant [`Watchdog`] over those
//!   samples — stall, divergence, quorum-regress, queue-saturation and
//!   auth-reject-rate alarms, mirrored into the trace ring and `STAT v1`.
//!
//! The crate is dependency-free so every other crate in the workspace can
//! link it without cycles or feature plumbing.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analyze;
pub mod registry;
pub mod timeseries;
pub mod trace;
pub mod watchdog;

pub use analyze::{
    codec_timing, diff_breakdown, queue_residency, slot_timelines, slowest_slots, stage_breakdown,
    stage_samples, Percentiles, SlotTimeline, StageStats, STAGE_LABELS,
};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, Registry, Snapshot, HIST_BUCKETS,
    SNAPSHOT_FOOTER, SNAPSHOT_HEADER,
};
pub use timeseries::{
    valid_stream_name, Change, Sample, Sampler, SeriesPoint, TimeSeries, STREAM_FOOTER,
    STREAM_HEADER,
};
pub use trace::{
    parse_dump, queues, EffectKind, TraceDump, TraceEvent, TraceKind, TraceMeta, TraceRecorder,
    DEFAULT_TRACE_CAPACITY,
};
pub use watchdog::{watch_name, Alarm, AlarmClass, Watchdog, WatchdogConfig, WATCH_PREFIX};
