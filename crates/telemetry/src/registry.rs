//! The metrics registry: interned counter/gauge/histogram handles, a text
//! snapshot format, and its parser.
//!
//! Hot-path discipline: recording into a [`Counter`], [`Gauge`], or
//! [`Histogram`] is one or three relaxed atomic adds — no floats, no locks,
//! no allocation. The registry's lock is taken only at *registration* time
//! (interning a name) and at *snapshot* time (end of run, or a periodic
//! report), never per sample.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of buckets in a [`Histogram`]: one per power of two of `u64`,
/// plus bucket 0 for the value zero.
pub const HIST_BUCKETS: usize = 64;

/// Bucket index of `v`: 0 for zero, otherwise the number of significant
/// bits clamped to the top bucket — bucket `b ≥ 1` covers
/// `[2^(b−1), 2^b − 1]`, and bucket 63 saturates at `u64::MAX`.
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `b`.
pub fn bucket_floor(b: usize) -> u64 {
    match b {
        0 => 0,
        _ => 1u64 << (b - 1),
    }
}

/// Inclusive upper bound of bucket `b` (the top bucket absorbs everything
/// up to `u64::MAX`).
pub fn bucket_ceil(b: usize) -> u64 {
    match b {
        0 => 0,
        b if b >= HIST_BUCKETS - 1 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

/// A monotonically increasing event count. Clones share the same cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (tests, default fields).
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins level (queue depth, live connections, a final report
/// value). Clones share the same cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Self {
        Gauge::default()
    }

    /// Overwrites the level.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the level by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Lowers the level by one, saturating at zero.
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistCore {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

/// A fixed-bucket log2 histogram: 64 power-of-two buckets, a sample count,
/// and a saturating sum. Recording is three relaxed adds — no floats on the
/// hot path; percentiles are estimated from the buckets at snapshot time.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistCore>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }))
    }
}

impl Histogram {
    /// A histogram not attached to any registry.
    pub fn detached() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let core = &self.0;
        core.count.fetch_add(1, Ordering::Relaxed);
        // Saturating accumulation: a wrapped sum would silently corrupt the
        // mean, a pinned one is visibly pegged at the ceiling.
        let _ = core
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
        core.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the current state out.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &self.0;
        HistogramSnapshot {
            count: core.count.load(Ordering::Relaxed),
            sum: core.sum.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| core.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
    /// Per-bucket sample counts (see [`bucket_of`]).
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Folds another snapshot into this one (bucket-wise; sums saturate).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
    }

    /// Nearest-rank percentile estimate: the upper bound of the bucket
    /// containing the rank (0 for an empty histogram). `p` is clamped to
    /// `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return bucket_ceil(b);
            }
        }
        bucket_ceil(HIST_BUCKETS - 1)
    }

    /// Arithmetic mean (0.0 when empty). Off the hot path by construction.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One metric's value inside a [`Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// A [`Counter`] reading.
    Counter(u64),
    /// A [`Gauge`] reading.
    Gauge(u64),
    /// A [`Histogram`] reading (boxed: the 64-bucket snapshot would
    /// otherwise inflate every counter/gauge entry to its size).
    Histogram(Box<HistogramSnapshot>),
}

/// A point-in-time copy of every metric in a [`Registry`], sorted by name —
/// the unit the text format serializes ([`Snapshot::to_text`] /
/// [`Snapshot::parse`]) and the cluster control pipe ships per replica.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    entries: Vec<(String, MetricValue)>,
}

/// First line of the text snapshot format (format version marker).
pub const SNAPSHOT_HEADER: &str = "STAT v1";
/// Last line of the text snapshot format.
pub const SNAPSHOT_FOOTER: &str = "END STAT";

impl Snapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        Snapshot::default()
    }

    /// True if no metric was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }

    fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    fn set(&mut self, name: &str, value: MetricValue) {
        match self.entries.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (name.to_string(), value)),
        }
    }

    /// Counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h.as_ref()),
            _ => None,
        }
    }

    /// Sum of every counter whose name starts with `prefix`.
    pub fn sum_counters(&self, prefix: &str) -> u64 {
        self.entries
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .filter_map(|(_, v)| match v {
                MetricValue::Counter(c) => Some(*c),
                _ => None,
            })
            .sum()
    }

    /// Inserts or replaces a counter entry (compat shims and tests; live
    /// code records through [`Registry`] handles instead).
    pub fn set_counter(&mut self, name: &str, v: u64) {
        check_name(name);
        self.set(name, MetricValue::Counter(v));
    }

    /// Inserts or replaces a gauge entry.
    pub fn set_gauge(&mut self, name: &str, v: u64) {
        check_name(name);
        self.set(name, MetricValue::Gauge(v));
    }

    /// Inserts or replaces a histogram entry.
    pub fn set_histogram(&mut self, name: &str, h: HistogramSnapshot) {
        check_name(name);
        self.set(name, MetricValue::Histogram(Box::new(h)));
    }

    /// Renders the line-oriented text format:
    ///
    /// ```text
    /// STAT v1
    /// CTR smr.future_drops 0
    /// GGE smr.committed_cmds 128
    /// HST wire.encode_ns 128 40960 5:10 6:118
    /// END STAT
    /// ```
    ///
    /// Every value is a named decimal `u64`; histogram lines carry
    /// `count sum` then the non-empty `bucket:count` pairs. The format is
    /// self-describing (no positional fields), so producers may add metrics
    /// without breaking older parsers.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(SNAPSHOT_HEADER);
        out.push('\n');
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("CTR {name} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("GGE {name} {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("HST {name} {} {}", h.count, h.sum));
                    for (b, &c) in h.buckets.iter().enumerate() {
                        if c > 0 {
                            out.push_str(&format!(" {b}:{c}"));
                        }
                    }
                    out.push('\n');
                }
            }
        }
        out.push_str(SNAPSHOT_FOOTER);
        out.push('\n');
        out
    }

    /// Parses text produced by [`Snapshot::to_text`]. Lines before the
    /// header and after the footer are ignored (the control pipe may wrap
    /// the block); malformed `CTR`/`GGE`/`HST` lines inside it are errors.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed line, or a
    /// missing header.
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let mut snap = Snapshot::empty();
        let mut inside = false;
        for line in text.lines() {
            let line = line.trim();
            if !inside {
                inside = line == SNAPSHOT_HEADER;
                continue;
            }
            if line == SNAPSHOT_FOOTER {
                return Ok(snap);
            }
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_ascii_whitespace();
            let tag = parts.next().unwrap_or_default();
            let name = parts
                .next()
                .ok_or_else(|| format!("snapshot line without a name: {line:?}"))?;
            let parse_u64 = |s: Option<&str>, what: &str| -> Result<u64, String> {
                s.ok_or_else(|| format!("snapshot line missing {what}: {line:?}"))?
                    .parse::<u64>()
                    .map_err(|_| format!("snapshot line has bad {what}: {line:?}"))
            };
            match tag {
                "CTR" => {
                    let v = parse_u64(parts.next(), "counter value")?;
                    snap.set(name, MetricValue::Counter(v));
                }
                "GGE" => {
                    let v = parse_u64(parts.next(), "gauge value")?;
                    snap.set(name, MetricValue::Gauge(v));
                }
                "HST" => {
                    let count = parse_u64(parts.next(), "histogram count")?;
                    let sum = parse_u64(parts.next(), "histogram sum")?;
                    let mut h = HistogramSnapshot {
                        count,
                        sum,
                        ..HistogramSnapshot::default()
                    };
                    for pair in parts {
                        let (b, c) = pair
                            .split_once(':')
                            .ok_or_else(|| format!("bad bucket pair {pair:?}: {line:?}"))?;
                        let b: usize = b
                            .parse()
                            .map_err(|_| format!("bad bucket index {pair:?}: {line:?}"))?;
                        if b >= HIST_BUCKETS {
                            return Err(format!("bucket index out of range: {line:?}"));
                        }
                        h.buckets[b] = c
                            .parse()
                            .map_err(|_| format!("bad bucket count {pair:?}: {line:?}"))?;
                    }
                    snap.set(name, MetricValue::Histogram(Box::new(h)));
                }
                _ => return Err(format!("unknown snapshot tag: {line:?}")),
            }
        }
        if inside {
            Err("snapshot footer missing".to_string())
        } else {
            Err("snapshot header missing".to_string())
        }
    }
}

fn check_name(name: &str) {
    assert!(
        !name.is_empty() && !name.contains(char::is_whitespace),
        "metric name must be non-empty and whitespace-free: {name:?}"
    );
}

#[derive(Debug, Default)]
struct Inner {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, Histogram)>,
}

/// The interning registry: one per process (or per replica), shared by
/// every layer that records metrics. Requesting the same name twice
/// returns a handle to the same cell, so layers can meet at a metric
/// without threading handles through constructors.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Interns (or retrieves) the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty or contains whitespace (the text format
    /// is whitespace-delimited).
    pub fn counter(&self, name: &str) -> Counter {
        check_name(name);
        let mut inner = self.inner.lock().expect("registry poisoned");
        if let Some((_, c)) = inner.counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter::detached();
        inner.counters.push((name.to_string(), c.clone()));
        c
    }

    /// Interns (or retrieves) the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty or contains whitespace.
    pub fn gauge(&self, name: &str) -> Gauge {
        check_name(name);
        let mut inner = self.inner.lock().expect("registry poisoned");
        if let Some((_, g)) = inner.gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let g = Gauge::detached();
        inner.gauges.push((name.to_string(), g.clone()));
        g
    }

    /// Interns (or retrieves) the histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty or contains whitespace.
    pub fn histogram(&self, name: &str) -> Histogram {
        check_name(name);
        let mut inner = self.inner.lock().expect("registry poisoned");
        if let Some((_, h)) = inner.histograms.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let h = Histogram::detached();
        inner.histograms.push((name.to_string(), h.clone()));
        h
    }

    /// Copies every metric out into a name-sorted [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("registry poisoned");
        let mut snap = Snapshot::empty();
        for (name, c) in &inner.counters {
            snap.set(name, MetricValue::Counter(c.get()));
        }
        for (name, g) in &inner.gauges {
            snap.set(name, MetricValue::Gauge(g.get()));
        }
        for (name, h) in &inner.histograms {
            snap.set(name, MetricValue::Histogram(Box::new(h.snapshot())));
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 63);
        for b in 0..HIST_BUCKETS {
            assert!(bucket_floor(b) <= bucket_ceil(b));
            assert_eq!(bucket_of(bucket_floor(b)), b);
            assert_eq!(bucket_of(bucket_ceil(b)), b);
        }
    }

    #[test]
    fn interning_shares_cells() {
        let reg = Registry::new();
        let a = reg.counter("x.hits");
        let b = reg.counter("x.hits");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let g = reg.gauge("x.depth");
        reg.gauge("x.depth").set(9);
        assert_eq!(g.get(), 9);
        g.dec();
        assert_eq!(g.get(), 8);
        let h = reg.histogram("x.lat");
        reg.histogram("x.lat").record(5);
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn gauge_dec_saturates() {
        let g = Gauge::detached();
        g.dec();
        assert_eq!(g.get(), 0);
    }

    #[test]
    #[should_panic(expected = "whitespace-free")]
    fn whitespace_names_rejected() {
        Registry::new().counter("bad name");
    }

    #[test]
    fn snapshot_roundtrips_through_text() {
        let reg = Registry::new();
        reg.counter("a.count").add(7);
        reg.gauge("b.level").set(u64::MAX);
        let h = reg.histogram("c.lat");
        for v in [0, 1, 3, 900, u64::MAX] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let parsed = Snapshot::parse(&snap.to_text()).unwrap();
        assert_eq!(parsed, snap);
        assert_eq!(parsed.counter("a.count"), Some(7));
        assert_eq!(parsed.gauge("b.level"), Some(u64::MAX));
        assert_eq!(parsed.histogram("c.lat").unwrap().count, 5);
    }

    #[test]
    fn parse_ignores_wrapping_lines_and_rejects_garbage() {
        let text = format!("noise\n{SNAPSHOT_HEADER}\nCTR a 1\n{SNAPSHOT_FOOTER}\ntrailing");
        let snap = Snapshot::parse(&text).unwrap();
        assert_eq!(snap.counter("a"), Some(1));
        assert!(Snapshot::parse("no header").is_err());
        assert!(Snapshot::parse(&format!("{SNAPSHOT_HEADER}\nCTR a 1")).is_err());
        assert!(
            Snapshot::parse(&format!("{SNAPSHOT_HEADER}\nXXX a 1\n{SNAPSHOT_FOOTER}")).is_err()
        );
        assert!(
            Snapshot::parse(&format!("{SNAPSHOT_HEADER}\nCTR a pear\n{SNAPSHOT_FOOTER}")).is_err()
        );
    }

    #[test]
    fn percentiles_estimate_to_bucket_ceilings() {
        let h = Histogram::detached();
        for _ in 0..99 {
            h.record(3); // bucket 2, ceil 3
        }
        h.record(1000); // bucket 10, ceil 1023
        let s = h.snapshot();
        assert_eq!(s.percentile(50.0), 3);
        assert_eq!(s.percentile(99.0), 3);
        assert_eq!(s.percentile(100.0), 1023);
        assert_eq!(HistogramSnapshot::default().percentile(50.0), 0);
    }

    #[test]
    fn merge_is_bucketwise() {
        let a = Histogram::detached();
        let b = Histogram::detached();
        a.record(1);
        b.record(1);
        b.record(100);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 102);
        assert_eq!(m.buckets[bucket_of(1)], 2);
        assert_eq!(m.buckets[bucket_of(100)], 1);
    }

    #[test]
    fn sum_counters_filters_by_prefix() {
        let mut s = Snapshot::empty();
        s.set_counter("mesh.drop.p0", 2);
        s.set_counter("mesh.drop.p1", 3);
        s.set_counter("smr.drop", 100);
        s.set_gauge("mesh.drop.level", 999);
        assert_eq!(s.sum_counters("mesh.drop."), 5);
    }
}
