//! The online invariant watchdog: typed liveness/safety alarms computed
//! from periodic metric samples while the run is still in flight.
//!
//! The watchdog is pure and substrate-agnostic: it consumes nothing but
//! `(source, at, values)` observations — cumulative [`Snapshot`]s as
//! reconstructed by [`TimeSeries`](crate::timeseries::TimeSeries) — and
//! emits typed [`Alarm`]s. It never inspects protocol state, so the same
//! engine runs inside a `minsync-node` process (self-monitoring its own
//! registry), beside the simulator (one global registry carrying every
//! replica), and at a cluster aggregator (one series per remote node).
//!
//! ## Metric-name contract
//!
//! Observations are keyed on well-known names:
//!
//! | name | kind | meaning |
//! |------|------|---------|
//! | `watch.p<i>.commit_floor` | gauge | replica `i`'s contiguous committed-slot floor |
//! | `watch.p<i>.ack_floor` | gauge | replica `i`'s cumulative ack (quorum) floor |
//! | `watch.p<i>.submitted` | gauge | commands replica `i` has admitted |
//! | `watch.p<i>.committed_cmds` | gauge | commands replica `i` has committed |
//! | `watch.p<i>.ckpt_slot` | gauge | replica `i`'s latest checkpointed slot |
//! | `watch.p<i>.ckpt_digest` | gauge | digest of `i`'s committed prefix at `ckpt_slot` |
//! | `link.rtt_ewma.*` | gauge | per-directed-link RTT estimate, in ticks |
//! | `link.backlog.*` | gauge | per-peer outbound queue depth |
//! | `mesh.auth_rejects` | counter | authentication rejects at the transport |
//!
//! ## Alarm classes
//!
//! * **Stall** — a replica's commit floor has been flat while commands were
//!   pending for longer than the stall horizon. The horizon is *derived
//!   from the observed network*: `max(min_stall_horizon, rtt_multiplier ×
//!   max(link.rtt_ewma.*))`, so a slow-but-moving network widens the
//!   window instead of tripping it.
//! * **Divergence** — two replicas reported different commit digests for
//!   the same checkpointed slot. This is the online mirror of the
//!   post-mortem digest comparison every experiment performs.
//! * **QuorumRegress** — a replica's ack (quorum) floor moved backwards,
//!   which the protocol's cumulative-ack design forbids.
//! * **QueueSaturation** — an outbound backlog gauge stayed at or above
//!   the limit for `backlog_strikes` consecutive observations.
//! * **AuthRejectRate** — the transport's MAC-reject counter advanced
//!   faster than the configured per-observation budget.
//!
//! Alarms are returned to the caller, retained in a bounded history,
//! mirrored into an attached trace ring as [`TraceKind::Alarm`] events,
//! and surfaced in `STAT v1` via `watchdog.alarms.*` counters when a
//! registry is attached — so a post-mortem snapshot shows what the live
//! plane saw.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use crate::registry::{Counter, MetricValue, Registry, Snapshot};
use crate::timeseries::SeriesPoint;
use crate::trace::{TraceKind, TraceRecorder};

/// Gauge-name prefix of the per-replica health gauges.
pub const WATCH_PREFIX: &str = "watch.p";

/// Builds the health-gauge name for replica `node`, field `field` (e.g.
/// `watch_name(3, "commit_floor")` → `"watch.p3.commit_floor"`).
pub fn watch_name(node: usize, field: &str) -> String {
    format!("{WATCH_PREFIX}{node}.{field}")
}

/// The typed alarm classes (codes are stable wire values used by
/// [`TraceKind::Alarm`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AlarmClass {
    /// Commit floor flat while submissions were pending, past the horizon.
    Stall,
    /// Conflicting commit digests for one checkpointed slot.
    Divergence,
    /// An ack/quorum floor moved backwards.
    QuorumRegress,
    /// An outbound backlog pinned at/above the limit.
    QueueSaturation,
    /// Transport auth rejects advancing past the per-observation budget.
    AuthRejectRate,
}

impl AlarmClass {
    /// Every class, in code order.
    pub const ALL: [AlarmClass; 5] = [
        AlarmClass::Stall,
        AlarmClass::Divergence,
        AlarmClass::QuorumRegress,
        AlarmClass::QueueSaturation,
        AlarmClass::AuthRejectRate,
    ];

    /// Stable numeric code (1-based; 0 is reserved).
    pub fn code(self) -> u32 {
        match self {
            AlarmClass::Stall => 1,
            AlarmClass::Divergence => 2,
            AlarmClass::QuorumRegress => 3,
            AlarmClass::QueueSaturation => 4,
            AlarmClass::AuthRejectRate => 5,
        }
    }

    /// Inverse of [`AlarmClass::code`].
    pub fn from_code(code: u32) -> Option<Self> {
        AlarmClass::ALL.into_iter().find(|c| c.code() == code)
    }

    /// Stable text label (used in `watchdog.alarms.<label>` counters).
    pub fn label(self) -> &'static str {
        match self {
            AlarmClass::Stall => "stall",
            AlarmClass::Divergence => "divergence",
            AlarmClass::QuorumRegress => "quorum_regress",
            AlarmClass::QueueSaturation => "queue_saturation",
            AlarmClass::AuthRejectRate => "auth_reject_rate",
        }
    }
}

/// One raised alarm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Alarm {
    /// What tripped.
    pub class: AlarmClass,
    /// The replica the evidence points at ([`Watchdog::GLOBAL`] when the
    /// evidence is not attributable to one replica).
    pub node: u32,
    /// Observation clock when the alarm was raised.
    pub at: u64,
    /// Class-specific evidence: flat-for duration (stall), slot
    /// (divergence), floor regression (quorum), backlog depth
    /// (saturation), reject delta (auth).
    pub detail: u64,
}

/// Tunable detection thresholds. Defaults suit tick-denominated clocks in
/// the few-thousand-ticks-per-run regime; experiments tighten or widen
/// them per substrate.
#[derive(Clone, Copy, Debug)]
pub struct WatchdogConfig {
    /// Stall horizon floor, in observation-clock units.
    pub min_stall_horizon: u64,
    /// Multiplier over the max observed `link.rtt_ewma.*` when deriving
    /// the stall horizon.
    pub rtt_multiplier: u64,
    /// Backlog depth at/above which an observation counts as a strike.
    pub backlog_limit: u64,
    /// Consecutive strikes before a [`AlarmClass::QueueSaturation`] fires.
    pub backlog_strikes: u32,
    /// Max tolerated `mesh.auth_rejects` advance between observations.
    pub auth_reject_limit: u64,
    /// Checkpointed slots kept for divergence comparison (older evicted).
    pub ckpt_window: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            min_stall_horizon: 2_000,
            rtt_multiplier: 64,
            backlog_limit: 1_024,
            backlog_strikes: 3,
            auth_reject_limit: 64,
            ckpt_window: 256,
        }
    }
}

/// Per-replica detection state.
#[derive(Debug, Default)]
struct NodeState {
    commit_floor: u64,
    floor_changed_at: u64,
    seen: bool,
    stalled: bool,
    ack_floor: Option<u64>,
}

/// Per-source (per observed registry) state for metrics that are not
/// replica-scoped by name.
#[derive(Debug, Default)]
struct SourceState {
    auth_rejects: Option<u64>,
    backlog_strikes: u32,
    saturated: bool,
}

/// One checkpoint-slot record for divergence comparison.
#[derive(Debug)]
struct CkptEntry {
    digest: u64,
    alarmed: bool,
}

/// Interned alarm counters (`watchdog.alarms` + one per class).
#[derive(Debug)]
struct AlarmCounters {
    total: Counter,
    per_class: Vec<(AlarmClass, Counter)>,
}

/// The watchdog engine. See the [module docs](self) for the detection
/// rules and the metric-name contract.
#[derive(Debug)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    trace: Option<Arc<TraceRecorder>>,
    counters: Option<AlarmCounters>,
    nodes: BTreeMap<u32, NodeState>,
    sources: BTreeMap<u32, SourceState>,
    ckpts: BTreeMap<u64, CkptEntry>,
    history: VecDeque<Alarm>,
    raised: u64,
}

/// Bounded alarm-history capacity.
const HISTORY_CAPACITY: usize = 1_024;

impl Watchdog {
    /// Source/node id for alarms not attributable to one replica.
    pub const GLOBAL: u32 = u32::MAX;

    /// A fresh watchdog with the given thresholds.
    pub fn new(cfg: WatchdogConfig) -> Self {
        Watchdog {
            cfg,
            trace: None,
            counters: None,
            nodes: BTreeMap::new(),
            sources: BTreeMap::new(),
            ckpts: BTreeMap::new(),
            history: VecDeque::new(),
            raised: 0,
        }
    }

    /// Mirrors every raised alarm into `trace` as a [`TraceKind::Alarm`]
    /// event (stamped with the observation clock and the alarm's node).
    pub fn with_trace(mut self, trace: Arc<TraceRecorder>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Surfaces alarm totals in `registry` as `watchdog.alarms` and
    /// `watchdog.alarms.<class>` counters, so the final `STAT v1` snapshot
    /// records what the live plane saw.
    pub fn with_registry(mut self, registry: &Registry) -> Self {
        self.counters = Some(AlarmCounters {
            total: registry.counter("watchdog.alarms"),
            per_class: AlarmClass::ALL
                .into_iter()
                .map(|c| {
                    (
                        c,
                        registry.counter(&format!("watchdog.alarms.{}", c.label())),
                    )
                })
                .collect(),
        });
        self
    }

    /// The configured thresholds.
    pub fn config(&self) -> &WatchdogConfig {
        &self.cfg
    }

    /// Feeds one observation: the cumulative metric state of `source` at
    /// observation clock `at`. Returns the alarms this observation raised
    /// (also retained in [`Watchdog::alarms`] and mirrored to the sinks).
    ///
    /// `source` identifies the registry being observed — the replica id
    /// when each replica streams its own registry, or one shared id (e.g.
    /// [`Watchdog::GLOBAL`]) when a single registry carries every replica,
    /// as on the simulator.
    pub fn observe(&mut self, source: u32, at: u64, values: &Snapshot) -> Vec<Alarm> {
        let mut alarms = Vec::new();
        let horizon = self.stall_horizon(values);

        // Replica-scoped rules, driven by whatever `watch.p<i>.*` gauges
        // this snapshot carries.
        for node in watch_nodes(values) {
            let field = |f: &str| values.gauge(&watch_name(node as usize, f));
            let commit_floor = field("commit_floor").unwrap_or(0);
            let submitted = field("submitted").unwrap_or(0);
            let committed_cmds = field("committed_cmds").unwrap_or(0);
            let pending = submitted.saturating_sub(committed_cmds);

            let state = self.nodes.entry(node).or_default();
            if !state.seen {
                state.seen = true;
                state.commit_floor = commit_floor;
                state.floor_changed_at = at;
            } else if commit_floor > state.commit_floor {
                state.commit_floor = commit_floor;
                state.floor_changed_at = at;
                state.stalled = false;
            }
            if pending == 0 {
                // Nothing owed: an idle replica is not a stalled one.
                state.floor_changed_at = at;
                state.stalled = false;
            } else {
                let flat_for = at.saturating_sub(state.floor_changed_at);
                if !state.stalled && flat_for >= horizon {
                    state.stalled = true;
                    alarms.push(Alarm {
                        class: AlarmClass::Stall,
                        node,
                        at,
                        detail: flat_for,
                    });
                }
            }

            if let Some(ack_floor) = field("ack_floor") {
                let state = self.nodes.entry(node).or_default();
                if let Some(prev) = state.ack_floor {
                    if ack_floor < prev {
                        alarms.push(Alarm {
                            class: AlarmClass::QuorumRegress,
                            node,
                            at,
                            detail: prev - ack_floor,
                        });
                    }
                }
                self.nodes.entry(node).or_default().ack_floor =
                    Some(ack_floor.max(self.nodes[&node].ack_floor.unwrap_or(0)));
            }

            if let (Some(slot), Some(digest)) = (field("ckpt_slot"), field("ckpt_digest")) {
                if let Some(alarm) = self.check_ckpt(node, at, slot, digest) {
                    alarms.push(alarm);
                }
            }
        }

        // Source-scoped rules: backlog saturation and auth-reject rate.
        let max_backlog = max_gauge_with_prefix(values, "link.backlog");
        let auth_rejects = values.counter("mesh.auth_rejects");
        let cfg = self.cfg;
        let src = self.sources.entry(source).or_default();
        match max_backlog {
            Some(depth) if depth >= cfg.backlog_limit => {
                src.backlog_strikes = src.backlog_strikes.saturating_add(1);
                if src.backlog_strikes >= cfg.backlog_strikes && !src.saturated {
                    src.saturated = true;
                    alarms.push(Alarm {
                        class: AlarmClass::QueueSaturation,
                        node: source,
                        at,
                        detail: depth,
                    });
                }
            }
            _ => {
                src.backlog_strikes = 0;
                src.saturated = false;
            }
        }
        if let Some(rejects) = auth_rejects {
            if let Some(prev) = src.auth_rejects {
                let delta = rejects.saturating_sub(prev);
                if delta > cfg.auth_reject_limit {
                    alarms.push(Alarm {
                        class: AlarmClass::AuthRejectRate,
                        node: source,
                        at,
                        detail: delta,
                    });
                }
            }
            src.auth_rejects = Some(rejects);
        }

        for alarm in &alarms {
            self.sink(*alarm);
        }
        alarms
    }

    /// Convenience wrapper over [`Watchdog::observe`] for a reconstructed
    /// series point.
    pub fn observe_point(&mut self, source: u32, point: &SeriesPoint) -> Vec<Alarm> {
        self.observe(source, point.at, &point.values)
    }

    /// Retained alarm history, oldest first (bounded; see
    /// [`Watchdog::raised`] for the unbounded total).
    pub fn alarms(&self) -> impl Iterator<Item = &Alarm> {
        self.history.iter()
    }

    /// Total alarms ever raised (including any evicted from the bounded
    /// history).
    pub fn raised(&self) -> u64 {
        self.raised
    }

    /// Alarms raised of one class (scans the bounded history).
    pub fn raised_of(&self, class: AlarmClass) -> usize {
        self.history.iter().filter(|a| a.class == class).count()
    }

    /// Stall horizon for this observation: `max(min_stall_horizon,
    /// rtt_multiplier × max(link.rtt_ewma.*))`.
    fn stall_horizon(&self, values: &Snapshot) -> u64 {
        let rtt = max_gauge_with_prefix(values, "link.rtt_ewma").unwrap_or(0);
        self.cfg
            .min_stall_horizon
            .max(rtt.saturating_mul(self.cfg.rtt_multiplier))
    }

    /// Records `node`'s checkpoint `(slot, digest)` and compares it with
    /// what other replicas reported for the same slot.
    fn check_ckpt(&mut self, node: u32, at: u64, slot: u64, digest: u64) -> Option<Alarm> {
        let alarm = match self.ckpts.get_mut(&slot) {
            None => {
                self.ckpts.insert(
                    slot,
                    CkptEntry {
                        digest,
                        alarmed: false,
                    },
                );
                None
            }
            Some(entry) if entry.digest == digest => None,
            Some(entry) if entry.alarmed => None,
            Some(entry) => {
                entry.alarmed = true;
                Some(Alarm {
                    class: AlarmClass::Divergence,
                    node,
                    at,
                    detail: slot,
                })
            }
        };
        // Evict checkpoints that fell out of the comparison window.
        while self.ckpts.len() > self.cfg.ckpt_window {
            let oldest = *self.ckpts.keys().next().expect("non-empty map");
            self.ckpts.remove(&oldest);
        }
        alarm
    }

    /// Retains `alarm` and mirrors it into the attached sinks.
    fn sink(&mut self, alarm: Alarm) {
        self.raised += 1;
        if self.history.len() == HISTORY_CAPACITY {
            self.history.pop_front();
        }
        self.history.push_back(alarm);
        if let Some(trace) = &self.trace {
            trace.record_at(
                alarm.at,
                alarm.node,
                TraceKind::Alarm {
                    class: alarm.class.code(),
                    detail: alarm.detail,
                },
            );
        }
        if let Some(counters) = &self.counters {
            counters.total.inc();
            if let Some((_, c)) = counters.per_class.iter().find(|(c, _)| *c == alarm.class) {
                c.inc();
            }
        }
    }
}

/// Replica ids present in `values` (every `watch.p<i>.…` name).
fn watch_nodes(values: &Snapshot) -> Vec<u32> {
    let mut nodes = Vec::new();
    for (name, _) in values.iter() {
        if let Some(rest) = name.strip_prefix(WATCH_PREFIX) {
            if let Some(id) = rest.split('.').next().and_then(|d| d.parse::<u32>().ok()) {
                if !nodes.contains(&id) {
                    nodes.push(id);
                }
            }
        }
    }
    nodes
}

/// Max gauge value among metrics whose name starts with `prefix`.
fn max_gauge_with_prefix(values: &Snapshot, prefix: &str) -> Option<u64> {
    values
        .iter()
        .filter(|(name, _)| name.starts_with(prefix))
        .filter_map(|(_, v)| match v {
            MetricValue::Gauge(g) => Some(*g),
            _ => None,
        })
        .max()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(entries: &[(&str, u64)]) -> Snapshot {
        let mut s = Snapshot::empty();
        for (name, v) in entries {
            s.set_gauge(name, *v);
        }
        s
    }

    fn cfg() -> WatchdogConfig {
        WatchdogConfig {
            min_stall_horizon: 100,
            rtt_multiplier: 10,
            backlog_limit: 50,
            backlog_strikes: 2,
            auth_reject_limit: 5,
            ckpt_window: 8,
        }
    }

    #[test]
    fn clean_progress_raises_nothing() {
        let mut wd = Watchdog::new(cfg());
        for i in 0..20u64 {
            let s = snap(&[
                ("watch.p0.commit_floor", i),
                ("watch.p0.submitted", 100),
                ("watch.p0.committed_cmds", i * 4),
            ]);
            assert!(wd.observe(0, i * 50, &s).is_empty(), "sample {i}");
        }
        assert_eq!(wd.raised(), 0);
    }

    #[test]
    fn flat_floor_with_pending_work_stalls_once() {
        let mut wd = Watchdog::new(cfg());
        let s = snap(&[
            ("watch.p1.commit_floor", 3),
            ("watch.p1.submitted", 10),
            ("watch.p1.committed_cmds", 6),
        ]);
        assert!(wd.observe(0, 0, &s).is_empty());
        assert!(wd.observe(0, 50, &s).is_empty(), "inside horizon");
        let alarms = wd.observe(0, 120, &s);
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].class, AlarmClass::Stall);
        assert_eq!(alarms[0].node, 1);
        assert_eq!(alarms[0].detail, 120);
        // Still flat: no re-raise until progress resumes.
        assert!(wd.observe(0, 500, &s).is_empty());
        // Progress re-arms the detector.
        let progressed = snap(&[
            ("watch.p1.commit_floor", 4),
            ("watch.p1.submitted", 10),
            ("watch.p1.committed_cmds", 8),
        ]);
        assert!(wd.observe(0, 510, &s).is_empty());
        assert!(wd.observe(0, 520, &progressed).is_empty());
        let again = wd.observe(0, 1_000, &progressed);
        assert_eq!(again.len(), 1, "a second stall episode fires again");
    }

    #[test]
    fn idle_replicas_never_stall() {
        let mut wd = Watchdog::new(cfg());
        let s = snap(&[
            ("watch.p0.commit_floor", 5),
            ("watch.p0.submitted", 20),
            ("watch.p0.committed_cmds", 20),
        ]);
        assert!(wd.observe(0, 0, &s).is_empty());
        assert!(wd.observe(0, 10_000, &s).is_empty());
    }

    #[test]
    fn observed_rtt_widens_the_stall_horizon() {
        let mut wd = Watchdog::new(cfg());
        let s = snap(&[
            ("watch.p0.commit_floor", 1),
            ("watch.p0.submitted", 10),
            ("watch.p0.committed_cmds", 2),
            ("link.rtt_ewma.p1", 40), // horizon = max(100, 10×40) = 400
        ]);
        assert!(wd.observe(0, 0, &s).is_empty());
        assert!(wd.observe(0, 200, &s).is_empty(), "inside widened horizon");
        let alarms = wd.observe(0, 450, &s);
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].class, AlarmClass::Stall);
    }

    #[test]
    fn divergent_checkpoints_trip_once_per_slot() {
        let mut wd = Watchdog::new(cfg());
        let a = snap(&[("watch.p0.ckpt_slot", 7), ("watch.p0.ckpt_digest", 0xAAAA)]);
        let b = snap(&[("watch.p1.ckpt_slot", 7), ("watch.p1.ckpt_digest", 0xBBBB)]);
        assert!(wd.observe(0, 10, &a).is_empty());
        let alarms = wd.observe(1, 20, &b);
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].class, AlarmClass::Divergence);
        assert_eq!(alarms[0].detail, 7);
        // The same conflicting report again must not re-fire.
        assert!(wd.observe(1, 30, &b).is_empty());
        // Matching digests at a new slot stay quiet.
        let a2 = snap(&[("watch.p0.ckpt_slot", 8), ("watch.p0.ckpt_digest", 0xCCCC)]);
        let b2 = snap(&[("watch.p1.ckpt_slot", 8), ("watch.p1.ckpt_digest", 0xCCCC)]);
        assert!(wd.observe(0, 40, &a2).is_empty());
        assert!(wd.observe(1, 50, &b2).is_empty());
    }

    #[test]
    fn ack_floor_regression_trips() {
        let mut wd = Watchdog::new(cfg());
        let hi = snap(&[("watch.p2.ack_floor", 9)]);
        let lo = snap(&[("watch.p2.ack_floor", 4)]);
        assert!(wd.observe(0, 0, &hi).is_empty());
        let alarms = wd.observe(0, 10, &lo);
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].class, AlarmClass::QuorumRegress);
        assert_eq!(alarms[0].detail, 5);
    }

    #[test]
    fn backlog_needs_consecutive_strikes() {
        let mut wd = Watchdog::new(cfg());
        let full = snap(&[("link.backlog.p3", 60)]);
        let ok = snap(&[("link.backlog.p3", 2)]);
        assert!(wd.observe(0, 0, &full).is_empty(), "one strike is noise");
        assert!(wd.observe(0, 1, &ok).is_empty(), "recovery resets strikes");
        assert!(wd.observe(0, 2, &full).is_empty());
        let alarms = wd.observe(0, 3, &full);
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].class, AlarmClass::QueueSaturation);
        assert_eq!(alarms[0].detail, 60);
        // Pinned: no re-fire until it drains.
        assert!(wd.observe(0, 4, &full).is_empty());
    }

    #[test]
    fn auth_reject_bursts_trip_per_interval() {
        let mut wd = Watchdog::new(cfg());
        let mut s = Snapshot::empty();
        s.set_counter("mesh.auth_rejects", 2);
        assert!(wd.observe(0, 0, &s).is_empty(), "baseline observation");
        s.set_counter("mesh.auth_rejects", 4);
        assert!(wd.observe(0, 1, &s).is_empty(), "slow trickle is fine");
        s.set_counter("mesh.auth_rejects", 40);
        let alarms = wd.observe(0, 2, &s);
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].class, AlarmClass::AuthRejectRate);
        assert_eq!(alarms[0].detail, 36);
    }

    #[test]
    fn sinks_record_alarms() {
        let registry = Registry::new();
        let trace = Arc::new(TraceRecorder::new(16));
        let mut wd = Watchdog::new(cfg())
            .with_registry(&registry)
            .with_trace(Arc::clone(&trace));
        let hi = snap(&[("watch.p0.ack_floor", 9)]);
        let lo = snap(&[("watch.p0.ack_floor", 1)]);
        wd.observe(0, 5, &hi);
        wd.observe(0, 6, &lo);
        assert_eq!(wd.raised(), 1);
        assert_eq!(wd.raised_of(AlarmClass::QuorumRegress), 1);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("watchdog.alarms"), Some(1));
        assert_eq!(snap.counter("watchdog.alarms.quorum_regress"), Some(1));
        let events = trace.events();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].kind,
            TraceKind::Alarm {
                class: AlarmClass::QuorumRegress.code(),
                detail: 8
            }
        );
        assert_eq!(events[0].at, 6);
    }

    #[test]
    fn class_codes_roundtrip() {
        for class in AlarmClass::ALL {
            assert_eq!(AlarmClass::from_code(class.code()), Some(class));
        }
        assert_eq!(AlarmClass::from_code(0), None);
        assert_eq!(AlarmClass::from_code(99), None);
    }

    #[test]
    fn watch_names_parse_back() {
        let s = snap(&[
            ("watch.p0.commit_floor", 1),
            ("watch.p12.commit_floor", 1),
            ("watch.p12.ack_floor", 1),
            ("watchx.p9.commit_floor", 1),
            ("link.rtt_ewma.p1", 1),
        ]);
        assert_eq!(watch_nodes(&s), vec![0, 12]);
        assert_eq!(watch_name(3, "ckpt_slot"), "watch.p3.ckpt_slot");
    }
}
