//! The span-pairing analyzer: folds a flat event stream into per-slot
//! stage timelines, per-stage latency breakdowns, queue-residency
//! percentiles, and codec timing — the read side of the trace recorder.

use std::collections::BTreeMap;

use crate::trace::{TraceEvent, TraceKind};

/// Exact nearest-rank percentiles over a raw sample set (the analyzer runs
/// offline, so unlike the registry's log2 histograms it can afford to keep
/// every sample).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Percentiles {
    /// Sample size.
    pub count: usize,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Maximum.
    pub max: u64,
}

impl Percentiles {
    /// Summarizes `samples` (order irrelevant; zeroes for an empty set).
    pub fn of(mut samples: Vec<u64>) -> Percentiles {
        samples.sort_unstable();
        if samples.is_empty() {
            return Percentiles::default();
        }
        let n = samples.len();
        let rank = |p: usize| samples[((p * n).div_ceil(100)).saturating_sub(1).min(n - 1)];
        Percentiles {
            count: n,
            p50: rank(50),
            p95: rank(95),
            p99: rank(99),
            max: samples[n - 1],
        }
    }
}

/// The earliest observation of each pipeline stage for one log slot
/// (earliest across nodes: the cluster-level view of when the slot reached
/// the stage anywhere).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlotTimeline {
    /// Log slot.
    pub slot: u64,
    /// Tick the slot's client batch finished arriving.
    pub submitted: Option<u64>,
    /// Tick the slot was first proposed.
    pub proposed: Option<u64>,
    /// Tick the slot was first committed.
    pub committed: Option<u64>,
    /// Tick a quorum of replicas had acked the slot.
    pub ack_quorum: Option<u64>,
}

impl SlotTimeline {
    /// End-to-end span covered by this timeline: first to last observed
    /// stage tick (`None` with fewer than two stages observed).
    pub fn total(&self) -> Option<u64> {
        let stages = [
            self.submitted,
            self.proposed,
            self.committed,
            self.ack_quorum,
        ];
        let first = stages.iter().flatten().min()?;
        let last = stages.iter().flatten().max()?;
        (last > first).then(|| last - first).or(Some(0))
    }
}

/// Folds slot-stage events into one [`SlotTimeline`] per slot, sorted by
/// slot. Non-stage events are ignored; repeated observations of a stage
/// keep the earliest tick.
pub fn slot_timelines(events: &[TraceEvent]) -> Vec<SlotTimeline> {
    let mut slots: BTreeMap<u64, SlotTimeline> = BTreeMap::new();
    let mut note = |slot: u64, at: u64, pick: fn(&mut SlotTimeline) -> &mut Option<u64>| {
        let tl = slots.entry(slot).or_insert_with(|| SlotTimeline {
            slot,
            ..SlotTimeline::default()
        });
        let cell = pick(tl);
        *cell = Some(cell.map_or(at, |prev| prev.min(at)));
    };
    for ev in events {
        match ev.kind {
            TraceKind::Submitted { slot } => note(slot, ev.at, |tl| &mut tl.submitted),
            TraceKind::Proposed { slot } => note(slot, ev.at, |tl| &mut tl.proposed),
            TraceKind::Committed { slot } => note(slot, ev.at, |tl| &mut tl.committed),
            TraceKind::AckQuorum { slot } => note(slot, ev.at, |tl| &mut tl.ack_quorum),
            _ => {}
        }
    }
    slots.into_values().collect()
}

/// One stage's latency summary across all slots that observed it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageStats {
    /// Stage label (e.g. `"propose→commit"`).
    pub stage: &'static str,
    /// Latency percentiles in ticks.
    pub latency: Percentiles,
}

/// The commit pipeline's stage transitions, in order.
pub const STAGE_LABELS: [&str; 3] = ["client→propose", "propose→commit", "commit→ack-quorum"];

/// Raw per-slot stage latencies (ticks), keyed by [`STAGE_LABELS`] — the
/// sample sets behind [`stage_breakdown`], exposed for benches that want
/// to re-aggregate (e.g. convert to nanoseconds first).
pub fn stage_samples(timelines: &[SlotTimeline]) -> Vec<(&'static str, Vec<u64>)> {
    type StageSpan = fn(&SlotTimeline) -> (Option<u64>, Option<u64>);
    let spans: [StageSpan; 3] = [
        |tl| (tl.submitted, tl.proposed),
        |tl| (tl.proposed, tl.committed),
        |tl| (tl.committed, tl.ack_quorum),
    ];
    STAGE_LABELS
        .iter()
        .zip(spans)
        .map(|(&label, span)| {
            let samples = timelines
                .iter()
                .filter_map(|tl| match span(tl) {
                    (Some(a), Some(b)) => Some(b.saturating_sub(a)),
                    _ => None,
                })
                .collect();
            (label, samples)
        })
        .collect()
}

/// Per-stage latency percentiles over `timelines`. Stages no slot observed
/// end-to-end report zero counts (a stage missing entirely usually means
/// the producer did not emit that event type — e.g. no `Submitted` events
/// in a run without client arrival times).
pub fn stage_breakdown(timelines: &[SlotTimeline]) -> Vec<StageStats> {
    stage_samples(timelines)
        .into_iter()
        .map(|(stage, samples)| StageStats {
            stage,
            latency: Percentiles::of(samples),
        })
        .collect()
}

/// The `k` slots with the largest end-to-end span, slowest first.
pub fn slowest_slots(timelines: &[SlotTimeline], k: usize) -> Vec<(u64, u64)> {
    let mut spans: Vec<(u64, u64)> = timelines
        .iter()
        .filter_map(|tl| tl.total().map(|t| (tl.slot, t)))
        .collect();
    spans.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    spans.truncate(k);
    spans
}

/// Queue residency per queue id: FIFO-pairs each `Dequeue` with the oldest
/// unmatched `Enqueue` of the same queue *on the same node* and summarizes
/// the tick deltas. Unmatched enqueues (still resident at dump time) are
/// dropped.
pub fn queue_residency(events: &[TraceEvent]) -> Vec<(u32, Percentiles)> {
    let mut waiting: BTreeMap<(u32, u32), std::collections::VecDeque<u64>> = BTreeMap::new();
    let mut samples: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    for ev in events {
        match ev.kind {
            TraceKind::Enqueue { queue, .. } => {
                waiting
                    .entry((ev.node, queue))
                    .or_default()
                    .push_back(ev.at);
            }
            TraceKind::Dequeue { queue, .. } => {
                if let Some(start) = waiting.entry((ev.node, queue)).or_default().pop_front() {
                    samples
                        .entry(queue)
                        .or_default()
                        .push(ev.at.saturating_sub(start));
                }
            }
            _ => {}
        }
    }
    samples
        .into_iter()
        .map(|(queue, s)| (queue, Percentiles::of(s)))
        .collect()
}

/// Codec cost summaries in nanoseconds: `("encode", …)` and
/// `("decode", …)` for whichever directions the trace observed.
pub fn codec_timing(events: &[TraceEvent]) -> Vec<(&'static str, Percentiles)> {
    let mut enc = Vec::new();
    let mut dec = Vec::new();
    for ev in events {
        match ev.kind {
            TraceKind::FrameEncoded { nanos, .. } => enc.push(nanos),
            TraceKind::FrameDecoded { nanos, .. } => dec.push(nanos),
            _ => {}
        }
    }
    let mut out = Vec::new();
    if !enc.is_empty() {
        out.push(("encode", Percentiles::of(enc)));
    }
    if !dec.is_empty() {
        out.push(("decode", Percentiles::of(dec)));
    }
    out
}

/// Lines comparing two stage breakdowns (`a` vs `b`), one per stage
/// observed on either side — the `minsync-trace` diff view.
pub fn diff_breakdown(a: &[StageStats], b: &[StageStats]) -> Vec<String> {
    let mut lines = Vec::new();
    for label in STAGE_LABELS {
        let find = |set: &[StageStats]| set.iter().find(|s| s.stage == label).map(|s| s.latency);
        let (la, lb) = (find(a), find(b));
        let (la, lb) = match (la, lb) {
            (None, None) => continue,
            pair => (pair.0.unwrap_or_default(), pair.1.unwrap_or_default()),
        };
        if la.count == 0 && lb.count == 0 {
            continue;
        }
        let ratio = if la.p50 > 0 {
            format!("{:.2}×", lb.p50 as f64 / la.p50 as f64)
        } else {
            "—".to_string()
        };
        lines.push(format!(
            "{label:<20} p50 {:>8} → {:>8} ({ratio})  p99 {:>8} → {:>8}",
            la.p50, lb.p50, la.p99, lb.p99
        ));
    }
    lines
}

/// Stages of `b` that regressed against baseline `a` by more than
/// `pct` percent — the gate behind `minsync-trace`'s `--fail-on`.
///
/// A stage regresses when its p50 or p99 exceeds the baseline's by more
/// than `pct`%; a stage whose baseline percentile is zero regresses on
/// any positive reading (there is no finite ratio to compare against).
/// Stages absent from either side, or observed by zero slots on the
/// *new* side, never regress — a producer that stopped emitting a stage
/// is a coverage change, not a latency one.
pub fn breakdown_regressions(a: &[StageStats], b: &[StageStats], pct: f64) -> Vec<String> {
    let mut lines = Vec::new();
    for label in STAGE_LABELS {
        let find = |set: &[StageStats]| set.iter().find(|s| s.stage == label).map(|s| s.latency);
        let (Some(la), Some(lb)) = (find(a), find(b)) else {
            continue;
        };
        if la.count == 0 || lb.count == 0 {
            continue;
        }
        let worse = |base: u64, new: u64| {
            if base == 0 {
                new > 0
            } else {
                new as f64 > base as f64 * (1.0 + pct / 100.0)
            }
        };
        for (which, base, new) in [("p50", la.p50, lb.p50), ("p99", la.p99, lb.p99)] {
            if worse(base, new) {
                lines.push(format!(
                    "{label}: {which} regressed {base} → {new} (> {pct}% over baseline)"
                ));
            }
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(at: u64, node: u32, kind: TraceKind) -> TraceEvent {
        TraceEvent { at, node, kind }
    }

    #[test]
    fn timelines_take_earliest_observation_per_stage() {
        let events = [
            stage(10, 0, TraceKind::Submitted { slot: 1 }),
            stage(12, 0, TraceKind::Proposed { slot: 1 }),
            stage(20, 1, TraceKind::Committed { slot: 1 }),
            stage(18, 0, TraceKind::Committed { slot: 1 }), // earlier on node 0
            stage(30, 0, TraceKind::AckQuorum { slot: 1 }),
            stage(40, 0, TraceKind::Proposed { slot: 2 }),
        ];
        let tls = slot_timelines(&events);
        assert_eq!(tls.len(), 2);
        assert_eq!(tls[0].slot, 1);
        assert_eq!(tls[0].committed, Some(18));
        assert_eq!(tls[0].total(), Some(20));
        assert_eq!(tls[1].proposed, Some(40));
        assert_eq!(tls[1].total(), Some(0), "single-stage slot spans zero");
    }

    #[test]
    fn breakdown_covers_the_three_transitions() {
        let events = [
            stage(0, 0, TraceKind::Submitted { slot: 1 }),
            stage(5, 0, TraceKind::Proposed { slot: 1 }),
            stage(25, 0, TraceKind::Committed { slot: 1 }),
            stage(40, 0, TraceKind::AckQuorum { slot: 1 }),
        ];
        let stats = stage_breakdown(&slot_timelines(&events));
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[0].stage, "client→propose");
        assert_eq!(stats[0].latency.p50, 5);
        assert_eq!(stats[1].latency.p50, 20);
        assert_eq!(stats[2].latency.p50, 15);
    }

    #[test]
    fn slowest_slots_rank_by_span() {
        let events = [
            stage(0, 0, TraceKind::Proposed { slot: 1 }),
            stage(10, 0, TraceKind::Committed { slot: 1 }),
            stage(0, 0, TraceKind::Proposed { slot: 2 }),
            stage(50, 0, TraceKind::Committed { slot: 2 }),
        ];
        let tls = slot_timelines(&events);
        assert_eq!(slowest_slots(&tls, 1), [(2, 50)]);
        assert_eq!(slowest_slots(&tls, 10), [(2, 50), (1, 10)]);
    }

    #[test]
    fn queue_residency_pairs_fifo_per_node() {
        let events = [
            stage(0, 0, TraceKind::Enqueue { queue: 1, depth: 1 }),
            stage(2, 0, TraceKind::Enqueue { queue: 1, depth: 2 }),
            stage(3, 1, TraceKind::Enqueue { queue: 1, depth: 1 }), // other node
            stage(5, 0, TraceKind::Dequeue { queue: 1, depth: 1 }), // pairs with at=0
            stage(6, 0, TraceKind::Dequeue { queue: 1, depth: 0 }), // pairs with at=2
        ];
        let res = queue_residency(&events);
        assert_eq!(res.len(), 1);
        let (queue, p) = res[0];
        assert_eq!(queue, 1);
        assert_eq!(p.count, 2, "node 1's enqueue stays unmatched");
        assert_eq!(p.max, 5);
    }

    #[test]
    fn codec_timing_splits_directions() {
        let events = [
            stage(
                0,
                0,
                TraceKind::FrameEncoded {
                    bytes: 8,
                    nanos: 100,
                },
            ),
            stage(
                0,
                0,
                TraceKind::FrameDecoded {
                    bytes: 8,
                    nanos: 40,
                },
            ),
            stage(
                0,
                0,
                TraceKind::FrameDecoded {
                    bytes: 8,
                    nanos: 60,
                },
            ),
        ];
        let timing = codec_timing(&events);
        assert_eq!(timing.len(), 2);
        assert_eq!(timing[0].0, "encode");
        assert_eq!(timing[1].1.count, 2);
        assert!(codec_timing(&[]).is_empty());
    }

    #[test]
    fn diff_lines_report_ratios() {
        let a = stage_breakdown(&slot_timelines(&[
            stage(0, 0, TraceKind::Proposed { slot: 1 }),
            stage(10, 0, TraceKind::Committed { slot: 1 }),
        ]));
        let b = stage_breakdown(&slot_timelines(&[
            stage(0, 0, TraceKind::Proposed { slot: 1 }),
            stage(30, 0, TraceKind::Committed { slot: 1 }),
        ]));
        let lines = diff_breakdown(&a, &b);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("propose→commit"));
        assert!(lines[0].contains("3.00×"));
    }

    #[test]
    fn regressions_gate_on_p50_and_p99() {
        let base = stage_breakdown(&slot_timelines(&[
            stage(0, 0, TraceKind::Proposed { slot: 1 }),
            stage(10, 0, TraceKind::Committed { slot: 1 }),
        ]));
        let slower = stage_breakdown(&slot_timelines(&[
            stage(0, 0, TraceKind::Proposed { slot: 1 }),
            stage(30, 0, TraceKind::Committed { slot: 1 }),
        ]));
        // 3× is a regression at 25% but not at 300%.
        let hits = breakdown_regressions(&base, &slower, 25.0);
        assert_eq!(hits.len(), 2, "p50 and p99 both tripled: {hits:?}");
        assert!(hits[0].contains("propose→commit"));
        assert!(breakdown_regressions(&base, &slower, 300.0).is_empty());
        // Unchanged and improved runs never trip.
        assert!(breakdown_regressions(&base, &base, 0.0).is_empty());
        assert!(breakdown_regressions(&slower, &base, 25.0).is_empty());
    }

    #[test]
    fn regressions_treat_zero_baseline_as_any_positive() {
        // Proposed and committed at the same tick: baseline latency 0.
        let base = stage_breakdown(&slot_timelines(&[
            stage(5, 0, TraceKind::Proposed { slot: 1 }),
            stage(5, 0, TraceKind::Committed { slot: 1 }),
        ]));
        let nonzero = stage_breakdown(&slot_timelines(&[
            stage(5, 0, TraceKind::Proposed { slot: 1 }),
            stage(6, 0, TraceKind::Committed { slot: 1 }),
        ]));
        assert!(!breakdown_regressions(&base, &nonzero, 1000.0).is_empty());
        // A stage that vanished from the new side is coverage, not latency.
        let empty = stage_breakdown(&slot_timelines(&[]));
        assert!(breakdown_regressions(&base, &empty, 0.0).is_empty());
    }

    #[test]
    fn percentiles_match_nearest_rank() {
        let p = Percentiles::of((1..=100).collect());
        assert_eq!((p.p50, p.p95, p.p99, p.max), (50, 95, 99, 100));
        assert_eq!(Percentiles::of(Vec::new()), Percentiles::default());
    }

    #[test]
    fn analyzers_accept_an_empty_dump() {
        assert!(slot_timelines(&[]).is_empty());
        let stats = stage_breakdown(&[]);
        assert_eq!(stats.len(), STAGE_LABELS.len(), "all stages still listed");
        for s in stats {
            assert_eq!(s.latency, Percentiles::default());
        }
        assert!(slowest_slots(&[], 5).is_empty());
        assert!(queue_residency(&[]).is_empty());
        assert!(codec_timing(&[]).is_empty());
        assert!(diff_breakdown(&stage_breakdown(&[]), &stage_breakdown(&[])).is_empty());
    }

    #[test]
    fn analyzers_accept_a_single_event_dump() {
        // One lone stage observation: a timeline with a zero span, no
        // stage transition completed, nothing resident in any queue.
        let events = [stage(7, 0, TraceKind::Committed { slot: 3 })];
        let tls = slot_timelines(&events);
        assert_eq!(tls.len(), 1);
        assert_eq!(tls[0].total(), Some(0));
        for s in stage_breakdown(&tls) {
            assert_eq!(s.latency.count, 0, "{} completed from one event", s.stage);
        }
        assert_eq!(slowest_slots(&tls, 5), [(3, 0)]);
        // A lone dequeue (its enqueue predates the dump) yields no sample.
        let torn = [stage(7, 0, TraceKind::Dequeue { queue: 1, depth: 0 })];
        assert!(queue_residency(&torn).is_empty());
    }

    /// A ring-wrapped dump: the recorder evicted the oldest events, so the
    /// surviving window opens mid-flight — enqueues and early stage marks
    /// of old slots are gone. The analyzers must fold what remains without
    /// inventing samples for the missing halves.
    #[test]
    fn analyzers_accept_a_torn_ring_dump() {
        use crate::trace::{TraceMeta, TraceRecorder};

        let rec = TraceRecorder::new(4);
        // Slot 1 completes fully, then slot 2's tail events push slot 1's
        // head (and slot 2's own Proposed) out of the 4-slot ring.
        rec.record(stage(0, 0, TraceKind::Enqueue { queue: 1, depth: 1 }));
        rec.record(stage(1, 0, TraceKind::Proposed { slot: 1 }));
        rec.record(stage(5, 0, TraceKind::Committed { slot: 1 }));
        rec.record(stage(6, 0, TraceKind::Proposed { slot: 2 }));
        rec.record(stage(9, 0, TraceKind::Dequeue { queue: 1, depth: 0 }));
        rec.record(stage(12, 0, TraceKind::Committed { slot: 2 }));
        let meta = TraceMeta {
            source: "test".into(),
            tick_ns: 0,
            seed: 0,
        };
        let dump = crate::trace::parse_dump(&rec.dump(&meta)).expect("dump parses");
        assert_eq!(dump.dropped, 2, "the ring evicted the two oldest events");

        let tls = slot_timelines(&dump.events);
        assert_eq!(tls.len(), 2);
        // Slot 1 lost its Proposed mark: only the commit survives, so no
        // propose→commit sample for it; slot 2 kept both.
        assert_eq!(tls[0].proposed, None);
        assert_eq!(tls[0].committed, Some(5));
        let stats = stage_breakdown(&tls);
        let pc = stats
            .iter()
            .find(|s| s.stage == "propose→commit")
            .expect("stage listed");
        assert_eq!(pc.latency.count, 1, "only the untorn slot contributes");
        assert_eq!(pc.latency.p50, 6);
        // The enqueue at t=0 was evicted: the surviving dequeue stays
        // unmatched and produces no residency sample.
        assert!(queue_residency(&dump.events).is_empty());
    }
}
