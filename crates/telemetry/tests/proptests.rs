//! Property tests for the log2 histogram and the bounded trace ring.

use proptest::prelude::*;

use minsync_telemetry::registry::{bucket_ceil, bucket_floor, bucket_of, Histogram, HIST_BUCKETS};
use minsync_telemetry::trace::{TraceEvent, TraceKind, TraceRecorder};

proptest! {
    /// Every value lands in a bucket whose [floor, ceil] range contains it,
    /// and bucket edges partition the u64 line without gaps or overlaps.
    #[test]
    fn histogram_bucket_boundaries_contain_their_values(v in any::<u64>()) {
        let b = bucket_of(v);
        prop_assert!(b < HIST_BUCKETS);
        prop_assert!(bucket_floor(b) <= v);
        prop_assert!(v <= bucket_ceil(b));
        if b + 1 < HIST_BUCKETS {
            prop_assert_eq!(bucket_ceil(b).saturating_add(1), bucket_floor(b + 1));
        }
    }

    /// count tracks the number of records exactly, the sum saturates
    /// instead of wrapping, and the bucket totals account for every sample.
    #[test]
    fn histogram_counts_and_sum_saturate(samples in proptest::collection::vec(any::<u64>(), 0..64)) {
        let h = Histogram::detached();
        for &v in &samples {
            h.record(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, samples.len() as u64);
        let expected: u64 = samples
            .iter()
            .fold(0u64, |acc, &v| acc.saturating_add(v));
        prop_assert_eq!(s.sum, expected);
        prop_assert_eq!(s.buckets.iter().sum::<u64>(), samples.len() as u64);
        for &v in &samples {
            prop_assert!(s.buckets[bucket_of(v)] > 0);
        }
    }

    /// Merging two snapshots equals recording both sample sets into one
    /// histogram.
    #[test]
    fn histogram_merge_matches_combined_recording(
        xs in proptest::collection::vec(any::<u64>(), 0..32),
        ys in proptest::collection::vec(any::<u64>(), 0..32),
    ) {
        let (a, b, both) = (Histogram::detached(), Histogram::detached(), Histogram::detached());
        for &v in &xs {
            a.record(v);
            both.record(v);
        }
        for &v in &ys {
            b.record(v);
            both.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        prop_assert_eq!(merged, both.snapshot());
    }

    /// Percentiles are monotone in p and bounded by the extreme buckets.
    #[test]
    fn histogram_percentiles_are_monotone(
        samples in proptest::collection::vec(any::<u64>(), 1..64),
        p in 0u64..=100,
        q in 0u64..=100,
    ) {
        let h = Histogram::detached();
        for &v in &samples {
            h.record(v);
        }
        let s = h.snapshot();
        let (lo, hi) = (p.min(q) as f64, p.max(q) as f64);
        prop_assert!(s.percentile(lo) <= s.percentile(hi));
        let min_b = samples.iter().map(|&v| bucket_of(v)).min().unwrap();
        let max_b = samples.iter().map(|&v| bucket_of(v)).max().unwrap();
        prop_assert!(s.percentile(0.0) >= bucket_ceil(min_b).min(bucket_floor(min_b)));
        prop_assert!(s.percentile(100.0) == bucket_ceil(max_b));
    }

    /// The ring retains exactly the newest `capacity` events in order, and
    /// the drop counter equals the number of evicted events.
    #[test]
    fn trace_ring_wraparound_keeps_newest(
        capacity in 1usize..48,
        total in 0usize..160,
    ) {
        let rec = TraceRecorder::new(capacity);
        for i in 0..total {
            rec.record(TraceEvent {
                at: i as u64,
                node: (i % 7) as u32,
                kind: TraceKind::Submitted { slot: i as u64 },
            });
        }
        let events = rec.events();
        prop_assert_eq!(events.len(), total.min(capacity));
        prop_assert_eq!(rec.dropped(), total.saturating_sub(capacity) as u64);
        let expect_first = total.saturating_sub(capacity) as u64;
        for (i, ev) in events.iter().enumerate() {
            prop_assert_eq!(ev.at, expect_first + i as u64);
        }
    }

    /// Dump → parse is lossless for whatever survives the ring.
    #[test]
    fn trace_dump_roundtrips_after_wraparound(
        capacity in 1usize..32,
        total in 0usize..96,
        seed in any::<u64>(),
    ) {
        let rec = TraceRecorder::new(capacity);
        for i in 0..total {
            rec.record(TraceEvent {
                at: i as u64,
                node: i as u32,
                kind: TraceKind::Enqueue { queue: 1, depth: i as u64 },
            });
        }
        let meta = minsync_telemetry::trace::TraceMeta {
            source: "sim".into(),
            tick_ns: 0,
            seed,
        };
        let dump = minsync_telemetry::parse_dump(&rec.dump(&meta)).unwrap();
        prop_assert_eq!(dump.meta, meta);
        prop_assert_eq!(dump.dropped, rec.dropped());
        prop_assert_eq!(dump.events, rec.events());
    }
}
