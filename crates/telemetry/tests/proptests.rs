//! Property tests for the log2 histogram, the bounded trace ring, the
//! `STAT-STREAM v1` sample codec, and the `STAT v1` snapshot codec.

use proptest::prelude::*;

use minsync_telemetry::registry::{bucket_ceil, bucket_floor, bucket_of, Histogram, HIST_BUCKETS};
use minsync_telemetry::timeseries::{Change, Sample, TimeSeries};
use minsync_telemetry::trace::{TraceEvent, TraceKind, TraceRecorder};
use minsync_telemetry::Snapshot;

/// Names the registry would accept: non-empty, whitespace-free.
fn metric_name() -> impl Strategy<Value = String> {
    const CHARSET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789._";
    proptest::collection::vec(0usize..CHARSET.len(), 1..17)
        .prop_map(|ixs| ixs.into_iter().map(|i| CHARSET[i] as char).collect())
}

/// One sample change with a well-formed name.
fn change() -> impl Strategy<Value = Change> {
    (metric_name(), any::<u64>(), any::<bool>()).prop_map(|(name, v, counter)| {
        if counter {
            Change::Counter { name, delta: v }
        } else {
            Change::Gauge { name, value: v }
        }
    })
}

/// A structurally valid sample (indices/clock arbitrary).
fn sample() -> impl Strategy<Value = Sample> {
    (
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(change(), 0..12),
    )
        .prop_map(|(index, at, changes)| Sample { index, at, changes })
}

/// Arbitrary printable-plus-newline text for hostile-input feeding.
fn hostile_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..96, 0..400).prop_map(|ixs| {
        ixs.into_iter()
            .map(|i| {
                if i < 95 {
                    (0x20 + i as u8) as char
                } else {
                    '\n'
                }
            })
            .collect()
    })
}

/// Pipe noise that cannot be mistaken for a stream header (every line
/// opens with `#`, which no block construct uses).
fn noise_line() -> impl Strategy<Value = String> {
    hostile_text().prop_map(|s| {
        let flat: String = s.chars().map(|c| if c == '\n' { ' ' } else { c }).collect();
        format!("# {flat}")
    })
}

proptest! {
    /// Every value lands in a bucket whose [floor, ceil] range contains it,
    /// and bucket edges partition the u64 line without gaps or overlaps.
    #[test]
    fn histogram_bucket_boundaries_contain_their_values(v in any::<u64>()) {
        let b = bucket_of(v);
        prop_assert!(b < HIST_BUCKETS);
        prop_assert!(bucket_floor(b) <= v);
        prop_assert!(v <= bucket_ceil(b));
        if b + 1 < HIST_BUCKETS {
            prop_assert_eq!(bucket_ceil(b).saturating_add(1), bucket_floor(b + 1));
        }
    }

    /// count tracks the number of records exactly, the sum saturates
    /// instead of wrapping, and the bucket totals account for every sample.
    #[test]
    fn histogram_counts_and_sum_saturate(samples in proptest::collection::vec(any::<u64>(), 0..64)) {
        let h = Histogram::detached();
        for &v in &samples {
            h.record(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, samples.len() as u64);
        let expected: u64 = samples
            .iter()
            .fold(0u64, |acc, &v| acc.saturating_add(v));
        prop_assert_eq!(s.sum, expected);
        prop_assert_eq!(s.buckets.iter().sum::<u64>(), samples.len() as u64);
        for &v in &samples {
            prop_assert!(s.buckets[bucket_of(v)] > 0);
        }
    }

    /// Merging two snapshots equals recording both sample sets into one
    /// histogram.
    #[test]
    fn histogram_merge_matches_combined_recording(
        xs in proptest::collection::vec(any::<u64>(), 0..32),
        ys in proptest::collection::vec(any::<u64>(), 0..32),
    ) {
        let (a, b, both) = (Histogram::detached(), Histogram::detached(), Histogram::detached());
        for &v in &xs {
            a.record(v);
            both.record(v);
        }
        for &v in &ys {
            b.record(v);
            both.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        prop_assert_eq!(merged, both.snapshot());
    }

    /// Percentiles are monotone in p and bounded by the extreme buckets.
    #[test]
    fn histogram_percentiles_are_monotone(
        samples in proptest::collection::vec(any::<u64>(), 1..64),
        p in 0u64..=100,
        q in 0u64..=100,
    ) {
        let h = Histogram::detached();
        for &v in &samples {
            h.record(v);
        }
        let s = h.snapshot();
        let (lo, hi) = (p.min(q) as f64, p.max(q) as f64);
        prop_assert!(s.percentile(lo) <= s.percentile(hi));
        let min_b = samples.iter().map(|&v| bucket_of(v)).min().unwrap();
        let max_b = samples.iter().map(|&v| bucket_of(v)).max().unwrap();
        prop_assert!(s.percentile(0.0) >= bucket_ceil(min_b).min(bucket_floor(min_b)));
        prop_assert!(s.percentile(100.0) == bucket_ceil(max_b));
    }

    /// The ring retains exactly the newest `capacity` events in order, and
    /// the drop counter equals the number of evicted events.
    #[test]
    fn trace_ring_wraparound_keeps_newest(
        capacity in 1usize..48,
        total in 0usize..160,
    ) {
        let rec = TraceRecorder::new(capacity);
        for i in 0..total {
            rec.record(TraceEvent {
                at: i as u64,
                node: (i % 7) as u32,
                kind: TraceKind::Submitted { slot: i as u64 },
            });
        }
        let events = rec.events();
        prop_assert_eq!(events.len(), total.min(capacity));
        prop_assert_eq!(rec.dropped(), total.saturating_sub(capacity) as u64);
        let expect_first = total.saturating_sub(capacity) as u64;
        for (i, ev) in events.iter().enumerate() {
            prop_assert_eq!(ev.at, expect_first + i as u64);
        }
    }

    /// Dump → parse is lossless for whatever survives the ring.
    #[test]
    fn trace_dump_roundtrips_after_wraparound(
        capacity in 1usize..32,
        total in 0usize..96,
        seed in any::<u64>(),
    ) {
        let rec = TraceRecorder::new(capacity);
        for i in 0..total {
            rec.record(TraceEvent {
                at: i as u64,
                node: i as u32,
                kind: TraceKind::Enqueue { queue: 1, depth: i as u64 },
            });
        }
        let meta = minsync_telemetry::trace::TraceMeta {
            source: "sim".into(),
            tick_ns: 0,
            seed,
        };
        let dump = minsync_telemetry::parse_dump(&rec.dump(&meta)).unwrap();
        prop_assert_eq!(dump.meta, meta);
        prop_assert_eq!(dump.dropped, rec.dropped());
        prop_assert_eq!(dump.events, rec.events());
    }

    /// Encode → parse is the identity on well-formed samples, even when
    /// the pipe wraps the block in unrelated traffic.
    #[test]
    fn stat_stream_roundtrips_through_pipe_noise(
        s in sample(),
        before in proptest::collection::vec(noise_line(), 0..4),
        after in proptest::collection::vec(noise_line(), 0..4),
    ) {
        let mut text = String::new();
        for line in &before {
            text.push_str(line);
            text.push('\n');
        }
        text.push_str(&s.to_text());
        for line in &after {
            text.push_str(line);
            text.push('\n');
        }
        prop_assert_eq!(Sample::parse(&text), Ok(s));
    }

    /// The stream parser never panics on arbitrary input, and whatever it
    /// accepts is bounded by the input itself: no more changes than input
    /// lines (allocation stays proportional to the text).
    #[test]
    fn stat_stream_parse_is_total_and_bounded(text in hostile_text()) {
        if let Ok(parsed) = Sample::parse(&text) {
            prop_assert!(parsed.changes.len() <= text.lines().count());
        }
    }

    /// Truncating a valid block at any point parses or errors — never
    /// panics — and a block cut before its footer is always an error (a
    /// torn read must not pass for a complete sample).
    #[test]
    fn stat_stream_truncation_never_parses_a_torn_block(
        s in sample(),
        cut in any::<usize>(),
    ) {
        let text = s.to_text();
        let boundary = cut % (text.len() + 1); // the text is ASCII
        let torn = &text[..boundary];
        match Sample::parse(torn) {
            Ok(parsed) => prop_assert_eq!(parsed, s, "only the full block may parse"),
            Err(_) => prop_assert!(boundary < text.len()),
        }
    }

    /// A series accepts the first index unconditionally, then demands
    /// exactly prev + 1: replays, gaps, and reordering are all rejected
    /// without mutating the series.
    #[test]
    fn timeseries_enforces_index_discipline(
        first in 0u64..1000,
        offsets in proptest::collection::vec(any::<u16>(), 1..16),
    ) {
        let mut series = TimeSeries::with_capacity(8);
        // The first sample may carry any index; after that, only prev + 1.
        let mut expected: Option<u64> = None;
        let mut accepted = 0u64;
        for (i, off) in offsets.iter().enumerate() {
            let index = first.saturating_add(u64::from(*off));
            let sample = Sample { index, at: i as u64, changes: vec![] };
            let before = series.applied();
            if series.apply(&sample).is_ok() {
                if let Some(e) = expected {
                    prop_assert_eq!(index, e, "accepted a non-sequential index");
                }
                expected = Some(index + 1);
                accepted += 1;
            } else {
                prop_assert!(expected.is_some_and(|e| e != index), "rejected a legal index");
                prop_assert_eq!(series.applied(), before, "a rejected sample mutated the series");
            }
        }
        prop_assert_eq!(series.applied(), accepted);
    }

    /// Hostile metric names (empty or whitespace-bearing) are rejected
    /// wholesale: the sample is refused and no change is applied.
    #[test]
    fn timeseries_rejects_hostile_names(
        good in metric_name(),
        hostile in prop_oneof![
            Just(String::new()),
            (metric_name(), metric_name()).prop_map(|(a, b)| format!("{a} {b}")),
            (metric_name(), metric_name()).prop_map(|(a, b)| format!("{a}\t{b}")),
            metric_name().prop_map(|a| format!("{a}\n")),
        ],
        v in any::<u64>(),
    ) {
        let mut series = TimeSeries::with_capacity(4);
        let sample = Sample {
            index: 0,
            at: 0,
            changes: vec![
                Change::Gauge { name: good, value: v },
                Change::Gauge { name: hostile, value: v },
            ],
        };
        prop_assert!(series.apply(&sample).is_err());
        prop_assert!(series.is_empty(), "a rejected sample left state behind");
    }

    /// The snapshot parser never panics on arbitrary input, and its
    /// output is bounded by the input: no more entries than lines.
    #[test]
    fn snapshot_parse_is_total_and_bounded(text in hostile_text()) {
        if let Ok(snap) = Snapshot::parse(&text) {
            prop_assert!(snap.iter().count() <= text.lines().count());
        }
    }

    /// Counter/gauge snapshots survive to_text → parse exactly, and a
    /// truncated rendering (footer lost) never parses.
    #[test]
    fn snapshot_roundtrips_and_rejects_torn_blocks(
        raw_entries in proptest::collection::vec((metric_name(), any::<u64>(), any::<bool>()), 0..12),
        cut in any::<usize>(),
    ) {
        let entries: std::collections::BTreeMap<String, (u64, bool)> = raw_entries
            .into_iter()
            .map(|(name, v, counter)| (name, (v, counter)))
            .collect();
        let mut snap = Snapshot::empty();
        for (name, (v, counter)) in &entries {
            if *counter {
                snap.set_counter(name, *v);
            } else {
                snap.set_gauge(name, *v);
            }
        }
        let text = snap.to_text();
        let parsed = Snapshot::parse(&text).expect("own rendering parses");
        for (name, (v, counter)) in &entries {
            let got = if *counter { parsed.counter(name) } else { parsed.gauge(name) };
            prop_assert_eq!(got, Some(*v), "{} did not survive the round trip", name);
        }
        prop_assert_eq!(parsed.iter().count(), entries.len());
        let boundary = cut % (text.len() + 1); // the text is ASCII
        match Snapshot::parse(&text[..boundary]) {
            // Only a cut that still carries the complete footer line (at
            // worst the trailing newline is gone) may parse, and it must
            // reproduce the full snapshot.
            Ok(p) => {
                prop_assert!(boundary >= text.len() - 1);
                prop_assert_eq!(p.iter().count(), entries.len());
            }
            Err(_) => prop_assert!(boundary < text.len()),
        }
    }
}
