//! The TCP mesh: a wall-clock substrate running one sans-io [`Node`] per
//! process over real `std::net` sockets.
//!
//! Where the threaded runtime (`minsync_net::threaded`) keeps every process
//! in one address space and routes messages through an in-memory router,
//! the mesh puts each process in its own OS process (or at least its own
//! mesh instance) and speaks the `minsync-wire` byte protocol over
//! `n · (n − 1)` directed TCP connections — one per ordered process pair,
//! mirroring the paper's directed-channel model. Each mesh instance:
//!
//! * **Dials** one outbound connection per peer from a dedicated *writer
//!   thread*. The node loop hands messages to writers through **bounded
//!   queues** with `try_send`: when a peer is slow, dead, or Byzantine and
//!   its queue fills, messages are dropped and counted
//!   ([`MeshReport::outbound_dropped`]) — a misbehaving peer can never
//!   stall the replica. Writers reconnect with exponential backoff; while
//!   one is dialing, its queue buffers up to capacity (delivered late
//!   after the re-handshake — protocols already tolerate arbitrary delay)
//!   and overflow beyond capacity is dropped and counted, so the paper's
//!   "reliable channel" assumption degrades to best-effort exactly at the
//!   moment the network itself misbehaves.
//! * **Accepts** inbound connections on a listener; each gets a *reader
//!   thread* that first requires a valid [`Hello`] handshake (magic, codec
//!   version, cluster size, claimed sender id) and then decodes
//!   length-prefixed frames incrementally — arbitrary packetization is fine
//!   ([`minsync_wire::split_frame`] just waits for more bytes). Any decode
//!   error, oversized frame announcement, or handshake mismatch disconnects
//!   *that peer's connection* and counts it; the process never dies on
//!   received bytes.
//! * **Drives the node** exactly like the other substrates: one [`Env`],
//!   effects drained after every handler, wall-clock timers mapped onto the
//!   shared [`TimerId`] generation scheme via the env's
//!   [`TimerTable`](minsync_net::TimerTable) (`arm` / `cancel` /
//!   `try_fire`), and self-addressed traffic delivered through an in-memory
//!   queue (the paper's always-timely virtual self-channel).
//!
//! Identity is *claimed* by default — see [`Hello`] — but a mesh configured
//! with an [`Authenticator`] ([`MeshConfig::auth`]) **proves** it: the
//! handshake carries a key-confirmation tag, every frame carries a MAC over
//! its body verified *before* the decoder sees a byte, and any forgery cuts
//! the connection and counts in [`MeshReport::auth_rejects`]. That closes
//! the paper's no-impersonation assumption (Section 2.1) over real sockets.
//! Delivery is FIFO per directed channel (TCP) with no cross-channel
//! ordering, exactly the guarantee the protocols were verified against on
//! the simulator.

use std::collections::{BinaryHeap, VecDeque};
use std::fmt::Debug;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use minsync_auth::Authenticator;
use minsync_net::{derive_stream, stream_of, Effect, Env, Node, TimerId, VirtualTime};
use minsync_telemetry::trace::{queues, TraceKind, TraceRecorder};
use minsync_telemetry::{Counter, Gauge, Registry};
use minsync_types::ProcessId;
use minsync_wire::{
    control_frame, decode_frame, decode_frame_timed, encode_frame, encode_frame_tagged,
    encode_frame_timed, split_control, split_frame, tagged_frame_cap, verify_frame_tag, Hello,
    Wire, DEFAULT_MAX_FRAME, HELLO_LEN, KEEPALIVE_FRAME, MAGIC, PING_TAG, PONG_TAG,
};

/// Stream-namespace tag of the TCP mesh (`"MESH"`), keeping its derived
/// seeds disjoint from every other consumer of the same base seed.
const MESH_STREAM_TAG: u32 = 0x4D45_5348;

/// Tuning knobs of one mesh instance.
#[derive(Clone, Debug)]
pub struct MeshConfig {
    /// Wall-clock duration of one virtual tick (timer delays and
    /// [`Env::now`] are expressed in ticks, as on every other substrate).
    pub tick: Duration,
    /// Hard wall-clock cap on the run.
    pub timeout: Duration,
    /// Cluster seed; this process's node-visible random stream is derived
    /// under the mesh's own stream-namespace tag
    /// ([`derive_stream`]`(seed, `[`stream_of`]`(MESH, me + 1))`), disjoint
    /// from the simulator's and workload generator's streams of the same
    /// base seed.
    pub seed: u64,
    /// Capacity of each per-peer outbound queue; overflow is dropped and
    /// counted, never blocked on.
    pub outbound_capacity: usize,
    /// Capacity of the inbound queue readers feed. A full inbox blocks the
    /// reader thread (TCP backpressure toward the sender), not the node.
    pub inbox_capacity: usize,
    /// Hard cap on one frame's payload (encode and decode side).
    pub max_frame: usize,
    /// First reconnect delay after a failed dial; doubles per failure.
    pub initial_backoff: Duration,
    /// Ceiling of the reconnect backoff.
    pub max_backoff: Duration,
    /// Per-attempt TCP connect timeout.
    pub connect_timeout: Duration,
    /// Idle interval after which a writer probes its connection with a
    /// keepalive frame (and notices a dead peer). Churn tests tighten this;
    /// the default matches the historical hard-coded 50 ms.
    pub keepalive: Duration,
    /// Cap on simultaneously live inbound connections (a Byzantine peer
    /// opening sockets in a loop exhausts this, not the process's threads).
    pub max_connections: usize,
    /// Message authentication. `None` (the default) runs the mesh open, as
    /// before: sender ids are trusted as claimed. `Some` requires a valid
    /// key-confirmation tag on every inbound handshake and a valid MAC on
    /// every inbound frame — checked **before** the payload reaches the
    /// decoder — and tags all outbound traffic. Note the frame cap
    /// ([`MeshConfig::max_frame`]) keeps applying to the message *body*:
    /// readers admit [`tagged_frame_cap`]`(max_frame)` bytes so the MAC
    /// rides for free instead of stealing payload capacity.
    pub auth: Option<Arc<dyn Authenticator>>,
    /// Per-peer outbound drop switches for fault injection. `None` (the
    /// default) sends everywhere; `Some` lets an orchestrator partition and
    /// heal links while the mesh runs (see [`LinkFaults`]). Blocked sends
    /// are counted per peer in [`MeshReport::outbound_dropped`].
    pub faults: Option<Arc<LinkFaults>>,
    /// Telemetry registry the mesh interns its transport counters in
    /// (`mesh.*` — see [`MeshCounters`]). `None` keeps them as detached
    /// handles: the report and stop-predicate accessors work either way.
    pub registry: Option<Arc<Registry>>,
    /// Structured-trace hook. When set, the mesh stamps effect, queue
    /// enqueue/dequeue, timer, handler-step, and frame codec-timing events
    /// into the shared ring (timestamps in ticks of [`MeshConfig::tick`]).
    /// Purely observational: the node's behaviour is unchanged.
    pub trace: Option<Arc<TraceRecorder>>,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            tick: Duration::from_micros(200),
            timeout: Duration::from_secs(30),
            seed: 0,
            outbound_capacity: 16 * 1024,
            inbox_capacity: 64 * 1024,
            max_frame: DEFAULT_MAX_FRAME,
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(200),
            connect_timeout: Duration::from_millis(250),
            keepalive: Duration::from_millis(50),
            max_connections: 64,
            auth: None,
            faults: None,
            registry: None,
            trace: None,
        }
    }
}

/// Per-peer outbound drop switches — the cluster-side analog of the
/// simulator's churn oracle. The orchestrator (or a `PART`/`HEAL` control
/// verb in `minsync-node`) flips flags while the mesh runs; a blocked peer's
/// traffic is counted into `outbound_dropped` and never reaches the socket,
/// so a symmetric pair of `LinkFaults` on both sides of a cut is a real
/// bidirectional partition. Healing is just clearing the flags: the writer
/// threads and their reconnect/backoff machinery never notice the fault,
/// which is exactly the "network came back" shape churn recovery must absorb.
#[derive(Debug)]
pub struct LinkFaults {
    blocked: Vec<AtomicBool>,
}

impl LinkFaults {
    /// All `n` links healthy.
    pub fn new(n: usize) -> Self {
        LinkFaults {
            blocked: (0..n).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Starts dropping outbound traffic to `peer`.
    pub fn block(&self, peer: usize) {
        self.blocked[peer].store(true, Ordering::Relaxed);
    }

    /// Replaces the blocked set wholesale (the `PART` verb's semantics).
    pub fn set_blocked(&self, peers: &[usize]) {
        for (i, b) in self.blocked.iter().enumerate() {
            b.store(peers.contains(&i), Ordering::Relaxed);
        }
    }

    /// Heals every link.
    pub fn heal(&self) {
        for b in &self.blocked {
            b.store(false, Ordering::Relaxed);
        }
    }

    /// Is outbound traffic to `peer` currently suppressed?
    pub fn is_blocked(&self, peer: usize) -> bool {
        self.blocked[peer].load(Ordering::Relaxed)
    }
}

/// One output event with its wall-clock emission offset.
#[derive(Clone, Debug)]
pub struct MeshOutput<O> {
    /// Wall-clock offset from run start.
    pub elapsed: Duration,
    /// The event.
    pub event: O,
}

/// Result of a mesh run.
#[derive(Clone, Debug)]
pub struct MeshReport<O> {
    /// All outputs of the local node, in emission order.
    pub outputs: Vec<MeshOutput<O>>,
    /// Total wall-clock duration.
    pub elapsed: Duration,
    /// True if the run hit [`MeshConfig::timeout`] before the stop
    /// predicate was satisfied.
    pub timed_out: bool,
    /// Per-peer outbound messages dropped (full queue, or lost to a broken
    /// connection mid-write). Index = peer id; the self slot stays 0.
    pub outbound_dropped: Vec<u64>,
    /// Inbound connections dropped because their bytes failed to decode
    /// (garbage frames, oversized frame announcements, trailing bytes).
    pub decode_disconnects: u64,
    /// Inbound connections rejected at the handshake (bad magic, version
    /// or cluster-size mismatch, out-of-range or self-claiming sender id).
    pub handshake_rejects: u64,
    /// Inbound connections refused before the handshake because the
    /// [`MeshConfig::max_connections`] cap was reached.
    pub accept_rejects: u64,
    /// Successful writer re-connections after the first connect per peer.
    pub reconnects: u64,
    /// Inbound connections cut for failed authentication (a handshake tag
    /// or frame MAC that did not verify) — always 0 on an open mesh.
    pub auth_rejects: u64,
    /// Idle keepalive probes written by the writer threads.
    pub keepalives: u64,
    /// Failed dial attempts that triggered a reconnect-backoff sleep.
    pub dial_backoffs: u64,
    /// RTT probes written by the writer threads.
    pub pings: u64,
    /// Final per-peer RTT EWMA in ticks (see [`MeshCounters::rtt_ewma`]);
    /// index = peer id, 0 at the self slot and for peers never measured.
    pub rtt_ewma: Vec<u64>,
}

/// Live transport counters, shared across the mesh's threads and handed to
/// the stop predicate on every evaluation — a replica can report transport
/// health (drops, Byzantine disconnects) *while the mesh is still running*,
/// which is how `minsync-node` fills its statistics block before lingering
/// for laggards.
///
/// The counters are telemetry handles: when [`MeshConfig::registry`] is
/// set they are interned there under `mesh.*` names (per-peer drops as
/// `mesh.outbound_dropped.p<i>`, the connection count as the gauge
/// `mesh.live_connections`), so a registry snapshot carries transport
/// health with no extra plumbing. Without a registry they are detached
/// handles — same behaviour, just unnamed.
#[derive(Debug)]
pub struct MeshCounters {
    shutdown: AtomicBool,
    decode_disconnects: Counter,
    handshake_rejects: Counter,
    accept_rejects: Counter,
    reconnects: Counter,
    auth_rejects: Counter,
    keepalives: Counter,
    dial_backoffs: Counter,
    live_connections: Gauge,
    pings: Counter,
    outbound_dropped: Vec<Counter>,
    /// Per-peer RTT EWMA gauges (`link.rtt_ewma.p<i>`, in ticks): each
    /// writer pings its peer on the keepalive cadence, the peer's reader
    /// echoes a pong through its own writer queue, and this side's reader
    /// folds the measured round trip as `ewma ← (7·ewma + rtt) / 8` —
    /// so the estimate covers the wire *and* the peer's outbound backlog,
    /// which is exactly the responsiveness a repair policy cares about.
    rtt_ewma: Vec<Gauge>,
    /// Per-peer outbound queue depth gauges (`link.backlog.p<i>`).
    backlog: Vec<Gauge>,
    /// Per-sender handshake epochs: only the *newest* connection claiming a
    /// sender id stays alive (see `reader_loop`), so an attacker holding
    /// sockets open cannot pin connection slots — and a correct peer's
    /// reconnect always supersedes its own stale connection.
    sender_epochs: Vec<AtomicU64>,
}

impl MeshCounters {
    fn new(n: usize, registry: Option<&Registry>) -> Self {
        let counter = |name: &str| match registry {
            Some(r) => r.counter(name),
            None => Counter::detached(),
        };
        MeshCounters {
            shutdown: AtomicBool::new(false),
            decode_disconnects: counter("mesh.decode_disconnects"),
            handshake_rejects: counter("mesh.handshake_rejects"),
            accept_rejects: counter("mesh.accept_rejects"),
            reconnects: counter("mesh.reconnects"),
            auth_rejects: counter("mesh.auth_rejects"),
            keepalives: counter("mesh.keepalives"),
            dial_backoffs: counter("mesh.dial_backoffs"),
            live_connections: match registry {
                Some(r) => r.gauge("mesh.live_connections"),
                None => Gauge::detached(),
            },
            pings: counter("mesh.pings"),
            outbound_dropped: (0..n)
                .map(|p| counter(&format!("mesh.outbound_dropped.p{p}")))
                .collect(),
            rtt_ewma: (0..n)
                .map(|p| match registry {
                    Some(r) => r.gauge(&format!("link.rtt_ewma.p{p}")),
                    None => Gauge::detached(),
                })
                .collect(),
            backlog: (0..n)
                .map(|p| match registry {
                    Some(r) => r.gauge(&format!("link.backlog.p{p}")),
                    None => Gauge::detached(),
                })
                .collect(),
            sender_epochs: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Outbound messages dropped toward `peer` so far.
    pub fn outbound_dropped(&self, peer: usize) -> u64 {
        self.outbound_dropped[peer].get()
    }

    /// Outbound messages dropped across all peers so far.
    pub fn outbound_dropped_total(&self) -> u64 {
        self.outbound_dropped.iter().map(Counter::get).sum()
    }

    /// Inbound connections cut for undecodable bytes so far.
    pub fn decode_disconnects(&self) -> u64 {
        self.decode_disconnects.get()
    }

    /// Inbound connections refused at the handshake so far.
    pub fn handshake_rejects(&self) -> u64 {
        self.handshake_rejects.get()
    }

    /// Inbound connections refused at the connection cap so far.
    pub fn accept_rejects(&self) -> u64 {
        self.accept_rejects.get()
    }

    /// Successful writer re-connections so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.get()
    }

    /// Inbound connections cut for failed authentication so far.
    pub fn auth_rejects(&self) -> u64 {
        self.auth_rejects.get()
    }

    /// Idle keepalive probes written so far.
    pub fn keepalives(&self) -> u64 {
        self.keepalives.get()
    }

    /// Failed dial attempts (each followed by a backoff sleep) so far.
    pub fn dial_backoffs(&self) -> u64 {
        self.dial_backoffs.get()
    }

    /// RTT probes written so far (idle cadence plus under-load refreshes).
    pub fn pings(&self) -> u64 {
        self.pings.get()
    }

    /// Current RTT EWMA toward `peer`, in ticks (0 until the first pong).
    pub fn rtt_ewma(&self, peer: usize) -> u64 {
        self.rtt_ewma[peer].get()
    }

    /// Folds one measured round trip (in ticks) into `peer`'s EWMA gauge.
    fn observe_rtt(&self, peer: usize, rtt_ticks: u64) {
        let prev = self.rtt_ewma[peer].get();
        let next = if prev == 0 {
            rtt_ticks
        } else {
            (prev.saturating_mul(7).saturating_add(rtt_ticks)) / 8
        };
        self.rtt_ewma[peer].set(next.max(1));
    }
}

/// Wall-clock → tick trace context shared with the mesh's I/O threads, so
/// reader and writer threads can stamp queue and codec events on the same
/// clock as the node loop.
#[derive(Debug)]
struct TraceCtx {
    trace: Arc<TraceRecorder>,
    start: Instant,
    tick_ns: u64,
    me: u32,
}

impl TraceCtx {
    fn now_ticks(&self) -> u64 {
        (self.start.elapsed().as_nanos() as u64) / self.tick_ns.max(1)
    }

    fn record(&self, kind: TraceKind) {
        self.trace.record_at(self.now_ticks(), self.me, kind);
    }
}

/// A bound listener, ready to run a node against a peer list.
///
/// Binding is split from running so a process can bind port 0, report the
/// kernel-assigned port to an orchestrator, and only then learn the full
/// peer list (the cluster bootstrap handshake in `minsync-node`).
#[derive(Debug)]
pub struct TcpMesh {
    me: ProcessId,
    listener: TcpListener,
}

impl TcpMesh {
    /// Binds the listening socket for process `me`.
    ///
    /// # Errors
    ///
    /// Any socket-level bind failure.
    pub fn bind(me: ProcessId, listen: SocketAddr) -> io::Result<Self> {
        let listener = TcpListener::bind(listen)?;
        Ok(TcpMesh { me, listener })
    }

    /// The actual bound address (resolves a port-0 bind).
    ///
    /// # Errors
    ///
    /// Any socket-level failure reading the local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs `node` against the peers at `peers` (index = process id;
    /// `peers[me]` is this process's own address and is never dialed) until
    /// `stop` returns true over the collected outputs and live transport
    /// counters, the node halts, or the timeout elapses. The node loop runs
    /// on the calling thread.
    ///
    /// # Panics
    ///
    /// Panics if `peers.len() < 2` or `me` is out of range.
    pub fn run<M, O>(
        self,
        mut node: Box<dyn Node<Msg = M, Output = O>>,
        peers: &[SocketAddr],
        config: &MeshConfig,
        mut stop: impl FnMut(&[MeshOutput<O>], &MeshCounters) -> bool,
    ) -> MeshReport<O>
    where
        M: Wire + Clone + Debug + Send + 'static,
        O: Clone + Debug + Send + 'static,
    {
        let n = peers.len();
        let me = self.me;
        assert!(n >= 2, "a mesh of one process has no wires");
        assert!(me.index() < n, "process id out of range");
        let start = Instant::now();
        let shared = Arc::new(MeshCounters::new(n, config.registry.as_deref()));
        let trace_ctx = config.trace.as_ref().map(|trace| {
            Arc::new(TraceCtx {
                trace: Arc::clone(trace),
                start,
                tick_ns: config.tick.as_nanos().max(1) as u64,
                me: me.index() as u32,
            })
        });
        // Queue depths live beside the channels (the vendored channel has no
        // len()); they exist only to label trace events and are untouched —
        // like every hook here — when tracing is off.
        let inbox_depth = Arc::new(AtomicU64::new(0));

        // Outbound plumbing first (readers route pong echoes through the
        // writer queues, so the channels must exist before the acceptor):
        // one writer thread + bounded queue per peer.
        let mut peer_txs: Vec<Option<Sender<WriterCmd<M>>>> = Vec::with_capacity(n);
        let mut writers: Vec<JoinHandle<()>> = Vec::new();
        let outbound_depths: Vec<Arc<AtomicU64>> =
            (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect();
        for (peer, &addr) in peers.iter().enumerate() {
            if peer == me.index() {
                peer_txs.push(None);
                continue;
            }
            let (tx, rx) = bounded::<WriterCmd<M>>(config.outbound_capacity);
            peer_txs.push(Some(tx));
            writers.push(spawn_writer::<M>(
                WriterSpec {
                    me,
                    n: n as u32,
                    peer,
                    addr,
                    max_frame: config.max_frame,
                    initial_backoff: config.initial_backoff,
                    max_backoff: config.max_backoff,
                    connect_timeout: config.connect_timeout,
                    keepalive: config.keepalive,
                    auth: config.auth.clone(),
                    trace: trace_ctx.clone(),
                    depth: Arc::clone(&outbound_depths[peer]),
                    epoch: start,
                },
                rx,
                Arc::clone(&shared),
            ));
        }

        // Inbound plumbing: readers feed one bounded inbox.
        let (inbox_tx, inbox_rx) = bounded::<(ProcessId, M)>(config.inbox_capacity);
        let acceptor = spawn_acceptor::<M>(
            self.listener,
            inbox_tx,
            Arc::clone(&shared),
            config.max_connections,
            ReaderConfig {
                me,
                n,
                max_frame: config.max_frame,
                auth: config.auth.clone(),
                trace: trace_ctx.clone(),
                inbox_depth: Arc::clone(&inbox_depth),
                pong_txs: peer_txs.clone(),
                epoch: start,
                tick_ns: config.tick.as_nanos().max(1) as u64,
            },
        );

        // The node loop, on this thread.
        let mut worker = MeshWorker {
            me,
            start,
            tick: config.tick,
            peer_txs,
            counters: &shared,
            self_queue: VecDeque::new(),
            timers: BinaryHeap::new(),
            outputs: Vec::new(),
            halted: false,
            faults: config.faults.clone(),
            trace: trace_ctx,
            outbound_depths,
            inbox_depth,
            env: Env::new(
                n,
                derive_stream(
                    config.seed,
                    stream_of(MESH_STREAM_TAG, me.index() as u32 + 1),
                ),
            ),
        };
        if let Some(trace) = &config.trace {
            worker.env.set_trace(Arc::clone(trace));
        }
        worker.env.prepare(me, worker.now());
        let step = worker.step_start();
        node.on_start(&mut worker.env);
        worker.note_step(step);
        worker.apply_effects();

        let mut timed_out = false;
        loop {
            // Evaluate the stop predicate even on the halting iteration:
            // callers report off it (minsync-node prints its statistics
            // block there), and a node emitting its final Output and Halt
            // in one effect batch must not lose that last callback.
            let stop_now = stop(&worker.outputs, &shared);
            if worker.halted || stop_now {
                break;
            }
            if start.elapsed() >= config.timeout {
                timed_out = true;
                break;
            }
            // 1. Self-channel first: always timely, never touches a socket.
            while let Some((from, msg)) = worker.self_queue.pop_front() {
                worker.env.prepare(me, worker.now());
                let step = worker.step_start();
                node.on_message(from, msg, &mut worker.env);
                worker.note_step(step);
                worker.apply_effects();
                if worker.halted {
                    break;
                }
            }
            if worker.halted {
                continue; // loop top reports and exits
            }
            // 2. Due timers, filtered through the generation table.
            let now = Instant::now();
            while worker
                .timers
                .peek()
                .is_some_and(|t: &PendingTimer| t.due <= now)
            {
                let t = worker.timers.pop().expect("peeked");
                if worker.env.timers_mut().try_fire(t.id) {
                    worker.env.prepare(me, worker.now());
                    if let Some(ctx) = &worker.trace {
                        ctx.record(TraceKind::TimerFired);
                    }
                    let step = worker.step_start();
                    node.on_timer(t.id, &mut worker.env);
                    worker.note_step(step);
                    worker.apply_effects();
                    if worker.halted {
                        break;
                    }
                }
            }
            if worker.halted || !worker.self_queue.is_empty() {
                continue;
            }
            // 3. Remote traffic, waiting at most until the next timer.
            let wait = worker
                .timers
                .peek()
                .map(|t| t.due.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_millis(10))
                .min(Duration::from_millis(10));
            match inbox_rx.recv_timeout(wait) {
                Ok((from, msg)) => {
                    worker.note_inbox_dequeue();
                    worker.env.prepare(me, worker.now());
                    let step = worker.step_start();
                    node.on_message(from, msg, &mut worker.env);
                    worker.note_step(step);
                    worker.apply_effects();
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        // Teardown: flag everyone down, unblock readers stuck on a full
        // inbox by dropping the receiver, then join.
        shared.shutdown.store(true, Ordering::Relaxed);
        drop(inbox_rx);
        let MeshWorker {
            outputs, peer_txs, ..
        } = worker;
        drop(peer_txs);
        for w in writers {
            let _ = w.join();
        }
        let _ = acceptor.join();

        MeshReport {
            outputs,
            elapsed: start.elapsed(),
            timed_out,
            outbound_dropped: (0..n).map(|p| shared.outbound_dropped(p)).collect(),
            decode_disconnects: shared.decode_disconnects(),
            handshake_rejects: shared.handshake_rejects(),
            accept_rejects: shared.accept_rejects(),
            reconnects: shared.reconnects(),
            auth_rejects: shared.auth_rejects(),
            keepalives: shared.keepalives(),
            dial_backoffs: shared.dial_backoffs(),
            pings: shared.pings(),
            rtt_ewma: (0..n).map(|p| shared.rtt_ewma(p)).collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Node-loop state
// ---------------------------------------------------------------------------

struct PendingTimer {
    due: Instant,
    id: TimerId,
}

impl PartialEq for PendingTimer {
    fn eq(&self, o: &Self) -> bool {
        self.due == o.due && self.id == o.id
    }
}
impl Eq for PendingTimer {}
impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for PendingTimer {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        (o.due, o.id).cmp(&(self.due, self.id)) // min-heap
    }
}

/// Per-run interpreter state: the env, the local timer wheel, the writer
/// queues, and the self-delivery queue.
struct MeshWorker<'a, M, O> {
    me: ProcessId,
    start: Instant,
    tick: Duration,
    /// Outbound queue per peer (`None` at the self slot).
    peer_txs: Vec<Option<Sender<WriterCmd<M>>>>,
    counters: &'a MeshCounters,
    /// The paper's virtual self-channel: always timely, in-memory.
    self_queue: VecDeque<(ProcessId, M)>,
    timers: BinaryHeap<PendingTimer>,
    outputs: Vec<MeshOutput<O>>,
    halted: bool,
    faults: Option<Arc<LinkFaults>>,
    trace: Option<Arc<TraceCtx>>,
    /// Shadow depths of the per-peer writer queues (trace labels only).
    outbound_depths: Vec<Arc<AtomicU64>>,
    /// Shadow depth of the inbox (readers increment, this loop decrements).
    inbox_depth: Arc<AtomicU64>,
    env: Env<M, O>,
}

impl<M: Clone, O> MeshWorker<'_, M, O> {
    fn now(&self) -> VirtualTime {
        VirtualTime::from_ticks(
            (self.start.elapsed().as_nanos() / self.tick.as_nanos().max(1)) as u64,
        )
    }

    /// Starts the handler-step stopwatch; `None` (free) when untraced.
    fn step_start(&self) -> Option<Instant> {
        self.trace.as_ref().map(|_| Instant::now())
    }

    fn note_step(&self, step: Option<Instant>) {
        if let (Some(ctx), Some(t0)) = (&self.trace, step) {
            ctx.record(TraceKind::HandlerStep {
                nanos: t0.elapsed().as_nanos() as u64,
            });
        }
    }

    fn note_inbox_dequeue(&self) {
        if let Some(ctx) = &self.trace {
            let depth = self
                .inbox_depth
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                    Some(d.saturating_sub(1))
                })
                .unwrap_or(0)
                .saturating_sub(1);
            ctx.record(TraceKind::Dequeue {
                queue: queues::INBOX,
                depth,
            });
        }
    }

    /// Queues `msg` toward `to` without ever blocking: self-delivery goes
    /// through the local queue, remote delivery through the peer's bounded
    /// writer queue (overflow dropped and counted).
    fn enqueue(&mut self, to: usize, msg: M) {
        match &self.peer_txs[to] {
            None => self.self_queue.push_back((self.me, msg)),
            Some(tx) => {
                // Injected link faults sit in front of the queue: a blocked
                // peer's traffic is counted as dropped and never queued, so a
                // heal does not release a backlog of stale partition-era
                // frames. The self-channel (above) is never faultable.
                if self.faults.as_ref().is_some_and(|f| f.is_blocked(to)) {
                    self.counters.outbound_dropped[to].inc();
                    return;
                }
                if tx.try_send(WriterCmd::Msg(msg)).is_err() {
                    self.counters.outbound_dropped[to].inc();
                } else {
                    let depth = self.outbound_depths[to].fetch_add(1, Ordering::Relaxed) + 1;
                    self.counters.backlog[to].set(depth);
                    if let Some(ctx) = &self.trace {
                        ctx.record(TraceKind::Enqueue {
                            queue: queues::OUTBOUND_BASE + to as u32,
                            depth,
                        });
                    }
                }
            }
        }
    }

    /// Drains the env and interprets each effect.
    fn apply_effects(&mut self) {
        let mut effects = self.env.take_buffer();
        for effect in effects.drain(..) {
            match effect {
                Effect::Send { to, msg } => self.enqueue(to.index(), msg),
                Effect::Broadcast { msg } => {
                    // One copy per process, self included (the substrate
                    // expands the fan-out, as on the other substrates).
                    for to in 0..self.peer_txs.len() {
                        self.enqueue(to, msg.clone());
                    }
                }
                Effect::SetTimer { id, delay } => {
                    let due = Instant::now() + self.tick * (delay.min(u32::MAX as u64) as u32);
                    self.env.timers_mut().arm(id);
                    self.timers.push(PendingTimer { due, id });
                }
                Effect::CancelTimer { id } => {
                    self.env.timers_mut().cancel(id);
                }
                Effect::Output(event) => {
                    self.outputs.push(MeshOutput {
                        elapsed: self.start.elapsed(),
                        event,
                    });
                }
                Effect::Halt => {
                    self.halted = true;
                }
            }
        }
        self.env.restore_buffer(effects);
    }
}

// ---------------------------------------------------------------------------
// Writer side
// ---------------------------------------------------------------------------

/// What rides a writer's queue: protocol messages from the node loop, or
/// pong echoes a reader owes the peer that pinged it (a reader cannot
/// write to its inbound socket's other direction — connections are
/// unidirectional — so the echo travels over this side's own outbound
/// connection to that peer).
enum WriterCmd<M> {
    /// A protocol message (framed through the codec, MAC'd, replayed).
    Msg(M),
    /// Echo of an RTT probe: the originator's stamp, returned verbatim as
    /// a raw control frame (no codec, no MAC, no replay).
    Pong(u64),
}

/// Everything a writer thread needs to know about its peer.
struct WriterSpec {
    me: ProcessId,
    n: u32,
    peer: usize,
    addr: SocketAddr,
    max_frame: usize,
    initial_backoff: Duration,
    max_backoff: Duration,
    connect_timeout: Duration,
    keepalive: Duration,
    auth: Option<Arc<dyn Authenticator>>,
    trace: Option<Arc<TraceCtx>>,
    /// Shadow depth of this writer's queue (trace labels and the
    /// `link.backlog.p<i>` gauge).
    depth: Arc<AtomicU64>,
    /// The mesh's start instant — the clock RTT probe stamps are taken
    /// from, shared with the readers that resolve the echoes.
    epoch: Instant,
}

/// Byte budget for a writer's replay ring (see [`spawn_writer`]).
const WRITER_REPLAY_BYTES: usize = 1 << 20;

fn spawn_writer<M>(
    spec: WriterSpec,
    rx: Receiver<WriterCmd<M>>,
    shared: Arc<MeshCounters>,
) -> JoinHandle<()>
where
    M: Wire + Send + 'static,
{
    std::thread::spawn(move || {
        let peer_id = ProcessId::new(spec.peer);
        let hello = match &spec.auth {
            Some(auth) => Hello::authenticated(spec.n, auth.as_ref(), peer_id),
            None => Hello::new(spec.me, spec.n),
        }
        .encode();
        let mut backoff = spec.initial_backoff;
        let mut connects = 0u64;
        let mut buf = Vec::new();
        // The protocol stack assumes reliable channels: every consensus
        // message is sent exactly once, so a frame that dies with a broken
        // connection is a liveness hole (most insidiously when the peer's
        // epoch rule evicts this connection — e.g. under an impersonation
        // storm — and TCP only reports the break on a *later* write). Two
        // mechanisms close the gap: recently written frames ride a bounded
        // replay ring that is re-sent wholesale after every reconnect
        // (every layer above dedups by sender, so duplicates are free), and
        // an idle writer probes the socket with keepalive frames so a dead
        // connection is noticed in ~100ms instead of never.
        let mut replay: VecDeque<Vec<u8>> = VecDeque::new();
        let mut replay_bytes = 0usize;
        'reconnect: while !shared.shutdown() {
            let mut stream = match TcpStream::connect_timeout(&spec.addr, spec.connect_timeout) {
                Ok(s) => s,
                Err(_) => {
                    shared.dial_backoffs.inc();
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(spec.max_backoff);
                    continue 'reconnect;
                }
            };
            backoff = spec.initial_backoff;
            connects += 1;
            if connects > 1 {
                shared.reconnects.inc();
            }
            let _ = stream.set_nodelay(true);
            // A peer that accepts but never reads would otherwise pin this
            // thread in write_all forever (and hang shutdown): bound every
            // write, and treat a timeout like any broken connection.
            let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
            if stream.write_all(&hello).is_err() {
                continue 'reconnect;
            }
            for frame in &replay {
                if stream.write_all(frame).is_err() {
                    continue 'reconnect;
                }
            }
            // Seed the RTT estimate at establishment: one probe right after
            // the hello, then on the keepalive cadence. Without it a link
            // that lives shorter than one keepalive is never measured.
            shared.pings.inc();
            let stamp = spec.epoch.elapsed().as_nanos() as u64;
            if stream.write_all(&control_frame(PING_TAG, stamp)).is_err() {
                continue 'reconnect;
            }
            let mut last_ping = Instant::now();
            loop {
                match rx.recv_timeout(spec.keepalive) {
                    Ok(WriterCmd::Pong(stamp)) => {
                        // Echo the peer's RTT probe. Raw control frame:
                        // best-effort (no replay ring) — a lost pong just
                        // skips one RTT observation.
                        if shared.shutdown() {
                            return;
                        }
                        if stream.write_all(&control_frame(PONG_TAG, stamp)).is_err() {
                            continue 'reconnect;
                        }
                    }
                    Ok(WriterCmd::Msg(msg)) => {
                        let depth = spec
                            .depth
                            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                                Some(d.saturating_sub(1))
                            })
                            .unwrap_or(0)
                            .saturating_sub(1);
                        shared.backlog[spec.peer].set(depth);
                        if let Some(ctx) = &spec.trace {
                            ctx.record(TraceKind::Dequeue {
                                queue: queues::OUTBOUND_BASE + spec.peer as u32,
                                depth,
                            });
                        }
                        if shared.shutdown() {
                            // Teardown outranks the backlog: against a
                            // slow (or byte-at-a-time Byzantine) reader,
                            // draining a full queue at up to one write
                            // timeout per message could hold the mesh's
                            // join far past its wall-clock cap. The popped
                            // message is discarded — count it like every
                            // other drop.
                            shared.outbound_dropped[spec.peer].inc();
                            return;
                        }
                        buf.clear();
                        // Untraced runs call the plain codec — the timing
                        // probe costs two clock reads per frame, paid only
                        // when someone will look at the result.
                        let encoded = if let Some(ctx) = &spec.trace {
                            let (res, nanos) = match &spec.auth {
                                Some(auth) => {
                                    let t0 = Instant::now();
                                    let r = encode_frame_tagged(
                                        &msg,
                                        &mut buf,
                                        spec.max_frame,
                                        auth.as_ref(),
                                        peer_id,
                                    );
                                    (r, t0.elapsed().as_nanos() as u64)
                                }
                                None => encode_frame_timed(&msg, &mut buf, spec.max_frame),
                            };
                            ctx.record(TraceKind::FrameEncoded {
                                bytes: buf.len() as u64,
                                nanos,
                            });
                            res
                        } else {
                            match &spec.auth {
                                Some(auth) => encode_frame_tagged(
                                    &msg,
                                    &mut buf,
                                    spec.max_frame,
                                    auth.as_ref(),
                                    peer_id,
                                ),
                                None => encode_frame(&msg, &mut buf, spec.max_frame),
                            }
                        };
                        if encoded.is_err() {
                            // Oversized local message: unsendable, count it.
                            shared.outbound_dropped[spec.peer].inc();
                            continue;
                        }
                        // Into the ring *before* the write: a failed write
                        // is then a retransmission matter, not a loss (the
                        // frame goes out with the replay on reconnect).
                        // Frames evicted past the byte budget may or may
                        // not have been delivered — they are not counted as
                        // drops, the ring is a best-effort replay window.
                        replay_bytes += buf.len();
                        replay.push_back(buf.clone());
                        while replay_bytes > WRITER_REPLAY_BYTES && replay.len() > 1 {
                            let evicted = replay.pop_front().expect("ring is non-empty");
                            replay_bytes -= evicted.len();
                        }
                        if stream.write_all(&buf).is_err() {
                            continue 'reconnect;
                        }
                        // Refresh the RTT estimate under load too: without
                        // this, a busy connection would only ever be
                        // measured while idle.
                        if last_ping.elapsed() >= spec.keepalive {
                            last_ping = Instant::now();
                            shared.pings.inc();
                            let stamp = spec.epoch.elapsed().as_nanos() as u64;
                            if stream.write_all(&control_frame(PING_TAG, stamp)).is_err() {
                                continue 'reconnect;
                            }
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        if shared.shutdown() {
                            return;
                        }
                        shared.keepalives.inc();
                        shared.pings.inc();
                        last_ping = Instant::now();
                        let stamp = spec.epoch.elapsed().as_nanos() as u64;
                        let mut probe = KEEPALIVE_FRAME.to_vec();
                        probe.extend_from_slice(&control_frame(PING_TAG, stamp));
                        if stream.write_all(&probe).is_err() {
                            continue 'reconnect;
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            }
        }
    })
}

// ---------------------------------------------------------------------------
// Reader side
// ---------------------------------------------------------------------------

/// The per-connection knobs every reader inherits from the mesh.
struct ReaderConfig<M> {
    me: ProcessId,
    n: usize,
    max_frame: usize,
    auth: Option<Arc<dyn Authenticator>>,
    trace: Option<Arc<TraceCtx>>,
    /// Shadow depth of the inbox (trace labels only).
    inbox_depth: Arc<AtomicU64>,
    /// Writer queues (self slot `None`), for routing a pong echo back to
    /// whichever peer pinged this reader's connection.
    pong_txs: Vec<Option<Sender<WriterCmd<M>>>>,
    /// The stamp clock RTT probes are measured against (the mesh's start
    /// instant, shared with the writer threads).
    epoch: Instant,
    /// Nanoseconds per virtual tick — the RTT gauges' unit.
    tick_ns: u64,
}

// Manual impl: `derive(Clone)` would demand `M: Clone`, which readers
// never need (they only clone the channel handles).
impl<M> Clone for ReaderConfig<M> {
    fn clone(&self) -> Self {
        ReaderConfig {
            me: self.me,
            n: self.n,
            max_frame: self.max_frame,
            auth: self.auth.clone(),
            trace: self.trace.clone(),
            inbox_depth: Arc::clone(&self.inbox_depth),
            pong_txs: self.pong_txs.clone(),
            epoch: self.epoch,
            tick_ns: self.tick_ns,
        }
    }
}

fn spawn_acceptor<M>(
    listener: TcpListener,
    inbox: Sender<(ProcessId, M)>,
    shared: Arc<MeshCounters>,
    max_connections: usize,
    reader: ReaderConfig<M>,
) -> JoinHandle<()>
where
    M: Wire + Send + 'static,
{
    std::thread::spawn(move || {
        listener
            .set_nonblocking(true)
            .expect("listener nonblocking mode");
        let mut readers: Vec<JoinHandle<()>> = Vec::new();
        while !shared.shutdown() {
            // Reap finished readers as we go: a Byzantine peer cycling
            // short-lived connections must not accumulate dead threads'
            // stacks for the life of the run.
            readers.retain(|r| !r.is_finished());
            match listener.accept() {
                Ok((stream, _)) => {
                    if shared.live_connections.get() as usize >= max_connections {
                        // Socket-exhaustion defense: refuse, don't spawn —
                        // and count it, so a lockout is visible.
                        shared.accept_rejects.inc();
                        drop(stream);
                        continue;
                    }
                    shared.live_connections.inc();
                    let inbox = inbox.clone();
                    let shared = Arc::clone(&shared);
                    let reader = reader.clone();
                    readers.push(std::thread::spawn(move || {
                        reader_loop::<M>(stream, inbox, &shared, reader);
                        shared.live_connections.dec();
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
        for r in readers {
            let _ = r.join();
        }
    })
}

/// Reads one connection until EOF, error, shutdown, or Byzantine bytes.
///
/// The loop tolerates arbitrary packetization: bytes accumulate in a local
/// buffer and frames are split off as they complete. The buffer stays
/// bounded by `max_frame` plus one read chunk — a peer announcing a larger
/// frame is disconnected at the header, before any payload is buffered.
fn reader_loop<M>(
    mut stream: TcpStream,
    inbox: Sender<(ProcessId, M)>,
    shared: &MeshCounters,
    config: ReaderConfig<M>,
) where
    M: Wire + Send + 'static,
{
    let ReaderConfig {
        me,
        n,
        max_frame,
        auth,
        trace,
        inbox_depth,
        pong_txs,
        epoch,
        tick_ns,
    } = config;
    // With auth on, the sender's MAC tag rides inside the frame body, so a
    // max-size message legitimately occupies `max_frame + FRAME_TAG_OVERHEAD`
    // bytes on the wire. Admit exactly that much; the cap still binds.
    let read_cap = match auth {
        Some(_) => tagged_frame_cap(max_frame),
        None => max_frame,
    };
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut sender: Option<ProcessId> = None;
    // Two defenses keep connection slots reclaimable: connections that
    // never complete a valid Hello are cut at a deadline, and completing a
    // Hello claims the sender's *epoch* — only the newest connection per
    // claimed sender survives, so neither an attacker holding hello'd
    // sockets open nor a correct peer's own stale half-open connection can
    // pin a slot (the reconnect supersedes it).
    let mut my_epoch = 0;
    let opened = Instant::now();
    const HANDSHAKE_DEADLINE: Duration = Duration::from_secs(5);
    while !shared.shutdown() {
        match sender {
            None if opened.elapsed() >= HANDSHAKE_DEADLINE => {
                shared.handshake_rejects.inc();
                return;
            }
            Some(from)
                if shared.sender_epochs[from.index()].load(Ordering::Relaxed) != my_epoch =>
            {
                return; // superseded by a newer connection from this sender
            }
            _ => {}
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // clean EOF
            Ok(k) => {
                buf.extend_from_slice(&chunk[..k]);
                if sender.is_none() {
                    // A foreign protocol is cut the moment its prefix
                    // diverges from the magic — don't hold the connection
                    // to the handshake deadline waiting for a full Hello
                    // that can no longer arrive.
                    let k = buf.len().min(MAGIC.len());
                    if buf[..k] != MAGIC[..k] {
                        shared.handshake_rejects.inc();
                        return;
                    }
                    if buf.len() < HELLO_LEN {
                        continue; // partial handshake: wait for more bytes
                    }
                    let mut input = buf.as_slice();
                    match Hello::decode(&mut input) {
                        Ok(hello)
                            if hello.n as usize == n
                                && hello.sender.index() < n
                                && hello.sender != me =>
                        {
                            // Key confirmation comes BEFORE the epoch claim:
                            // a forged Hello must not supersede (and thereby
                            // kill) the genuine sender's live connection.
                            if let Some(auth) = &auth {
                                if !hello.verify_auth(auth.as_ref()) {
                                    shared.auth_rejects.inc();
                                    return;
                                }
                            }
                            sender = Some(hello.sender);
                            my_epoch = shared.sender_epochs[hello.sender.index()]
                                .fetch_add(1, Ordering::Relaxed)
                                + 1;
                            buf.drain(..HELLO_LEN);
                        }
                        _ => {
                            // Foreign protocol, incompatible version, wrong
                            // cluster, or an impersonation attempt.
                            shared.handshake_rejects.inc();
                            return;
                        }
                    }
                }
                let from = sender.expect("handshake complete");
                let mut consumed = 0;
                loop {
                    match split_frame(&buf[consumed..], read_cap) {
                        Ok(None) => break,
                        Ok(Some((payload, used))) => {
                            if payload.is_empty() {
                                // Idle keepalive probe: liveness only. It is
                                // skipped before MAC verification — it has no
                                // payload, so forging one achieves nothing.
                                consumed += used;
                                continue;
                            }
                            if let Some((tag, stamp)) = split_control(payload) {
                                // RTT plumbing, recognized (like keepalives)
                                // before MAC verification: control frames
                                // carry no protocol data, so the worst a
                                // forgery can do is nudge a health gauge.
                                consumed += used;
                                if tag == PING_TAG {
                                    // The echo owed travels over our own
                                    // outbound connection to the pinger
                                    // (connections are unidirectional); a
                                    // full queue just drops the echo and
                                    // skips one RTT observation.
                                    if let Some(tx) = &pong_txs[from.index()] {
                                        let _ = tx.try_send(WriterCmd::Pong(stamp));
                                    }
                                } else {
                                    debug_assert_eq!(tag, PONG_TAG);
                                    let now = epoch.elapsed().as_nanos() as u64;
                                    let rtt = now.saturating_sub(stamp);
                                    shared.observe_rtt(from.index(), (rtt / tick_ns.max(1)).max(1));
                                }
                                continue;
                            }
                            // The MAC is checked before any byte reaches the
                            // codec: forged frames are cut without giving the
                            // decoder attacker-controlled input.
                            let body = match &auth {
                                Some(a) => match verify_frame_tag(payload, a.as_ref(), from) {
                                    Ok(body) => body,
                                    Err(_) => {
                                        shared.auth_rejects.inc();
                                        return;
                                    }
                                },
                                None => payload,
                            };
                            let decoded = match &trace {
                                Some(ctx) => {
                                    let (res, nanos) = decode_frame_timed::<M>(body);
                                    ctx.record(TraceKind::FrameDecoded {
                                        bytes: body.len() as u64,
                                        nanos,
                                    });
                                    res
                                }
                                None => decode_frame::<M>(body),
                            };
                            match decoded {
                                Ok(msg) => {
                                    consumed += used;
                                    if inbox.send((from, msg)).is_err() {
                                        return; // node loop is gone
                                    }
                                    if let Some(ctx) = &trace {
                                        let depth = inbox_depth.fetch_add(1, Ordering::Relaxed) + 1;
                                        ctx.record(TraceKind::Enqueue {
                                            queue: queues::INBOX,
                                            depth,
                                        });
                                    }
                                }
                                Err(_) => {
                                    shared.decode_disconnects.inc();
                                    return;
                                }
                            }
                        }
                        Err(_) => {
                            shared.decode_disconnects.inc();
                            return;
                        }
                    }
                }
                buf.drain(..consumed);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => return,
        }
    }
}
