//! Localhost cluster orchestration: spawn `n` `minsync-node` OS processes,
//! bootstrap their port assignments over a stdin/stdout control pipe, and
//! collect per-replica committed-log digests and latency statistics.
//!
//! The bootstrap avoids fixed ports entirely (parallel test runs never
//! collide): every child binds `127.0.0.1:0`, reports the kernel-assigned
//! port as a `PORT <p>` control line, the orchestrator gathers all `n`
//! ports and writes one `PEERS <addr0> … <addrN−1>` line back to every
//! child, and only then does the mesh start dialing. When a correct child
//! drains its workload it emits its statistics block (ending in `DONE`) but
//! **keeps serving** — laggards may still need its acks and checkpoints —
//! until the orchestrator broadcasts `STOP` (or closes the pipe), at which
//! point the child tears its mesh down and exits. Byzantine children never
//! report; they run until `STOP`.
//!
//! The control-line grammar lives in [`control`], shared with the
//! `minsync-node` binary so the two sides cannot drift.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use minsync_auth::HmacAuthenticator;
use minsync_telemetry::{Sample, Snapshot, TimeSeries, STREAM_FOOTER, STREAM_HEADER};
use minsync_workload::ArrivalProcess;

/// How one replica slot behaves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Behavior {
    /// An honest replica running the full SMR + workload pipeline.
    Correct,
    /// Byzantine-silent: participates in nothing (occupies a fault slot).
    Silent,
    /// Byzantine-flooding: broadcasts bursts of future-slot protocol spam
    /// *and* dials peers with raw garbage bytes (exercising both the
    /// bounded-buffer and the decode-error-disconnect defenses).
    Flood,
    /// Byzantine-impersonating: dials peers claiming *other* replicas'
    /// identities — forged handshakes carrying poison checkpoint votes,
    /// replays of captured genuine traffic, and (when it holds keys of its
    /// own) MAC games probing the verify-before-decode pipeline. An
    /// unauthenticated cluster accepts the forged streams; an authenticated
    /// one must sever every arm of the attack.
    Impersonate,
}

impl Behavior {
    /// The `--behavior` CLI value.
    pub fn arg(self) -> &'static str {
        match self {
            Behavior::Correct => "correct",
            Behavior::Silent => "silent",
            Behavior::Flood => "flood",
            Behavior::Impersonate => "impersonate",
        }
    }

    /// Parses a `--behavior` CLI value.
    pub fn parse(s: &str) -> Option<Behavior> {
        match s {
            "correct" => Some(Behavior::Correct),
            "silent" => Some(Behavior::Silent),
            "flood" => Some(Behavior::Flood),
            "impersonate" => Some(Behavior::Impersonate),
            _ => None,
        }
    }
}

/// Control-pipe line grammar shared by the orchestrator and `minsync-node`.
pub mod control {
    /// Child → parent: "my listener is bound on this port".
    pub const PORT: &str = "PORT";
    /// Parent → child: the full space-separated peer address list.
    pub const PEERS: &str = "PEERS";
    /// Parent → child: drop all outbound traffic to the listed peer ids
    /// (replacing any previous `PART` set) — the fault-injection verb
    /// behind cluster partitions and rotating isolation.
    pub const PART: &str = "PART";
    /// Parent → child: clear every `PART` rule.
    pub const HEAL: &str = "HEAL";
    /// Parent → child: tear down and exit.
    pub const STOP: &str = "STOP";
    /// Child → parent: end of the statistics block.
    pub const DONE: &str = "DONE";
}

/// Serializes an [`ArrivalProcess`] as a CLI argument (`poisson:G`,
/// `bursty:B/P`, `closed:T`).
pub fn arrival_to_arg(a: &ArrivalProcess) -> String {
    match a {
        ArrivalProcess::Poisson { mean_gap } => format!("poisson:{mean_gap}"),
        ArrivalProcess::Bursty { burst, period } => format!("bursty:{burst}/{period}"),
        ArrivalProcess::ClosedLoop { think } => format!("closed:{think}"),
    }
}

/// Parses the [`arrival_to_arg`] encoding.
pub fn parse_arrival(s: &str) -> Option<ArrivalProcess> {
    let (kind, rest) = s.split_once(':')?;
    match kind {
        "poisson" => Some(ArrivalProcess::Poisson {
            mean_gap: rest.parse().ok().filter(|g: &f64| *g > 0.0)?,
        }),
        "bursty" => {
            let (burst, period) = rest.split_once('/')?;
            Some(ArrivalProcess::Bursty {
                burst: burst.parse().ok().filter(|b: &usize| *b > 0)?,
                period: period.parse().ok()?,
            })
        }
        "closed" => Some(ArrivalProcess::ClosedLoop {
            think: rest.parse().ok()?,
        }),
        _ => None,
    }
}

/// FNV-1a over a committed log: each entry hashed as
/// `(slot, batch length, commands…)`. Two replicas report equal digests iff
/// they committed identical batches to identical slots — the cluster-wide
/// agreement check, compressed to eight bytes per replica so it fits a
/// control line.
#[derive(Clone, Copy, Debug)]
pub struct LogDigest(u64);

impl LogDigest {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// An empty-log digest.
    pub fn new() -> Self {
        LogDigest(Self::OFFSET)
    }

    fn mix(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Folds one committed `(slot, commands)` entry into the digest (call
    /// in commit order).
    pub fn fold_slot(&mut self, slot: u64, commands: &[u64]) {
        self.mix(slot);
        self.mix(commands.len() as u64);
        for &cmd in commands {
            self.mix(cmd);
        }
    }

    /// The digest value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl Default for LogDigest {
    fn default() -> Self {
        Self::new()
    }
}

/// Everything needed to spawn one cluster.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// System size.
    pub n: usize,
    /// Fault bound.
    pub t: usize,
    /// Workload routing groups `m` (use 1 for digest-comparable logs).
    pub groups: usize,
    /// Client streams per group.
    pub clients_per_group: usize,
    /// Commands per client.
    pub commands_per_client: usize,
    /// Batch cap of the proposal sources.
    pub batch: usize,
    /// Arrival process of every client.
    pub arrivals: ArrivalProcess,
    /// Cluster seed (workload generation and derived per-replica streams).
    pub seed: u64,
    /// Behaviors for the top replica ids: `riders[k]` is replica
    /// `n − riders.len() + k`; all lower ids are correct.
    pub riders: Vec<Behavior>,
    /// Authenticate the mesh: a dealer keyed off `seed` hands every child
    /// its pairwise-MAC keyring (`--auth-keys`), and each child MACs its
    /// handshake and every frame. Riders receive their *own* genuine
    /// keyring — a corrupt replica legitimately holds its keys; what it
    /// must not hold is anyone else's.
    pub auth: bool,
    /// Wall-clock duration of one virtual tick inside each child.
    pub tick: Duration,
    /// Per-child wall-clock cap.
    pub child_timeout: Duration,
    /// Orchestrator-side cap on the whole cluster run.
    pub harness_timeout: Duration,
    /// Override the SMR pipelining window (`SmrLimits::window`) of every
    /// correct child; `None` keeps the crate default. `Some(1)` serializes
    /// the log — one slot must commit before the next starts — which is
    /// the baseline the E16 pipelining comparison measures against.
    pub window: Option<u64>,
    /// Hand every correct child a `--trace` path inside this directory
    /// (`trace-<id>.jsonl`): the mesh + SMR trace ring is dumped there
    /// when the child stops, ready for `minsync-trace` or the
    /// `minsync-telemetry` analyzer. `None` disables tracing (and its
    /// cost) entirely.
    pub trace_dir: Option<PathBuf>,
    /// Ask every correct child for live `STAT-STREAM v1` samples at this
    /// wall-clock period (`--stats-period`); the orchestrator reassembles
    /// them into each [`ReplicaStats::series`] and the children run their
    /// local invariant watchdogs over the same snapshots. `None` keeps the
    /// control pipe quiet until the final report.
    pub stats_period: Option<Duration>,
}

impl ClusterSpec {
    /// Total client commands the workload will submit.
    pub fn total_commands(&self) -> usize {
        self.groups * self.clients_per_group * self.commands_per_client
    }

    /// Number of correct replicas (`n` minus the rider slots).
    pub fn correct(&self) -> usize {
        self.n - self.riders.len()
    }
}

/// One correct replica's report, parsed off its control pipe.
#[derive(Clone, Debug)]
pub struct ReplicaStats {
    /// Replica id.
    pub id: usize,
    /// Client commands committed.
    pub committed: usize,
    /// Log slots committed (including no-op batches).
    pub slots: u64,
    /// Committed-log digest ([`LogDigest`]).
    pub digest: u64,
    /// Wall-clock time from mesh start to workload drain.
    pub wall: Duration,
    /// Latency sample size.
    pub lat_count: usize,
    /// Submit→commit latency percentiles, in virtual ticks.
    pub lat_p50: u64,
    /// 95th percentile, ticks.
    pub lat_p95: u64,
    /// 99th percentile, ticks.
    pub lat_p99: u64,
    /// Mean latency, ticks.
    pub lat_mean: f64,
    /// Outbound messages this replica dropped across all peers (bounded
    /// writer queues + broken-connection losses).
    pub outbound_dropped: u64,
    /// Inbound connections this replica cut for undecodable bytes.
    pub decode_disconnects: u64,
    /// Inbound connections this replica refused at the handshake.
    pub handshake_rejects: u64,
    /// Inbound connections this replica severed for failed MAC checks
    /// (forged handshake tags and forged frame tags alike); always zero
    /// when the cluster runs unauthenticated.
    pub auth_rejects: u64,
    /// Future-slot messages the SMR layer dropped at its horizon/buffer
    /// caps; zero in a clean run.
    pub future_drops: u64,
    /// Messages the SMR layer refused for already-retired slots; zero in a
    /// clean run.
    pub retired_drops: u64,
    /// The child's full metrics snapshot, when it reported in the
    /// `STAT v1` format — every `mesh.*`/`smr.*`/`node.*` metric the
    /// summary fields above were extracted from, for callers that need
    /// counters without a dedicated field (keepalives, cert rejects, …).
    /// Empty for legacy positional reports.
    pub snapshot: Snapshot,
    /// The reassembled live stat stream, when the run asked for one
    /// ([`ClusterSpec::stats_period`]); empty otherwise. Each point is the
    /// child's full reconstructed metric state at one sampling instant —
    /// ready for [`minsync_telemetry::Watchdog::observe`] replay or
    /// detection-latency measurement.
    pub series: TimeSeries,
}

/// Result of one cluster run: every *correct* replica's stats.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Per-correct-replica statistics, ordered by id.
    pub replicas: Vec<ReplicaStats>,
    /// Total commands the workload submitted.
    pub total_commands: usize,
    /// Orchestrator-side wall-clock for the whole run (spawn to reap).
    pub elapsed: Duration,
}

impl ClusterReport {
    /// True iff every correct replica reported the same committed-log
    /// digest — the distributed-agreement check.
    pub fn digests_agree(&self) -> bool {
        self.replicas.windows(2).all(|w| w[0].digest == w[1].digest)
    }

    /// Cluster throughput in commands per wall-clock second, measured at
    /// the slowest correct replica.
    pub fn cmds_per_sec(&self) -> f64 {
        let slowest = self
            .replicas
            .iter()
            .map(|r| r.wall)
            .max()
            .unwrap_or_default();
        if slowest.is_zero() {
            return 0.0;
        }
        self.total_commands as f64 / slowest.as_secs_f64()
    }
}

/// Why a cluster run failed.
#[derive(Clone, Debug)]
pub enum ClusterError {
    /// The `minsync-node` binary was not found (see [`node_binary`]).
    BinaryMissing(String),
    /// Spawning or piping a child failed.
    Io(String),
    /// A child misbehaved on the control pipe (bad line, early exit).
    Protocol {
        /// Offending replica id.
        id: usize,
        /// What went wrong.
        what: String,
    },
    /// The cluster did not complete within the harness timeout.
    Timeout {
        /// Replica ids that never finished their report.
        pending: Vec<usize>,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::BinaryMissing(hint) => write!(f, "minsync-node binary missing: {hint}"),
            ClusterError::Io(e) => write!(f, "cluster io error: {e}"),
            ClusterError::Protocol { id, what } => {
                write!(f, "replica {id} control-pipe violation: {what}")
            }
            ClusterError::Timeout { pending } => {
                write!(f, "cluster timed out; replicas still pending: {pending:?}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

impl ClusterError {
    /// Fills a [`ClusterError::Timeout`]'s pending-replica list (the
    /// deadline fires inside the line receiver, which does not know which
    /// replicas the caller is still waiting on); other variants pass
    /// through unchanged.
    fn with_pending(self, pending: impl FnOnce() -> Vec<usize>) -> Self {
        match self {
            ClusterError::Timeout { .. } => ClusterError::Timeout { pending: pending() },
            other => other,
        }
    }
}

/// Locates the `minsync-node` binary: the `MINSYNC_NODE_BIN` environment
/// variable if set (integration tests point it at `CARGO_BIN_EXE_…`),
/// otherwise a sibling of the current executable (walking a couple of
/// directories up covers `target/<profile>/deps/` test binaries). If
/// neither hits and a `cargo` is available (the `CARGO` environment
/// variable any cargo-launched process inherits, or plain `cargo` on
/// `PATH`), it builds the binary once — matching the running profile — and
/// retries, so `cargo test -p minsync-harness` on a clean target directory
/// does not fail on a bin another crate owns.
///
/// # Errors
///
/// [`ClusterError::BinaryMissing`] with a build hint.
pub fn node_binary() -> Result<PathBuf, ClusterError> {
    if let Ok(path) = std::env::var("MINSYNC_NODE_BIN") {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Ok(path);
        }
        return Err(ClusterError::BinaryMissing(format!(
            "MINSYNC_NODE_BIN points at {} which does not exist",
            path.display()
        )));
    }
    if let Some(found) = locate_near_current_exe() {
        return Ok(found);
    }
    // Fall back to building it. `current_exe` under `target/release`
    // selects the release profile so cluster perf matches the caller's.
    let release = std::env::current_exe()
        .ok()
        .is_some_and(|exe| exe.components().any(|c| c.as_os_str() == "release"));
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let mut build = Command::new(cargo);
    build.args(["build", "-p", "minsync-transport", "--bin", "minsync-node"]);
    if release {
        build.arg("--release");
    }
    let built = build
        .status()
        .map(|status| status.success())
        .unwrap_or(false);
    if built {
        if let Some(found) = locate_near_current_exe() {
            return Ok(found);
        }
    }
    Err(ClusterError::BinaryMissing(
        "build it with `cargo build --release -p minsync-transport` (or set MINSYNC_NODE_BIN)"
            .into(),
    ))
}

/// The sibling-of-`current_exe` search `node_binary` uses.
fn locate_near_current_exe() -> Option<PathBuf> {
    let name = format!("minsync-node{}", std::env::consts::EXE_SUFFIX);
    let exe = std::env::current_exe().ok()?;
    exe.ancestors()
        .skip(1)
        .take(3)
        .map(|dir| dir.join(&name))
        .find(|candidate| candidate.is_file())
}

/// Kill-on-drop guard: whatever goes wrong in the orchestrator, no child
/// process outlives it.
struct Reaper(Vec<Child>);

impl Drop for Reaper {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// One line read off a child's stdout, or its EOF marker.
enum ChildLine {
    Line(usize, String),
    Eof(usize),
}

/// Reassembles per-child `STAT-STREAM v1` blocks out of the control-pipe
/// line stream. Stream lines are consumed here — they must not leak into
/// the statistics blocks — and assembly is best-effort: a malformed or
/// out-of-order sample is dropped rather than failing the run, since the
/// stream is telemetry, not protocol.
struct StreamAssembler {
    series: Vec<TimeSeries>,
    partial: Vec<Option<Vec<String>>>,
}

impl StreamAssembler {
    fn new(n: usize) -> StreamAssembler {
        StreamAssembler {
            series: (0..n).map(|_| TimeSeries::with_capacity(4096)).collect(),
            partial: vec![None; n],
        }
    }

    /// Routes one control line; true iff it belonged to a stat stream.
    fn consume(&mut self, id: usize, line: &str) -> bool {
        if let Some(buf) = &mut self.partial[id] {
            buf.push(line.to_string());
            if line.trim() == STREAM_FOOTER {
                let text = buf.join("\n");
                self.partial[id] = None;
                if let Ok(sample) = Sample::parse(&text) {
                    let _ = self.series[id].apply(&sample);
                }
            }
            true
        } else if line.trim_start().starts_with(STREAM_HEADER) {
            self.partial[id] = Some(vec![line.to_string()]);
            true
        } else {
            false
        }
    }

    /// Discards a child's stream state (a killed incarnation's replacement
    /// restarts its sampler at index 0, which the old series would reject).
    fn reset(&mut self, id: usize) {
        self.series[id] = TimeSeries::with_capacity(4096);
        self.partial[id] = None;
    }

    /// Moves a child's finished series out.
    fn take(&mut self, id: usize) -> TimeSeries {
        std::mem::replace(&mut self.series[id], TimeSeries::with_capacity(1))
    }
}

/// Spawns and runs one localhost cluster to completion (see the module
/// docs for the bootstrap protocol).
///
/// # Errors
///
/// [`ClusterError`] if the binary is missing, a child dies or violates the
/// control protocol, or the run exceeds [`ClusterSpec::harness_timeout`].
pub fn run_cluster(spec: &ClusterSpec) -> Result<ClusterReport, ClusterError> {
    assert!(
        spec.riders.len() <= spec.t,
        "riders must fit the fault bound"
    );
    assert!(spec.correct() >= 1, "need at least one correct replica");
    let bin = node_binary()?;
    let start = Instant::now();
    let deadline = start + spec.harness_timeout;

    // The trusted dealer: pairwise MAC keys derived from the cluster seed,
    // serialized per replica so each child only ever sees its own keyring.
    let keyrings = spec.auth.then(|| {
        let master = cluster_master(spec.seed);
        HmacAuthenticator::deal(&master, spec.n)
    });

    // Spawn every child with a piped control pipe.
    let mut children = Vec::with_capacity(spec.n);
    for id in 0..spec.n {
        let cfg = ChildConfig {
            id,
            behavior: behavior_of(spec, id),
            auth_hex: keyrings.as_ref().map(|k| k[id].to_hex()),
            listen: "127.0.0.1:0".into(),
            peers: None,
            wal: None,
            ckpt_retry: 0,
        };
        children.push(spawn_replica(&bin, spec, &cfg)?);
    }

    // One reader thread per child funnels control lines into a channel, so
    // the orchestrator never blocks on a single quiet pipe.
    let (line_tx, line_rx) = unbounded::<ChildLine>();
    let mut stdins = Vec::with_capacity(spec.n);
    for (id, child) in children.iter_mut().enumerate() {
        stdins.push(attach_reader(id, child, &line_tx));
    }
    drop(line_tx);
    let mut reaper = Reaper(children);

    // Phase 1: gather every child's kernel-assigned port.
    let mut ports: BTreeMap<usize, u16> = BTreeMap::new();
    let mut pending_lines: Vec<Vec<String>> = vec![Vec::new(); spec.n];
    while ports.len() < spec.n {
        let line = recv_line(&line_rx, deadline).map_err(|e| {
            e.with_pending(|| (0..spec.n).filter(|id| !ports.contains_key(id)).collect())
        })?;
        match line {
            ChildLine::Line(id, line) => {
                if let Some(port) = line
                    .strip_prefix(control::PORT)
                    .and_then(|r| r.trim().parse::<u16>().ok())
                {
                    ports.insert(id, port);
                } else {
                    pending_lines[id].push(line);
                }
            }
            ChildLine::Eof(id) => {
                // Fail fast with the child's exit status rather than
                // letting the caller wait out the harness deadline. Name
                // the phase honestly: the victim may already have spoken.
                let when = if ports.contains_key(&id) {
                    "right after announcing its port"
                } else {
                    "before announcing its port"
                };
                return Err(ClusterError::Protocol {
                    id,
                    what: format!("exited {when} ({})", exit_status_of(&mut reaper.0[id])),
                });
            }
        }
    }

    // Phase 2: hand everyone the full peer list.
    let peer_line = {
        let addrs: Vec<String> = (0..spec.n)
            .map(|id| format!("127.0.0.1:{}", ports[&id]))
            .collect();
        format!("{} {}\n", control::PEERS, addrs.join(" "))
    };
    for (id, stdin) in stdins.iter_mut().enumerate() {
        if let Err(e) = stdin
            .write_all(peer_line.as_bytes())
            .and_then(|()| stdin.flush())
        {
            // A broken pipe here means the child died *after* announcing
            // its port; name the victim rather than reporting a generic
            // io error (or worse, timing out in phase 3).
            return Err(ClusterError::Protocol {
                id,
                what: format!(
                    "closed its control pipe before taking the peer list: {e} ({})",
                    exit_status_of(&mut reaper.0[id])
                ),
            });
        }
    }

    // Phase 3: collect every correct replica's statistics block, routing
    // live stat-stream samples into per-child series as they arrive.
    let mut blocks: Vec<Vec<String>> = pending_lines;
    let mut streams = StreamAssembler::new(spec.n);
    let mut done = vec![false; spec.n];
    let mut eofs_owed = vec![1usize; spec.n];
    while (0..spec.correct()).any(|id| !done[id]) {
        let line = recv_line(&line_rx, deadline).map_err(|e| {
            e.with_pending(|| (0..spec.correct()).filter(|&id| !done[id]).collect())
        })?;
        match line {
            ChildLine::Line(id, line) => {
                if streams.consume(id, &line) {
                    // A stat-stream line, absorbed into the series.
                } else if line.trim() == control::DONE {
                    done[id] = true;
                } else {
                    blocks[id].push(line);
                }
            }
            ChildLine::Eof(id) if done[id] || id >= spec.correct() => {
                eofs_owed[id] = eofs_owed[id].saturating_sub(1);
            }
            ChildLine::Eof(id) => {
                return Err(ClusterError::Protocol {
                    id,
                    what: format!(
                        "exited before finishing its report ({})",
                        exit_status_of(&mut reaper.0[id])
                    ),
                });
            }
        }
    }

    // Phase 4: everyone has reported — release the cluster.
    for stdin in &mut stdins {
        let _ = stdin.write_all(format!("{}\n", control::STOP).as_bytes());
        let _ = stdin.flush();
    }
    drop(stdins); // EOF doubles as STOP for children that missed the line
    for (id, child) in reaper.0.iter_mut().enumerate() {
        let grace = Instant::now() + Duration::from_secs(5);
        loop {
            match child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() < grace => std::thread::sleep(Duration::from_millis(10)),
                _ => {
                    // Byzantine or wedged: the reaper's kill handles it.
                    let _ = id;
                    break;
                }
            }
        }
    }
    drain_stream_tail(&line_rx, &mut streams, eofs_owed);

    let mut replicas = Vec::with_capacity(spec.correct());
    for (id, block) in blocks.iter().enumerate().take(spec.correct()) {
        let mut stats = parse_stats(id, block)?;
        stats.series = streams.take(id);
        replicas.push(stats);
    }
    Ok(ClusterReport {
        replicas,
        total_commands: spec.total_commands(),
        elapsed: start.elapsed(),
    })
}

/// Phase-4 tail drain: a sampled child emits one closing `STAT-STREAM`
/// sample on its way out — *after* phase 3 stopped routing at `DONE` — so
/// the reader threads still hold stream lines when the reaping finishes.
/// Drain until every pipe has delivered the EOFs it owes (best effort,
/// deadline-bounded: the stream is telemetry, never worth failing a run
/// over), so each reconstructed series ends at the replica's drained state.
fn drain_stream_tail(
    line_rx: &Receiver<ChildLine>,
    streams: &mut StreamAssembler,
    mut eofs_owed: Vec<usize>,
) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while eofs_owed.iter().any(|&owed| owed > 0) {
        match line_rx.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
            Ok(ChildLine::Line(id, line)) => {
                streams.consume(id, &line);
            }
            Ok(ChildLine::Eof(id)) => eofs_owed[id] = eofs_owed[id].saturating_sub(1),
            Err(_) => break,
        }
    }
}

/// One mid-run disruption in a [`ChurnPlan`].
#[derive(Clone, Debug)]
pub enum ChurnAction {
    /// Install a full bidirectional partition: every replica in `side`
    /// drops outbound traffic to every replica outside it and vice versa
    /// (each live child gets the `PART` rule for the complement of its own
    /// side).
    Partition {
        /// Replica ids on one side of the cut.
        side: Vec<usize>,
    },
    /// Clear every partition rule on every live replica.
    Heal,
    /// Kill a replica outright (SIGKILL) — a crash fault, no goodbye.
    Kill {
        /// Replica to kill.
        id: usize,
    },
    /// Respawn a previously killed replica on its original port with the
    /// peer list preloaded; it replays its committed prefix from its
    /// write-ahead log and catches the tail over the checkpoint path.
    Restart {
        /// Replica to restart.
        id: usize,
    },
}

/// A [`ChurnAction`] scheduled at an offset from the bootstrap broadcast
/// (the moment every child has received `PEERS`).
#[derive(Clone, Debug)]
pub struct ChurnStep {
    /// When to act, relative to the bootstrap broadcast.
    pub at: Duration,
    /// What to do.
    pub action: ChurnAction,
}

/// A scripted sequence of disruptions for [`run_churn_cluster`], executed
/// in `at` order while the cluster works through its workload.
#[derive(Clone, Debug, Default)]
pub struct ChurnPlan {
    /// The scheduled steps.
    pub steps: Vec<ChurnStep>,
}

impl ChurnPlan {
    /// An empty plan (a churn run with no disruptions).
    pub fn new() -> ChurnPlan {
        ChurnPlan::default()
    }

    /// Appends one step, builder-style.
    #[must_use]
    pub fn step(mut self, at: Duration, action: ChurnAction) -> ChurnPlan {
        self.steps.push(ChurnStep { at, action });
        self
    }
}

/// Checkpoint-retry period (node ticks) passed to every child of a churn
/// run via `--ckpt-retry`: a partition really loses frames at the fault
/// switch, so the replicas must run the lossy-link repair
/// (`SmrLimits::ckpt_retry` in `minsync-smr`) or a single dropped
/// state-transfer reply wedges a laggard forever. 100 ticks ≈ 20 ms at
/// the default 200 µs tick. Plain [`run_cluster`] children leave it off:
/// loss-free runs keep the exact default-trace behavior (and their drop
/// counters stay zero — the repair's ack re-broadcasts would otherwise
/// retire slots fast enough for honest late instance traffic to land on
/// retired slots).
const CHURN_CKPT_RETRY: u64 = 100;

/// Like [`run_cluster`], but executes a scripted [`ChurnPlan`] of
/// partitions, heals, crashes, and recoveries while the cluster runs.
///
/// Every correct replica is handed a write-ahead log in a per-run temp
/// directory, so a [`ChurnAction::Restart`] recovers the victim's committed
/// prefix from disk and catches the tail over the checkpoint path; its
/// fresh report (digest included) covers the recovered log, which is how
/// E13 asserts a rejoiner ends byte-identical to the replicas that never
/// crashed. Details worth knowing when writing plans:
///
/// * A plan that kills a correct replica must also restart it, or the run
///   times out waiting for the victim's report.
/// * Steps that come due after every correct replica has reported are
///   skipped (the run is over; there is nothing left to disrupt).
/// * Restarted children come back with an empty partition set; if a
///   partition is active at restart time the orchestrator re-sends the
///   matching `PART` rule.
///
/// # Errors
///
/// As [`run_cluster`].
pub fn run_churn_cluster(
    spec: &ClusterSpec,
    plan: &ChurnPlan,
) -> Result<ClusterReport, ClusterError> {
    assert!(
        spec.riders.len() <= spec.t,
        "riders must fit the fault bound"
    );
    assert!(spec.correct() >= 1, "need at least one correct replica");
    let bin = node_binary()?;
    let start = Instant::now();
    let deadline = start + spec.harness_timeout;

    // Each run gets its own WAL directory (removed on exit, success or
    // not); the sequence number keeps parallel runs in one process apart.
    static CHURN_DIR_SEQ: AtomicU64 = AtomicU64::new(0);
    let wal_dir = TempDir::create(std::env::temp_dir().join(format!(
        "minsync-churn-{}-{}",
        std::process::id(),
        CHURN_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    )))?;
    let wal_path =
        |id: usize| (id < spec.correct()).then(|| wal_dir.0.join(format!("wal-{id}.log")));

    let keyrings = spec.auth.then(|| {
        let master = cluster_master(spec.seed);
        HmacAuthenticator::deal(&master, spec.n)
    });
    let auth_hex = |id: usize| keyrings.as_ref().map(|k| k[id].to_hex());

    let mut children = Vec::with_capacity(spec.n);
    for id in 0..spec.n {
        let cfg = ChildConfig {
            id,
            behavior: behavior_of(spec, id),
            auth_hex: auth_hex(id),
            listen: "127.0.0.1:0".into(),
            peers: None,
            wal: wal_path(id),
            ckpt_retry: CHURN_CKPT_RETRY,
        };
        children.push(spawn_replica(&bin, spec, &cfg)?);
    }

    let (line_tx, line_rx) = unbounded::<ChildLine>();
    let mut stdins: Vec<Option<ChildStdin>> = Vec::with_capacity(spec.n);
    for (id, child) in children.iter_mut().enumerate() {
        stdins.push(Some(attach_reader(id, child, &line_tx)));
    }
    // `line_tx` stays alive: restarted children clone it for their reader
    // threads. Liveness comes from the deadline, not channel disconnect.
    let mut reaper = Reaper(children);

    // Phase 1: gather every child's kernel-assigned port.
    let mut ports: BTreeMap<usize, u16> = BTreeMap::new();
    let mut pending_lines: Vec<Vec<String>> = vec![Vec::new(); spec.n];
    while ports.len() < spec.n {
        let line = recv_line(&line_rx, deadline).map_err(|e| {
            e.with_pending(|| (0..spec.n).filter(|id| !ports.contains_key(id)).collect())
        })?;
        match line {
            ChildLine::Line(id, line) => {
                if let Some(port) = line
                    .strip_prefix(control::PORT)
                    .and_then(|r| r.trim().parse::<u16>().ok())
                {
                    ports.insert(id, port);
                } else {
                    pending_lines[id].push(line);
                }
            }
            ChildLine::Eof(id) => {
                let when = if ports.contains_key(&id) {
                    "right after announcing its port"
                } else {
                    "before announcing its port"
                };
                return Err(ClusterError::Protocol {
                    id,
                    what: format!("exited {when} ({})", exit_status_of(&mut reaper.0[id])),
                });
            }
        }
    }

    // Phase 2: hand everyone the full peer list; the moment the last child
    // has it is the epoch every plan step's offset is measured from.
    let addrs: Vec<String> = (0..spec.n)
        .map(|id| format!("127.0.0.1:{}", ports[&id]))
        .collect();
    let peer_line = format!("{} {}\n", control::PEERS, addrs.join(" "));
    for (id, slot) in stdins.iter_mut().enumerate() {
        let stdin = slot.as_mut().expect("all children alive at bootstrap");
        if let Err(e) = stdin
            .write_all(peer_line.as_bytes())
            .and_then(|()| stdin.flush())
        {
            return Err(ClusterError::Protocol {
                id,
                what: format!(
                    "closed its control pipe before taking the peer list: {e} ({})",
                    exit_status_of(&mut reaper.0[id])
                ),
            });
        }
    }
    let epoch = Instant::now();

    // Phase 3: interleave plan steps with report collection.
    let mut steps = plan.steps.clone();
    steps.sort_by_key(|s| s.at);
    let mut next_step = 0;
    let mut killed = vec![false; spec.n];
    // Killed incarnations owe the channel one EOF each; count them so a
    // stale EOF (or a stale line racing it) is never blamed on — or mixed
    // into the report of — the restarted incarnation.
    let mut stale_eofs = vec![0usize; spec.n];
    // EOFs of children that legitimately exited ahead of phase 4 (a done or
    // Byzantine process dying early) — already delivered, so not owed.
    let mut early_eofs = vec![0usize; spec.n];
    let mut partition: Option<Vec<usize>> = None;
    let mut blocks: Vec<Vec<String>> = pending_lines;
    let mut streams = StreamAssembler::new(spec.n);
    let mut done = vec![false; spec.n];

    while (0..spec.correct()).any(|id| !done[id]) {
        // Fire every step that has come due.
        while next_step < steps.len() && epoch.elapsed() >= steps[next_step].at {
            let action = steps[next_step].action.clone();
            next_step += 1;
            match action {
                ChurnAction::Partition { side } => {
                    for (id, stdin) in stdins.iter_mut().enumerate() {
                        send_part(stdin, id, &side, spec.n);
                    }
                    partition = Some(side);
                }
                ChurnAction::Heal => {
                    for stdin in stdins.iter_mut().flatten() {
                        let _ = stdin
                            .write_all(format!("{}\n", control::HEAL).as_bytes())
                            .and_then(|()| stdin.flush());
                    }
                    partition = None;
                }
                ChurnAction::Kill { id } => {
                    assert!(!killed[id], "churn plan killed replica {id} twice");
                    killed[id] = true;
                    stale_eofs[id] += 1;
                    done[id] = false;
                    blocks[id].clear();
                    streams.reset(id);
                    stdins[id] = None;
                    let _ = reaper.0[id].kill();
                    let _ = reaper.0[id].wait();
                }
                ChurnAction::Restart { id } => {
                    assert!(killed[id], "churn plan restarted live replica {id}");
                    let cfg = ChildConfig {
                        id,
                        behavior: behavior_of(spec, id),
                        auth_hex: auth_hex(id),
                        // SO_REUSEADDR (std sets it on Unix) lets the
                        // rejoiner re-bind the port its peers still dial.
                        listen: format!("127.0.0.1:{}", ports[&id]),
                        peers: Some(addrs.join(",")),
                        wal: wal_path(id),
                        ckpt_retry: CHURN_CKPT_RETRY,
                    };
                    let mut child = spawn_replica(&bin, spec, &cfg)?;
                    stdins[id] = Some(attach_reader(id, &mut child, &line_tx));
                    reaper.0[id] = child;
                    killed[id] = false;
                    if let Some(side) = &partition {
                        send_part(&mut stdins[id], id, side, spec.n);
                    }
                }
            }
        }

        // Sleep until a pipe speaks, the next step comes due, or the
        // deadline — whichever is first.
        let now = Instant::now();
        if now >= deadline {
            return Err(ClusterError::Timeout {
                pending: (0..spec.correct()).filter(|&id| !done[id]).collect(),
            });
        }
        let wake = steps
            .get(next_step)
            .map(|s| epoch + s.at)
            .unwrap_or(deadline)
            .min(deadline);
        let wait = wake
            .saturating_duration_since(now)
            .clamp(Duration::from_millis(1), Duration::from_millis(50));
        match line_rx.recv_timeout(wait) {
            Ok(ChildLine::Line(id, line)) => {
                if stale_eofs[id] > 0 {
                    // Tail output of a killed incarnation still draining.
                } else if streams.consume(id, &line) {
                    // A stat-stream line, absorbed into the series.
                } else if line.trim() == control::DONE {
                    done[id] = true;
                } else if line.starts_with(control::PORT) {
                    // A restarted child re-announces its (unchanged) port.
                } else {
                    blocks[id].push(line);
                }
            }
            Ok(ChildLine::Eof(id)) => {
                if stale_eofs[id] > 0 {
                    stale_eofs[id] -= 1;
                } else if done[id] || killed[id] || id >= spec.correct() {
                    early_eofs[id] += 1;
                } else {
                    return Err(ClusterError::Protocol {
                        id,
                        what: format!(
                            "exited before finishing its report ({})",
                            exit_status_of(&mut reaper.0[id])
                        ),
                    });
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                return Err(ClusterError::Io("all control pipes closed".into()));
            }
        }
    }
    drop(line_tx);

    // Phase 4: everyone has reported — release the cluster.
    for stdin in stdins.iter_mut().flatten() {
        let _ = stdin.write_all(format!("{}\n", control::STOP).as_bytes());
        let _ = stdin.flush();
    }
    drop(stdins);
    for child in reaper.0.iter_mut() {
        let grace = Instant::now() + Duration::from_secs(5);
        loop {
            match child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() < grace => std::thread::sleep(Duration::from_millis(10)),
                _ => break, // wedged: the reaper's kill handles it
            }
        }
    }
    // Each live incarnation owes one EOF, plus whatever stale EOFs of
    // killed incarnations are still in flight.
    let eofs_owed = (0..spec.n)
        .map(|id| (stale_eofs[id] + usize::from(!killed[id])).saturating_sub(early_eofs[id]))
        .collect();
    drain_stream_tail(&line_rx, &mut streams, eofs_owed);

    let mut replicas = Vec::with_capacity(spec.correct());
    for (id, block) in blocks.iter().enumerate().take(spec.correct()) {
        let mut stats = parse_stats(id, block)?;
        stats.series = streams.take(id);
        replicas.push(stats);
    }
    Ok(ClusterReport {
        replicas,
        total_commands: spec.total_commands(),
        elapsed: start.elapsed(),
    })
}

/// Writes the `PART` rule replica `id` needs under a full bipartition:
/// members of `side` block the complement; everyone else blocks `side`.
/// Best effort — a dying child's broken pipe is not an orchestrator error.
fn send_part(stdin: &mut Option<ChildStdin>, id: usize, side: &[usize], n: usize) {
    let Some(stdin) = stdin.as_mut() else { return };
    let blocked: Vec<String> = if side.contains(&id) {
        (0..n)
            .filter(|p| !side.contains(p))
            .map(|p| p.to_string())
            .collect()
    } else {
        side.iter().map(|p| p.to_string()).collect()
    };
    let line = format!("{} {}\n", control::PART, blocked.join(" "));
    let _ = stdin
        .write_all(line.as_bytes())
        .and_then(|()| stdin.flush());
}

/// The behavior of replica `id` under `spec` (riders occupy the top ids).
fn behavior_of(spec: &ClusterSpec, id: usize) -> Behavior {
    if id >= spec.correct() {
        spec.riders[id - spec.correct()]
    } else {
        Behavior::Correct
    }
}

/// Per-child variations on the shared CLI: fresh children bind port 0 and
/// learn their peers over stdin; restarted children re-bind their old
/// port, take the peer list up front, and reopen their write-ahead log.
struct ChildConfig {
    id: usize,
    behavior: Behavior,
    auth_hex: Option<String>,
    listen: String,
    peers: Option<String>,
    wal: Option<PathBuf>,
    ckpt_retry: u64,
}

/// Spawns one `minsync-node` child with a piped control pipe.
fn spawn_replica(bin: &Path, spec: &ClusterSpec, cfg: &ChildConfig) -> Result<Child, ClusterError> {
    let mut command = Command::new(bin);
    if let Some(hex) = &cfg.auth_hex {
        command.arg("--auth-keys").arg(hex);
    }
    if let Some(peers) = &cfg.peers {
        command.arg("--peers").arg(peers);
    }
    if let Some(wal) = &cfg.wal {
        command.arg("--wal").arg(wal);
    }
    if cfg.ckpt_retry > 0 {
        command.arg("--ckpt-retry").arg(cfg.ckpt_retry.to_string());
    }
    if cfg.behavior == Behavior::Correct {
        if let Some(window) = spec.window {
            command.arg("--window").arg(window.to_string());
        }
        if let Some(period) = spec.stats_period {
            command
                .arg("--stats-period")
                .arg(period.as_millis().max(1).to_string());
        }
        if let Some(dir) = &spec.trace_dir {
            command
                .arg("--trace")
                .arg(dir.join(format!("trace-{}.jsonl", cfg.id)));
        }
    }
    command
        .arg("--id")
        .arg(cfg.id.to_string())
        .arg("--n")
        .arg(spec.n.to_string())
        .arg("--t")
        .arg(spec.t.to_string())
        .arg("--groups")
        .arg(spec.groups.to_string())
        .arg("--clients")
        .arg(spec.clients_per_group.to_string())
        .arg("--commands")
        .arg(spec.commands_per_client.to_string())
        .arg("--batch")
        .arg(spec.batch.to_string())
        .arg("--arrival")
        .arg(arrival_to_arg(&spec.arrivals))
        .arg("--seed")
        .arg(spec.seed.to_string())
        .arg("--behavior")
        .arg(cfg.behavior.arg())
        .arg("--tick-us")
        .arg(spec.tick.as_micros().to_string())
        .arg("--timeout-ms")
        .arg(spec.child_timeout.as_millis().to_string())
        .arg("--listen")
        .arg(&cfg.listen)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| ClusterError::Io(format!("spawning replica {}: {e}", cfg.id)))
}

/// Takes a freshly spawned child's pipes: its stdout gets a funnel thread
/// feeding `tx`, and its stdin comes back to the caller for control writes.
fn attach_reader(id: usize, child: &mut Child, tx: &Sender<ChildLine>) -> ChildStdin {
    let stdin = child.stdin.take().expect("piped stdin");
    let stdout = child.stdout.take().expect("piped stdout");
    let tx = tx.clone();
    std::thread::spawn(move || {
        let reader = BufReader::new(stdout);
        for line in reader.lines() {
            match line {
                Ok(line) => {
                    if tx.send(ChildLine::Line(id, line)).is_err() {
                        return;
                    }
                }
                Err(_) => break,
            }
        }
        let _ = tx.send(ChildLine::Eof(id));
    });
    stdin
}

/// Create-and-remove guard for the churn runner's WAL directory.
struct TempDir(PathBuf);

impl TempDir {
    fn create(path: PathBuf) -> Result<TempDir, ClusterError> {
        std::fs::create_dir_all(&path)
            .map_err(|e| ClusterError::Io(format!("creating WAL dir {}: {e}", path.display())))?;
        Ok(TempDir(path))
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The dealer's master secret for a cluster, derived from its seed (every
/// child of one cluster shares it; two clusters with different seeds never
/// cross-authenticate).
fn cluster_master(seed: u64) -> Vec<u8> {
    let mut master = b"minsync-cluster-master-".to_vec();
    master.extend_from_slice(&seed.to_le_bytes());
    master
}

/// Best-effort exit status of a child whose control pipe just closed. The
/// pipe's EOF races the process table, so poll briefly before giving up.
fn exit_status_of(child: &mut Child) -> String {
    for _ in 0..50 {
        match child.try_wait() {
            Ok(Some(status)) => return status.to_string(),
            Ok(None) => std::thread::sleep(Duration::from_millis(10)),
            Err(_) => break,
        }
    }
    "exit status unknown".into()
}

/// Receives one control line, failing cleanly at the deadline.
fn recv_line(rx: &Receiver<ChildLine>, deadline: Instant) -> Result<ChildLine, ClusterError> {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return Err(ClusterError::Timeout { pending: vec![] });
        }
        match rx.recv_timeout((deadline - now).min(Duration::from_millis(100))) {
            Ok(line) => return Ok(line),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                return Err(ClusterError::Io("all control pipes closed".into()))
            }
        }
    }
}

/// Parses one correct replica's statistics block. The current format is a
/// `minsync-telemetry` registry snapshot (`STAT v1 … END STAT`): the
/// summary fields come out of `node.*` gauges, the defense counters out of
/// the `mesh.*`/`smr.*` metrics, and the whole snapshot rides along in
/// [`ReplicaStats::snapshot`]. Blocks without a `STAT v1` line fall back
/// to the legacy positional grammar older nodes printed:
///
/// ```text
/// COMMITTED <commands> <slots>
/// DIGEST <16-hex-digit fnv1a64>
/// WALL_MS <float>
/// LAT <count> <p50> <p95> <p99> <mean>      (virtual ticks)
/// DROPS <outbound> <decode> <handshake> <auth> <future> <retired>
/// ```
fn parse_stats(id: usize, block: &[String]) -> Result<ReplicaStats, ClusterError> {
    if block.iter().any(|l| l.trim() == "STAT v1") {
        parse_snapshot_stats(id, block)
    } else {
        parse_legacy_stats(id, block)
    }
}

/// The `STAT v1` half of [`parse_stats`].
fn parse_snapshot_stats(id: usize, block: &[String]) -> Result<ReplicaStats, ClusterError> {
    let text = block.join("\n");
    let snapshot = Snapshot::parse(&text).map_err(|what| ClusterError::Protocol { id, what })?;
    let gauge = |name: &str| -> Result<u64, ClusterError> {
        snapshot.gauge(name).ok_or_else(|| ClusterError::Protocol {
            id,
            what: format!("snapshot missing {name} gauge"),
        })
    };
    let counter = |name: &str| snapshot.counter(name).unwrap_or(0);
    Ok(ReplicaStats {
        id,
        committed: gauge("node.committed_commands")? as usize,
        slots: gauge("node.committed_slots")?,
        digest: gauge("node.digest")?,
        wall: Duration::from_micros(gauge("node.wall_us")?),
        lat_count: gauge("node.lat_count")? as usize,
        lat_p50: gauge("node.lat_p50")?,
        lat_p95: gauge("node.lat_p95")?,
        lat_p99: gauge("node.lat_p99")?,
        lat_mean: gauge("node.lat_mean_milli")? as f64 / 1000.0,
        outbound_dropped: snapshot.sum_counters("mesh.outbound_dropped."),
        decode_disconnects: counter("mesh.decode_disconnects"),
        handshake_rejects: counter("mesh.handshake_rejects"),
        auth_rejects: counter("mesh.auth_rejects"),
        future_drops: counter("smr.future_drops"),
        retired_drops: counter("smr.retired_drops"),
        snapshot,
        series: TimeSeries::with_capacity(1),
    })
}

/// The positional half of [`parse_stats`] (pre-snapshot node builds).
fn parse_legacy_stats(id: usize, block: &[String]) -> Result<ReplicaStats, ClusterError> {
    let field = |key: &str| -> Result<Vec<String>, ClusterError> {
        block
            .iter()
            .find_map(|l| l.strip_prefix(key))
            .map(|rest| rest.split_whitespace().map(str::to_string).collect())
            .ok_or_else(|| ClusterError::Protocol {
                id,
                what: format!("missing {key} line in report"),
            })
    };
    let bad = |what: &str| ClusterError::Protocol {
        id,
        what: what.to_string(),
    };
    let committed = field("COMMITTED")?;
    let digest = field("DIGEST")?;
    let wall = field("WALL_MS")?;
    let lat = field("LAT")?;
    let drops = field("DROPS")?;
    if committed.len() != 2
        || digest.len() != 1
        || wall.len() != 1
        || lat.len() != 5
        || drops.len() != 6
    {
        return Err(bad("malformed report line"));
    }
    Ok(ReplicaStats {
        id,
        committed: committed[0].parse().map_err(|_| bad("bad COMMITTED"))?,
        slots: committed[1].parse().map_err(|_| bad("bad COMMITTED"))?,
        digest: u64::from_str_radix(&digest[0], 16).map_err(|_| bad("bad DIGEST"))?,
        wall: Duration::from_secs_f64(
            wall[0].parse::<f64>().map_err(|_| bad("bad WALL_MS"))? / 1000.0,
        ),
        lat_count: lat[0].parse().map_err(|_| bad("bad LAT"))?,
        lat_p50: lat[1].parse().map_err(|_| bad("bad LAT"))?,
        lat_p95: lat[2].parse().map_err(|_| bad("bad LAT"))?,
        lat_p99: lat[3].parse().map_err(|_| bad("bad LAT"))?,
        lat_mean: lat[4].parse().map_err(|_| bad("bad LAT"))?,
        outbound_dropped: drops[0].parse().map_err(|_| bad("bad DROPS"))?,
        decode_disconnects: drops[1].parse().map_err(|_| bad("bad DROPS"))?,
        handshake_rejects: drops[2].parse().map_err(|_| bad("bad DROPS"))?,
        auth_rejects: drops[3].parse().map_err(|_| bad("bad DROPS"))?,
        future_drops: drops[4].parse().map_err(|_| bad("bad DROPS"))?,
        retired_drops: drops[5].parse().map_err(|_| bad("bad DROPS"))?,
        snapshot: Snapshot::empty(),
        series: TimeSeries::with_capacity(1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_args_round_trip() {
        for a in [
            ArrivalProcess::Poisson { mean_gap: 2.5 },
            ArrivalProcess::Bursty {
                burst: 8,
                period: 64,
            },
            ArrivalProcess::ClosedLoop { think: 9 },
        ] {
            assert_eq!(parse_arrival(&arrival_to_arg(&a)), Some(a));
        }
        assert_eq!(parse_arrival("poisson:0"), None);
        assert_eq!(parse_arrival("nonsense"), None);
        assert_eq!(parse_arrival("bursty:0/4"), None);
    }

    #[test]
    fn log_digest_separates_slot_shapes() {
        // Same flattened commands, different batch boundaries: distinct.
        let mut a = LogDigest::new();
        a.fold_slot(1, &[1, 2]);
        a.fold_slot(2, &[3]);
        let mut b = LogDigest::new();
        b.fold_slot(1, &[1]);
        b.fold_slot(2, &[2, 3]);
        assert_ne!(a.value(), b.value());
        // Determinism.
        let mut c = LogDigest::new();
        c.fold_slot(1, &[1, 2]);
        c.fold_slot(2, &[3]);
        assert_eq!(a.value(), c.value());
    }

    #[test]
    fn snapshot_stats_round_trip_through_the_text_format() {
        // A node-side registry writes the block; the orchestrator-side
        // parser must recover every summary field exactly.
        let mut snap = Snapshot::empty();
        snap.set_gauge("node.committed_commands", 128);
        snap.set_gauge("node.committed_slots", 20);
        snap.set_gauge("node.digest", 0xcbf2_9ce4_8422_2325);
        snap.set_gauge("node.wall_us", 412_500);
        snap.set_gauge("node.lat_count", 128);
        snap.set_gauge("node.lat_p50", 10);
        snap.set_gauge("node.lat_p95", 25);
        snap.set_gauge("node.lat_p99", 40);
        snap.set_gauge("node.lat_mean_milli", 12_750);
        snap.set_counter("mesh.outbound_dropped.p0", 1);
        snap.set_counter("mesh.outbound_dropped.p2", 2);
        snap.set_counter("mesh.decode_disconnects", 1);
        snap.set_counter("mesh.auth_rejects", 2);
        snap.set_counter("mesh.keepalives", 9);
        snap.set_counter("smr.future_drops", 5);
        snap.set_counter("smr.retired_drops", 4);
        let block: Vec<String> = snap.to_text().lines().map(str::to_string).collect();
        let stats = parse_stats(2, &block).unwrap();
        assert_eq!(stats.committed, 128);
        assert_eq!(stats.slots, 20);
        assert_eq!(stats.digest, 0xcbf2_9ce4_8422_2325);
        assert!((stats.wall.as_secs_f64() - 0.4125).abs() < 1e-9);
        assert_eq!(stats.lat_p99, 40);
        assert!((stats.lat_mean - 12.75).abs() < 1e-9);
        assert_eq!(stats.outbound_dropped, 3, "summed across peers");
        assert_eq!(stats.decode_disconnects, 1);
        assert_eq!(stats.handshake_rejects, 0, "absent counters read zero");
        assert_eq!(stats.auth_rejects, 2);
        assert_eq!(stats.future_drops, 5);
        assert_eq!(stats.retired_drops, 4);
        // The full snapshot rides along for fields without a summary slot.
        assert_eq!(stats.snapshot.counter("mesh.keepalives"), Some(9));

        // A snapshot missing a summary gauge is a protocol error, not a
        // zero-filled report.
        let mut gutted = Snapshot::empty();
        gutted.set_gauge("node.committed_commands", 1);
        let block: Vec<String> = gutted.to_text().lines().map(str::to_string).collect();
        assert!(matches!(
            parse_stats(2, &block),
            Err(ClusterError::Protocol { id: 2, .. })
        ));
    }

    #[test]
    fn stats_block_parses_and_reports_missing_fields() {
        let block: Vec<String> = [
            "COMMITTED 128 20",
            "DIGEST cbf29ce484222325",
            "WALL_MS 412.5",
            "LAT 128 10 25 40 12.75",
            "DROPS 3 1 0 2 5 4",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let stats = parse_stats(2, &block).unwrap();
        assert_eq!(stats.committed, 128);
        assert_eq!(stats.slots, 20);
        assert_eq!(stats.digest, 0xcbf2_9ce4_8422_2325);
        assert_eq!(stats.lat_p99, 40);
        assert_eq!(stats.outbound_dropped, 3);
        assert_eq!(stats.auth_rejects, 2);
        assert_eq!(stats.future_drops, 5);
        assert_eq!(stats.retired_drops, 4);
        assert!((stats.wall.as_secs_f64() - 0.4125).abs() < 1e-9);

        // The old four-field DROPS grammar is rejected, not half-parsed.
        let mut short = block.clone();
        short[4] = "DROPS 3 1 0 2".into();
        assert!(matches!(
            parse_stats(2, &short),
            Err(ClusterError::Protocol { id: 2, .. })
        ));

        let missing = parse_stats(2, &block[..2]);
        assert!(matches!(missing, Err(ClusterError::Protocol { id: 2, .. })));
    }

    #[test]
    fn stream_assembler_routes_and_reassembles() {
        use minsync_telemetry::Sampler;
        let mut streams = StreamAssembler::new(2);
        // Non-stream lines pass through untouched.
        assert!(!streams.consume(0, "STAT v1"));
        assert!(!streams.consume(0, "G node.digest 7"));
        // Two sequential samples from child 1, interleaved with child 0
        // noise, reassemble into child 1's series only.
        let mut sampler = Sampler::new();
        let mut snap = Snapshot::empty();
        snap.set_gauge("watch.p1.commit_floor", 3);
        let first = sampler.sample(100, &snap);
        snap.set_gauge("watch.p1.commit_floor", 5);
        snap.set_counter("mesh.pings", 2);
        let second = sampler.sample(200, &snap);
        for sample in [first, second] {
            for line in sample.to_text().lines() {
                assert!(streams.consume(1, line), "stream line {line:?} leaked");
                assert!(!streams.consume(0, "DONE-ish noise"));
            }
        }
        let series = streams.take(1);
        assert_eq!(series.len(), 2);
        assert_eq!(series.latest().unwrap().at, 200);
        assert_eq!(series.state().gauge("watch.p1.commit_floor"), Some(5));
        assert_eq!(series.state().counter("mesh.pings"), Some(2));
        assert!(streams.take(0).is_empty());
        // A malformed block is dropped, not fatal, and the series survives.
        let mut streams = StreamAssembler::new(1);
        assert!(streams.consume(0, "STAT-STREAM v1 not-a-number 0"));
        assert!(streams.consume(0, STREAM_FOOTER));
        assert!(streams.take(0).is_empty());
    }

    #[test]
    fn behavior_args_round_trip() {
        for b in [
            Behavior::Correct,
            Behavior::Silent,
            Behavior::Flood,
            Behavior::Impersonate,
        ] {
            assert_eq!(Behavior::parse(b.arg()), Some(b));
        }
        assert_eq!(Behavior::parse("evil"), None);
    }

    #[test]
    fn report_helpers() {
        let stats = |id: usize, digest: u64, wall_ms: u64| ReplicaStats {
            id,
            committed: 100,
            slots: 10,
            digest,
            wall: Duration::from_millis(wall_ms),
            lat_count: 100,
            lat_p50: 1,
            lat_p95: 2,
            lat_p99: 3,
            lat_mean: 1.5,
            outbound_dropped: 0,
            decode_disconnects: 0,
            handshake_rejects: 0,
            auth_rejects: 0,
            future_drops: 0,
            retired_drops: 0,
            snapshot: Snapshot::empty(),
            series: TimeSeries::with_capacity(1),
        };
        let report = ClusterReport {
            replicas: vec![stats(0, 7, 500), stats(1, 7, 250)],
            total_commands: 100,
            elapsed: Duration::from_secs(1),
        };
        assert!(report.digests_agree());
        assert_eq!(report.cmds_per_sec(), 200.0);
        let split = ClusterReport {
            replicas: vec![stats(0, 7, 500), stats(1, 8, 500)],
            ..report
        };
        assert!(!split.digests_agree());
    }
}
