//! Localhost cluster orchestration: spawn `n` `minsync-node` OS processes,
//! bootstrap their port assignments over a stdin/stdout control pipe, and
//! collect per-replica committed-log digests and latency statistics.
//!
//! The bootstrap avoids fixed ports entirely (parallel test runs never
//! collide): every child binds `127.0.0.1:0`, reports the kernel-assigned
//! port as a `PORT <p>` control line, the orchestrator gathers all `n`
//! ports and writes one `PEERS <addr0> … <addrN−1>` line back to every
//! child, and only then does the mesh start dialing. When a correct child
//! drains its workload it emits its statistics block (ending in `DONE`) but
//! **keeps serving** — laggards may still need its acks and checkpoints —
//! until the orchestrator broadcasts `STOP` (or closes the pipe), at which
//! point the child tears its mesh down and exits. Byzantine children never
//! report; they run until `STOP`.
//!
//! The control-line grammar lives in [`control`], shared with the
//! `minsync-node` binary so the two sides cannot drift.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError};
use minsync_auth::HmacAuthenticator;
use minsync_workload::ArrivalProcess;

/// How one replica slot behaves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Behavior {
    /// An honest replica running the full SMR + workload pipeline.
    Correct,
    /// Byzantine-silent: participates in nothing (occupies a fault slot).
    Silent,
    /// Byzantine-flooding: broadcasts bursts of future-slot protocol spam
    /// *and* dials peers with raw garbage bytes (exercising both the
    /// bounded-buffer and the decode-error-disconnect defenses).
    Flood,
    /// Byzantine-impersonating: dials peers claiming *other* replicas'
    /// identities — forged handshakes carrying poison checkpoint votes,
    /// replays of captured genuine traffic, and (when it holds keys of its
    /// own) MAC games probing the verify-before-decode pipeline. An
    /// unauthenticated cluster accepts the forged streams; an authenticated
    /// one must sever every arm of the attack.
    Impersonate,
}

impl Behavior {
    /// The `--behavior` CLI value.
    pub fn arg(self) -> &'static str {
        match self {
            Behavior::Correct => "correct",
            Behavior::Silent => "silent",
            Behavior::Flood => "flood",
            Behavior::Impersonate => "impersonate",
        }
    }

    /// Parses a `--behavior` CLI value.
    pub fn parse(s: &str) -> Option<Behavior> {
        match s {
            "correct" => Some(Behavior::Correct),
            "silent" => Some(Behavior::Silent),
            "flood" => Some(Behavior::Flood),
            "impersonate" => Some(Behavior::Impersonate),
            _ => None,
        }
    }
}

/// Control-pipe line grammar shared by the orchestrator and `minsync-node`.
pub mod control {
    /// Child → parent: "my listener is bound on this port".
    pub const PORT: &str = "PORT";
    /// Parent → child: the full space-separated peer address list.
    pub const PEERS: &str = "PEERS";
    /// Parent → child: tear down and exit.
    pub const STOP: &str = "STOP";
    /// Child → parent: end of the statistics block.
    pub const DONE: &str = "DONE";
}

/// Serializes an [`ArrivalProcess`] as a CLI argument (`poisson:G`,
/// `bursty:B/P`, `closed:T`).
pub fn arrival_to_arg(a: &ArrivalProcess) -> String {
    match a {
        ArrivalProcess::Poisson { mean_gap } => format!("poisson:{mean_gap}"),
        ArrivalProcess::Bursty { burst, period } => format!("bursty:{burst}/{period}"),
        ArrivalProcess::ClosedLoop { think } => format!("closed:{think}"),
    }
}

/// Parses the [`arrival_to_arg`] encoding.
pub fn parse_arrival(s: &str) -> Option<ArrivalProcess> {
    let (kind, rest) = s.split_once(':')?;
    match kind {
        "poisson" => Some(ArrivalProcess::Poisson {
            mean_gap: rest.parse().ok().filter(|g: &f64| *g > 0.0)?,
        }),
        "bursty" => {
            let (burst, period) = rest.split_once('/')?;
            Some(ArrivalProcess::Bursty {
                burst: burst.parse().ok().filter(|b: &usize| *b > 0)?,
                period: period.parse().ok()?,
            })
        }
        "closed" => Some(ArrivalProcess::ClosedLoop {
            think: rest.parse().ok()?,
        }),
        _ => None,
    }
}

/// FNV-1a over a committed log: each entry hashed as
/// `(slot, batch length, commands…)`. Two replicas report equal digests iff
/// they committed identical batches to identical slots — the cluster-wide
/// agreement check, compressed to eight bytes per replica so it fits a
/// control line.
#[derive(Clone, Copy, Debug)]
pub struct LogDigest(u64);

impl LogDigest {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// An empty-log digest.
    pub fn new() -> Self {
        LogDigest(Self::OFFSET)
    }

    fn mix(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Folds one committed `(slot, commands)` entry into the digest (call
    /// in commit order).
    pub fn fold_slot(&mut self, slot: u64, commands: &[u64]) {
        self.mix(slot);
        self.mix(commands.len() as u64);
        for &cmd in commands {
            self.mix(cmd);
        }
    }

    /// The digest value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl Default for LogDigest {
    fn default() -> Self {
        Self::new()
    }
}

/// Everything needed to spawn one cluster.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// System size.
    pub n: usize,
    /// Fault bound.
    pub t: usize,
    /// Workload routing groups `m` (use 1 for digest-comparable logs).
    pub groups: usize,
    /// Client streams per group.
    pub clients_per_group: usize,
    /// Commands per client.
    pub commands_per_client: usize,
    /// Batch cap of the proposal sources.
    pub batch: usize,
    /// Arrival process of every client.
    pub arrivals: ArrivalProcess,
    /// Cluster seed (workload generation and derived per-replica streams).
    pub seed: u64,
    /// Behaviors for the top replica ids: `riders[k]` is replica
    /// `n − riders.len() + k`; all lower ids are correct.
    pub riders: Vec<Behavior>,
    /// Authenticate the mesh: a dealer keyed off `seed` hands every child
    /// its pairwise-MAC keyring (`--auth-keys`), and each child MACs its
    /// handshake and every frame. Riders receive their *own* genuine
    /// keyring — a corrupt replica legitimately holds its keys; what it
    /// must not hold is anyone else's.
    pub auth: bool,
    /// Wall-clock duration of one virtual tick inside each child.
    pub tick: Duration,
    /// Per-child wall-clock cap.
    pub child_timeout: Duration,
    /// Orchestrator-side cap on the whole cluster run.
    pub harness_timeout: Duration,
}

impl ClusterSpec {
    /// Total client commands the workload will submit.
    pub fn total_commands(&self) -> usize {
        self.groups * self.clients_per_group * self.commands_per_client
    }

    /// Number of correct replicas (`n` minus the rider slots).
    pub fn correct(&self) -> usize {
        self.n - self.riders.len()
    }
}

/// One correct replica's report, parsed off its control pipe.
#[derive(Clone, Debug)]
pub struct ReplicaStats {
    /// Replica id.
    pub id: usize,
    /// Client commands committed.
    pub committed: usize,
    /// Log slots committed (including no-op batches).
    pub slots: u64,
    /// Committed-log digest ([`LogDigest`]).
    pub digest: u64,
    /// Wall-clock time from mesh start to workload drain.
    pub wall: Duration,
    /// Latency sample size.
    pub lat_count: usize,
    /// Submit→commit latency percentiles, in virtual ticks.
    pub lat_p50: u64,
    /// 95th percentile, ticks.
    pub lat_p95: u64,
    /// 99th percentile, ticks.
    pub lat_p99: u64,
    /// Mean latency, ticks.
    pub lat_mean: f64,
    /// Outbound messages this replica dropped across all peers (bounded
    /// writer queues + broken-connection losses).
    pub outbound_dropped: u64,
    /// Inbound connections this replica cut for undecodable bytes.
    pub decode_disconnects: u64,
    /// Inbound connections this replica refused at the handshake.
    pub handshake_rejects: u64,
    /// Inbound connections this replica severed for failed MAC checks
    /// (forged handshake tags and forged frame tags alike); always zero
    /// when the cluster runs unauthenticated.
    pub auth_rejects: u64,
}

/// Result of one cluster run: every *correct* replica's stats.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Per-correct-replica statistics, ordered by id.
    pub replicas: Vec<ReplicaStats>,
    /// Total commands the workload submitted.
    pub total_commands: usize,
    /// Orchestrator-side wall-clock for the whole run (spawn to reap).
    pub elapsed: Duration,
}

impl ClusterReport {
    /// True iff every correct replica reported the same committed-log
    /// digest — the distributed-agreement check.
    pub fn digests_agree(&self) -> bool {
        self.replicas.windows(2).all(|w| w[0].digest == w[1].digest)
    }

    /// Cluster throughput in commands per wall-clock second, measured at
    /// the slowest correct replica.
    pub fn cmds_per_sec(&self) -> f64 {
        let slowest = self
            .replicas
            .iter()
            .map(|r| r.wall)
            .max()
            .unwrap_or_default();
        if slowest.is_zero() {
            return 0.0;
        }
        self.total_commands as f64 / slowest.as_secs_f64()
    }
}

/// Why a cluster run failed.
#[derive(Clone, Debug)]
pub enum ClusterError {
    /// The `minsync-node` binary was not found (see [`node_binary`]).
    BinaryMissing(String),
    /// Spawning or piping a child failed.
    Io(String),
    /// A child misbehaved on the control pipe (bad line, early exit).
    Protocol {
        /// Offending replica id.
        id: usize,
        /// What went wrong.
        what: String,
    },
    /// The cluster did not complete within the harness timeout.
    Timeout {
        /// Replica ids that never finished their report.
        pending: Vec<usize>,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::BinaryMissing(hint) => write!(f, "minsync-node binary missing: {hint}"),
            ClusterError::Io(e) => write!(f, "cluster io error: {e}"),
            ClusterError::Protocol { id, what } => {
                write!(f, "replica {id} control-pipe violation: {what}")
            }
            ClusterError::Timeout { pending } => {
                write!(f, "cluster timed out; replicas still pending: {pending:?}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

impl ClusterError {
    /// Fills a [`ClusterError::Timeout`]'s pending-replica list (the
    /// deadline fires inside the line receiver, which does not know which
    /// replicas the caller is still waiting on); other variants pass
    /// through unchanged.
    fn with_pending(self, pending: impl FnOnce() -> Vec<usize>) -> Self {
        match self {
            ClusterError::Timeout { .. } => ClusterError::Timeout { pending: pending() },
            other => other,
        }
    }
}

/// Locates the `minsync-node` binary: the `MINSYNC_NODE_BIN` environment
/// variable if set (integration tests point it at `CARGO_BIN_EXE_…`),
/// otherwise a sibling of the current executable (walking a couple of
/// directories up covers `target/<profile>/deps/` test binaries). If
/// neither hits and a `cargo` is available (the `CARGO` environment
/// variable any cargo-launched process inherits, or plain `cargo` on
/// `PATH`), it builds the binary once — matching the running profile — and
/// retries, so `cargo test -p minsync-harness` on a clean target directory
/// does not fail on a bin another crate owns.
///
/// # Errors
///
/// [`ClusterError::BinaryMissing`] with a build hint.
pub fn node_binary() -> Result<PathBuf, ClusterError> {
    if let Ok(path) = std::env::var("MINSYNC_NODE_BIN") {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Ok(path);
        }
        return Err(ClusterError::BinaryMissing(format!(
            "MINSYNC_NODE_BIN points at {} which does not exist",
            path.display()
        )));
    }
    if let Some(found) = locate_near_current_exe() {
        return Ok(found);
    }
    // Fall back to building it. `current_exe` under `target/release`
    // selects the release profile so cluster perf matches the caller's.
    let release = std::env::current_exe()
        .ok()
        .is_some_and(|exe| exe.components().any(|c| c.as_os_str() == "release"));
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let mut build = Command::new(cargo);
    build.args(["build", "-p", "minsync-transport", "--bin", "minsync-node"]);
    if release {
        build.arg("--release");
    }
    let built = build
        .status()
        .map(|status| status.success())
        .unwrap_or(false);
    if built {
        if let Some(found) = locate_near_current_exe() {
            return Ok(found);
        }
    }
    Err(ClusterError::BinaryMissing(
        "build it with `cargo build --release -p minsync-transport` (or set MINSYNC_NODE_BIN)"
            .into(),
    ))
}

/// The sibling-of-`current_exe` search `node_binary` uses.
fn locate_near_current_exe() -> Option<PathBuf> {
    let name = format!("minsync-node{}", std::env::consts::EXE_SUFFIX);
    let exe = std::env::current_exe().ok()?;
    exe.ancestors()
        .skip(1)
        .take(3)
        .map(|dir| dir.join(&name))
        .find(|candidate| candidate.is_file())
}

/// Kill-on-drop guard: whatever goes wrong in the orchestrator, no child
/// process outlives it.
struct Reaper(Vec<Child>);

impl Drop for Reaper {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// One line read off a child's stdout, or its EOF marker.
enum ChildLine {
    Line(usize, String),
    Eof(usize),
}

/// Spawns and runs one localhost cluster to completion (see the module
/// docs for the bootstrap protocol).
///
/// # Errors
///
/// [`ClusterError`] if the binary is missing, a child dies or violates the
/// control protocol, or the run exceeds [`ClusterSpec::harness_timeout`].
pub fn run_cluster(spec: &ClusterSpec) -> Result<ClusterReport, ClusterError> {
    assert!(
        spec.riders.len() <= spec.t,
        "riders must fit the fault bound"
    );
    assert!(spec.correct() >= 1, "need at least one correct replica");
    let bin = node_binary()?;
    let start = Instant::now();
    let deadline = start + spec.harness_timeout;

    // The trusted dealer: pairwise MAC keys derived from the cluster seed,
    // serialized per replica so each child only ever sees its own keyring.
    let keyrings = spec.auth.then(|| {
        let master = cluster_master(spec.seed);
        HmacAuthenticator::deal(&master, spec.n)
    });

    // Spawn every child with a piped control pipe.
    let mut children = Vec::with_capacity(spec.n);
    for id in 0..spec.n {
        let behavior = if id >= spec.correct() {
            spec.riders[id - spec.correct()]
        } else {
            Behavior::Correct
        };
        let mut command = Command::new(&bin);
        if let Some(keyrings) = &keyrings {
            command.arg("--auth-keys").arg(keyrings[id].to_hex());
        }
        let child = command
            .arg("--id")
            .arg(id.to_string())
            .arg("--n")
            .arg(spec.n.to_string())
            .arg("--t")
            .arg(spec.t.to_string())
            .arg("--groups")
            .arg(spec.groups.to_string())
            .arg("--clients")
            .arg(spec.clients_per_group.to_string())
            .arg("--commands")
            .arg(spec.commands_per_client.to_string())
            .arg("--batch")
            .arg(spec.batch.to_string())
            .arg("--arrival")
            .arg(arrival_to_arg(&spec.arrivals))
            .arg("--seed")
            .arg(spec.seed.to_string())
            .arg("--behavior")
            .arg(behavior.arg())
            .arg("--tick-us")
            .arg(spec.tick.as_micros().to_string())
            .arg("--timeout-ms")
            .arg(spec.child_timeout.as_millis().to_string())
            .arg("--listen")
            .arg("127.0.0.1:0")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| ClusterError::Io(format!("spawning replica {id}: {e}")))?;
        children.push(child);
    }

    // One reader thread per child funnels control lines into a channel, so
    // the orchestrator never blocks on a single quiet pipe.
    let (line_tx, line_rx) = unbounded::<ChildLine>();
    let mut stdins = Vec::with_capacity(spec.n);
    for (id, child) in children.iter_mut().enumerate() {
        stdins.push(child.stdin.take().expect("piped stdin"));
        let stdout = child.stdout.take().expect("piped stdout");
        let tx = line_tx.clone();
        std::thread::spawn(move || {
            let reader = BufReader::new(stdout);
            for line in reader.lines() {
                match line {
                    Ok(line) => {
                        if tx.send(ChildLine::Line(id, line)).is_err() {
                            return;
                        }
                    }
                    Err(_) => break,
                }
            }
            let _ = tx.send(ChildLine::Eof(id));
        });
    }
    drop(line_tx);
    let mut reaper = Reaper(children);

    // Phase 1: gather every child's kernel-assigned port.
    let mut ports: BTreeMap<usize, u16> = BTreeMap::new();
    let mut pending_lines: Vec<Vec<String>> = vec![Vec::new(); spec.n];
    while ports.len() < spec.n {
        let line = recv_line(&line_rx, deadline).map_err(|e| {
            e.with_pending(|| (0..spec.n).filter(|id| !ports.contains_key(id)).collect())
        })?;
        match line {
            ChildLine::Line(id, line) => {
                if let Some(port) = line
                    .strip_prefix(control::PORT)
                    .and_then(|r| r.trim().parse::<u16>().ok())
                {
                    ports.insert(id, port);
                } else {
                    pending_lines[id].push(line);
                }
            }
            ChildLine::Eof(id) => {
                // Fail fast with the child's exit status rather than
                // letting the caller wait out the harness deadline.
                return Err(ClusterError::Protocol {
                    id,
                    what: format!(
                        "exited before announcing its port ({})",
                        exit_status_of(&mut reaper.0[id])
                    ),
                });
            }
        }
    }

    // Phase 2: hand everyone the full peer list.
    let peer_line = {
        let addrs: Vec<String> = (0..spec.n)
            .map(|id| format!("127.0.0.1:{}", ports[&id]))
            .collect();
        format!("{} {}\n", control::PEERS, addrs.join(" "))
    };
    for (id, stdin) in stdins.iter_mut().enumerate() {
        stdin
            .write_all(peer_line.as_bytes())
            .and_then(|()| stdin.flush())
            .map_err(|e| ClusterError::Io(format!("writing peer list to replica {id}: {e}")))?;
    }

    // Phase 3: collect every correct replica's statistics block.
    let mut blocks: Vec<Vec<String>> = pending_lines;
    let mut done = vec![false; spec.n];
    while (0..spec.correct()).any(|id| !done[id]) {
        let line = recv_line(&line_rx, deadline).map_err(|e| {
            e.with_pending(|| (0..spec.correct()).filter(|&id| !done[id]).collect())
        })?;
        match line {
            ChildLine::Line(id, line) => {
                if line.trim() == control::DONE {
                    done[id] = true;
                } else {
                    blocks[id].push(line);
                }
            }
            ChildLine::Eof(id) if done[id] || id >= spec.correct() => {}
            ChildLine::Eof(id) => {
                return Err(ClusterError::Protocol {
                    id,
                    what: format!(
                        "exited before finishing its report ({})",
                        exit_status_of(&mut reaper.0[id])
                    ),
                });
            }
        }
    }

    // Phase 4: everyone has reported — release the cluster.
    for stdin in &mut stdins {
        let _ = stdin.write_all(format!("{}\n", control::STOP).as_bytes());
        let _ = stdin.flush();
    }
    drop(stdins); // EOF doubles as STOP for children that missed the line
    for (id, child) in reaper.0.iter_mut().enumerate() {
        let grace = Instant::now() + Duration::from_secs(5);
        loop {
            match child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() < grace => std::thread::sleep(Duration::from_millis(10)),
                _ => {
                    // Byzantine or wedged: the reaper's kill handles it.
                    let _ = id;
                    break;
                }
            }
        }
    }

    let mut replicas = Vec::with_capacity(spec.correct());
    for (id, block) in blocks.iter().enumerate().take(spec.correct()) {
        replicas.push(parse_stats(id, block)?);
    }
    Ok(ClusterReport {
        replicas,
        total_commands: spec.total_commands(),
        elapsed: start.elapsed(),
    })
}

/// The dealer's master secret for a cluster, derived from its seed (every
/// child of one cluster shares it; two clusters with different seeds never
/// cross-authenticate).
fn cluster_master(seed: u64) -> Vec<u8> {
    let mut master = b"minsync-cluster-master-".to_vec();
    master.extend_from_slice(&seed.to_le_bytes());
    master
}

/// Best-effort exit status of a child whose control pipe just closed. The
/// pipe's EOF races the process table, so poll briefly before giving up.
fn exit_status_of(child: &mut Child) -> String {
    for _ in 0..50 {
        match child.try_wait() {
            Ok(Some(status)) => return status.to_string(),
            Ok(None) => std::thread::sleep(Duration::from_millis(10)),
            Err(_) => break,
        }
    }
    "exit status unknown".into()
}

/// Receives one control line, failing cleanly at the deadline.
fn recv_line(rx: &Receiver<ChildLine>, deadline: Instant) -> Result<ChildLine, ClusterError> {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return Err(ClusterError::Timeout { pending: vec![] });
        }
        match rx.recv_timeout((deadline - now).min(Duration::from_millis(100))) {
            Ok(line) => return Ok(line),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                return Err(ClusterError::Io("all control pipes closed".into()))
            }
        }
    }
}

/// Parses one correct replica's statistics block:
///
/// ```text
/// COMMITTED <commands> <slots>
/// DIGEST <16-hex-digit fnv1a64>
/// WALL_MS <float>
/// LAT <count> <p50> <p95> <p99> <mean>      (virtual ticks)
/// DROPS <outbound> <decode> <handshake> <auth>
/// ```
fn parse_stats(id: usize, block: &[String]) -> Result<ReplicaStats, ClusterError> {
    let field = |key: &str| -> Result<Vec<String>, ClusterError> {
        block
            .iter()
            .find_map(|l| l.strip_prefix(key))
            .map(|rest| rest.split_whitespace().map(str::to_string).collect())
            .ok_or_else(|| ClusterError::Protocol {
                id,
                what: format!("missing {key} line in report"),
            })
    };
    let bad = |what: &str| ClusterError::Protocol {
        id,
        what: what.to_string(),
    };
    let committed = field("COMMITTED")?;
    let digest = field("DIGEST")?;
    let wall = field("WALL_MS")?;
    let lat = field("LAT")?;
    let drops = field("DROPS")?;
    if committed.len() != 2
        || digest.len() != 1
        || wall.len() != 1
        || lat.len() != 5
        || drops.len() != 4
    {
        return Err(bad("malformed report line"));
    }
    Ok(ReplicaStats {
        id,
        committed: committed[0].parse().map_err(|_| bad("bad COMMITTED"))?,
        slots: committed[1].parse().map_err(|_| bad("bad COMMITTED"))?,
        digest: u64::from_str_radix(&digest[0], 16).map_err(|_| bad("bad DIGEST"))?,
        wall: Duration::from_secs_f64(
            wall[0].parse::<f64>().map_err(|_| bad("bad WALL_MS"))? / 1000.0,
        ),
        lat_count: lat[0].parse().map_err(|_| bad("bad LAT"))?,
        lat_p50: lat[1].parse().map_err(|_| bad("bad LAT"))?,
        lat_p95: lat[2].parse().map_err(|_| bad("bad LAT"))?,
        lat_p99: lat[3].parse().map_err(|_| bad("bad LAT"))?,
        lat_mean: lat[4].parse().map_err(|_| bad("bad LAT"))?,
        outbound_dropped: drops[0].parse().map_err(|_| bad("bad DROPS"))?,
        decode_disconnects: drops[1].parse().map_err(|_| bad("bad DROPS"))?,
        handshake_rejects: drops[2].parse().map_err(|_| bad("bad DROPS"))?,
        auth_rejects: drops[3].parse().map_err(|_| bad("bad DROPS"))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_args_round_trip() {
        for a in [
            ArrivalProcess::Poisson { mean_gap: 2.5 },
            ArrivalProcess::Bursty {
                burst: 8,
                period: 64,
            },
            ArrivalProcess::ClosedLoop { think: 9 },
        ] {
            assert_eq!(parse_arrival(&arrival_to_arg(&a)), Some(a));
        }
        assert_eq!(parse_arrival("poisson:0"), None);
        assert_eq!(parse_arrival("nonsense"), None);
        assert_eq!(parse_arrival("bursty:0/4"), None);
    }

    #[test]
    fn log_digest_separates_slot_shapes() {
        // Same flattened commands, different batch boundaries: distinct.
        let mut a = LogDigest::new();
        a.fold_slot(1, &[1, 2]);
        a.fold_slot(2, &[3]);
        let mut b = LogDigest::new();
        b.fold_slot(1, &[1]);
        b.fold_slot(2, &[2, 3]);
        assert_ne!(a.value(), b.value());
        // Determinism.
        let mut c = LogDigest::new();
        c.fold_slot(1, &[1, 2]);
        c.fold_slot(2, &[3]);
        assert_eq!(a.value(), c.value());
    }

    #[test]
    fn stats_block_parses_and_reports_missing_fields() {
        let block: Vec<String> = [
            "COMMITTED 128 20",
            "DIGEST cbf29ce484222325",
            "WALL_MS 412.5",
            "LAT 128 10 25 40 12.75",
            "DROPS 3 1 0 2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let stats = parse_stats(2, &block).unwrap();
        assert_eq!(stats.committed, 128);
        assert_eq!(stats.slots, 20);
        assert_eq!(stats.digest, 0xcbf2_9ce4_8422_2325);
        assert_eq!(stats.lat_p99, 40);
        assert_eq!(stats.outbound_dropped, 3);
        assert_eq!(stats.auth_rejects, 2);
        assert!((stats.wall.as_secs_f64() - 0.4125).abs() < 1e-9);

        let missing = parse_stats(2, &block[..2]);
        assert!(matches!(missing, Err(ClusterError::Protocol { id: 2, .. })));
    }

    #[test]
    fn behavior_args_round_trip() {
        for b in [
            Behavior::Correct,
            Behavior::Silent,
            Behavior::Flood,
            Behavior::Impersonate,
        ] {
            assert_eq!(Behavior::parse(b.arg()), Some(b));
        }
        assert_eq!(Behavior::parse("evil"), None);
    }

    #[test]
    fn report_helpers() {
        let stats = |id: usize, digest: u64, wall_ms: u64| ReplicaStats {
            id,
            committed: 100,
            slots: 10,
            digest,
            wall: Duration::from_millis(wall_ms),
            lat_count: 100,
            lat_p50: 1,
            lat_p95: 2,
            lat_p99: 3,
            lat_mean: 1.5,
            outbound_dropped: 0,
            decode_disconnects: 0,
            handshake_rejects: 0,
            auth_rejects: 0,
        };
        let report = ClusterReport {
            replicas: vec![stats(0, 7, 500), stats(1, 7, 250)],
            total_commands: 100,
            elapsed: Duration::from_secs(1),
        };
        assert!(report.digests_agree());
        assert_eq!(report.cmds_per_sec(), 200.0);
        let split = ClusterReport {
            replicas: vec![stats(0, 7, 500), stats(1, 8, 500)],
            ..report
        };
        assert!(!split.digests_agree());
    }
}
