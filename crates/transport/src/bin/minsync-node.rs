//! One replica of the batched SMR + workload pipeline, run as a real OS
//! process over the TCP mesh — the unit the cluster orchestrator spawns.
//!
//! ```text
//! minsync-node --id I --n N --t T --listen 127.0.0.1:0
//!              [--peers a0,a1,…]           # else bootstrap over stdin
//!              --groups M --clients C --commands K --batch B
//!              --arrival poisson:G|bursty:B/P|closed:T
//!              --seed S --behavior correct|silent|flood
//!              --tick-us US --timeout-ms MS
//! ```
//!
//! Control pipe (see `minsync_transport::cluster`): the process prints
//! `PORT <p>` once its listener is bound; if `--peers` was not given it
//! then reads one `PEERS <addr0> … <addrN−1>` line from stdin. A correct
//! replica prints its statistics block (`COMMITTED`, `DIGEST`, `WALL_MS`,
//! `LAT`, `DROPS`, `DONE`) the moment its workload drains, then *keeps
//! serving* acks and checkpoints for laggards until `STOP` arrives on stdin
//! (or stdin closes), bounded by `--timeout-ms`. Byzantine behaviors never
//! report; they run until `STOP`.

use std::io::{BufRead, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use minsync_adversary::{FloodNode, SilentNode};
use minsync_core::{ConsensusConfig, ProtocolMsg};
use minsync_net::sim::OutputRecord;
use minsync_net::{Node, VirtualTime};
use minsync_smr::{ReplicaNode, SmrEvent, SmrMsg};
use minsync_transport::cluster::{control, parse_arrival, Behavior, LogDigest};
use minsync_transport::mesh::{MeshConfig, MeshCounters, MeshOutput, TcpMesh};
use minsync_types::{ProcessId, Round, SystemConfig};
use minsync_wire::{Hello, WIRE_VERSION};
use minsync_workload::{account, ArrivalProcess, Batch, ClientPopulation, WorkloadSpec};

type Msg = SmrMsg<Batch>;
type Out = SmrEvent<Batch>;

struct Args {
    id: usize,
    n: usize,
    t: usize,
    listen: SocketAddr,
    peers: Option<Vec<SocketAddr>>,
    groups: usize,
    clients: usize,
    commands: usize,
    batch: usize,
    arrival: ArrivalProcess,
    seed: u64,
    behavior: Behavior,
    tick: Duration,
    timeout: Duration,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        id: 0,
        n: 4,
        t: 1,
        listen: "127.0.0.1:0".parse().expect("static addr"),
        peers: None,
        groups: 1,
        clients: 2,
        commands: 8,
        batch: 8,
        arrival: ArrivalProcess::Poisson { mean_gap: 2.0 },
        seed: 1,
        behavior: Behavior::Correct,
        tick: Duration::from_micros(200),
        timeout: Duration::from_secs(30),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag {
            "--id" => args.id = value.parse().map_err(|e| format!("--id: {e}"))?,
            "--n" => args.n = value.parse().map_err(|e| format!("--n: {e}"))?,
            "--t" => args.t = value.parse().map_err(|e| format!("--t: {e}"))?,
            "--listen" => args.listen = value.parse().map_err(|e| format!("--listen: {e}"))?,
            "--peers" => {
                let peers: Result<Vec<SocketAddr>, _> = value.split(',').map(str::parse).collect();
                args.peers = Some(peers.map_err(|e| format!("--peers: {e}"))?);
            }
            "--groups" => args.groups = value.parse().map_err(|e| format!("--groups: {e}"))?,
            "--clients" => args.clients = value.parse().map_err(|e| format!("--clients: {e}"))?,
            "--commands" => {
                args.commands = value.parse().map_err(|e| format!("--commands: {e}"))?
            }
            "--batch" => args.batch = value.parse().map_err(|e| format!("--batch: {e}"))?,
            "--arrival" => {
                args.arrival =
                    parse_arrival(value).ok_or_else(|| format!("--arrival: bad spec {value}"))?
            }
            "--seed" => args.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--behavior" => {
                args.behavior = Behavior::parse(value)
                    .ok_or_else(|| format!("--behavior: unknown behavior {value}"))?
            }
            "--tick-us" => {
                args.tick =
                    Duration::from_micros(value.parse().map_err(|e| format!("--tick-us: {e}"))?)
            }
            "--timeout-ms" => {
                args.timeout =
                    Duration::from_millis(value.parse().map_err(|e| format!("--timeout-ms: {e}"))?)
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    if args.id >= args.n {
        return Err(format!("--id {} out of range for --n {}", args.id, args.n));
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("minsync-node: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(args) {
        eprintln!("minsync-node: {e}");
        std::process::exit(1);
    }
}

fn run(args: Args) -> Result<(), String> {
    let me = ProcessId::new(args.id);
    let mesh = TcpMesh::bind(me, args.listen).map_err(|e| format!("bind {}: {e}", args.listen))?;
    let port = mesh
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?
        .port();
    println!("{} {port}", control::PORT);
    std::io::stdout().flush().ok();

    // Stop flag: raised by STOP on stdin, or by stdin closing (the
    // orchestrator died — never outlive it).
    let stop_flag = Arc::new(AtomicBool::new(false));
    let peers = match args.peers.clone() {
        Some(peers) => {
            spawn_stdin_watcher(Arc::clone(&stop_flag), None);
            peers
        }
        None => {
            let (peers_tx, peers_rx) = std::sync::mpsc::channel::<Vec<SocketAddr>>();
            spawn_stdin_watcher(Arc::clone(&stop_flag), Some(peers_tx));
            peers_rx
                .recv_timeout(args.timeout)
                .map_err(|_| "no PEERS line arrived on stdin".to_string())?
        }
    };
    if peers.len() != args.n {
        return Err(format!(
            "peer list has {} addresses for --n {}",
            peers.len(),
            args.n
        ));
    }

    let system = SystemConfig::new(args.n, args.t).map_err(|e| format!("system config: {e}"))?;
    let pop = WorkloadSpec {
        groups: args.groups,
        clients_per_group: args.clients,
        commands_per_client: args.commands,
        arrivals: args.arrival,
        seed: args.seed,
    }
    .generate(&system)
    .map_err(|e| format!("workload: {e}"))?;
    let total: usize = pop.total_commands();
    let target = pop.slots_upper_bound(args.batch);

    let config = MeshConfig {
        tick: args.tick,
        timeout: args.timeout,
        seed: args.seed,
        ..MeshConfig::default()
    };

    let node: Box<dyn Node<Msg = Msg, Output = Out>> = match args.behavior {
        Behavior::Correct => {
            let cfg = ConsensusConfig::paper(system);
            Box::new(ReplicaNode::new(
                cfg,
                pop.source_for(args.id, args.batch),
                target,
            ))
        }
        Behavior::Silent => Box::new(SilentNode::<Msg, Out>::new()),
        Behavior::Flood => {
            // Protocol-level spam: bursts of future-slot garbage, plus raw
            // garbage bytes dialed straight at every peer (the transport
            // must disconnect those connections, not die).
            spawn_garbage_dialers(me, args.n, &peers, Arc::clone(&stop_flag));
            Box::new(FloodNode::<Msg, Out, _>::new(2, 64, u64::MAX, move |i| {
                SmrMsg::Slot {
                    slot: 2 + (i % target.max(3)),
                    msg: ProtocolMsg::EaProp2 {
                        round: Round::FIRST,
                        value: Batch(vec![u64::MAX]),
                    },
                }
            }))
        }
    };

    // A correct replica reports the moment it drains, then lingers (serving
    // acks/checkpoints to laggards) until STOP; Byzantine behaviors just
    // run until STOP.
    let mut reported = args.behavior != Behavior::Correct;
    let tick = args.tick;
    let stop = {
        let stop_flag = Arc::clone(&stop_flag);
        move |outs: &[MeshOutput<Out>], counters: &MeshCounters| {
            if !reported && committed_commands(outs) >= total {
                reported = true;
                print_stats(&pop, outs, me, tick, counters);
            }
            // STOP (or stdin EOF — the orchestrator is gone) ends the run
            // unconditionally: the orchestrator only sends STOP after every
            // correct replica reported, and an orphan must never linger.
            stop_flag.load(Ordering::Relaxed)
        }
    };
    let report = mesh.run(node, &peers, &config, stop);

    if args.behavior == Behavior::Correct
        && report.timed_out
        && committed_commands(&report.outputs) < total
    {
        return Err(format!(
            "timed out at {}/{} commands",
            committed_commands(&report.outputs),
            total
        ));
    }
    Ok(())
}

/// Commands committed so far in a mesh output stream.
fn committed_commands(outs: &[MeshOutput<Out>]) -> usize {
    outs.iter()
        .filter_map(|o| o.event.as_committed())
        .map(|(_, batch)| batch.len())
        .sum()
}

/// Prints the statistics block the orchestrator parses (see
/// `cluster::parse_stats`), ending in `DONE`.
fn print_stats(
    pop: &ClientPopulation,
    outs: &[MeshOutput<Out>],
    me: ProcessId,
    tick: Duration,
    counters: &MeshCounters,
) {
    let mut digest = LogDigest::new();
    let mut slots = 0u64;
    let mut commands = 0usize;
    let mut wall = Duration::ZERO;
    for out in outs {
        if let Some((slot, batch)) = out.event.as_committed() {
            digest.fold_slot(slot, batch.commands());
            slots += 1;
            commands += batch.len();
            wall = wall.max(out.elapsed);
        }
    }
    // Latency accounting reuses the workload crate: mesh outputs become
    // OutputRecords at their tick-converted emission times.
    let records: Vec<OutputRecord<Out>> = outs
        .iter()
        .map(|o| OutputRecord {
            time: VirtualTime::from_ticks((o.elapsed.as_nanos() / tick.as_nanos().max(1)) as u64),
            process: me,
            event: o.event.clone(),
        })
        .collect();
    let workload = account(pop, &records, me);
    let lat = workload.latency;
    println!("COMMITTED {commands} {slots}");
    println!("DIGEST {:016x}", digest.value());
    println!("WALL_MS {:.3}", wall.as_secs_f64() * 1000.0);
    println!(
        "LAT {} {} {} {} {:.3}",
        lat.count, lat.p50, lat.p95, lat.p99, lat.mean
    );
    println!(
        "DROPS {} {} {}",
        counters.outbound_dropped_total(),
        counters.decode_disconnects(),
        counters.handshake_rejects()
    );
    println!("{}", control::DONE);
    std::io::stdout().flush().ok();
}

/// Watches stdin: forwards the bootstrap `PEERS` line (if a sender is
/// given) and raises the stop flag on `STOP` or EOF.
fn spawn_stdin_watcher(
    stop_flag: Arc<AtomicBool>,
    peers_tx: Option<std::sync::mpsc::Sender<Vec<SocketAddr>>>,
) {
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        let mut peers_tx = peers_tx;
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            let line = line.trim().to_string();
            if let Some(rest) = line.strip_prefix(control::PEERS) {
                let peers: Result<Vec<SocketAddr>, _> =
                    rest.split_whitespace().map(str::parse).collect();
                if let (Some(tx), Ok(peers)) = (peers_tx.take(), peers) {
                    let _ = tx.send(peers);
                }
            } else if line == control::STOP {
                stop_flag.store(true, Ordering::Relaxed);
            }
        }
        // EOF: the orchestrator is gone — stop regardless.
        stop_flag.store(true, Ordering::Relaxed);
    });
}

/// The byte-level arm of the flooder: dials every peer and writes garbage
/// in both shapes the reader must survive — a valid handshake followed by
/// an undecodable frame, and a connection that fails the handshake
/// outright. Repeats until stopped.
fn spawn_garbage_dialers(
    me: ProcessId,
    n: usize,
    peers: &[SocketAddr],
    stop_flag: Arc<AtomicBool>,
) {
    for (peer, &addr) in peers.iter().enumerate() {
        if peer == me.index() {
            continue;
        }
        let stop_flag = Arc::clone(&stop_flag);
        std::thread::spawn(move || {
            let mut round = 0u64;
            while !stop_flag.load(Ordering::Relaxed) {
                // Shape 1: honest handshake, garbage frame — must cost this
                // connection a decode-disconnect on the receiver.
                if let Ok(mut s) = TcpStream::connect_timeout(&addr, Duration::from_millis(250)) {
                    let mut bytes = Hello {
                        sender: me,
                        n: n as u32,
                    }
                    .encode();
                    bytes.extend_from_slice(&8u32.to_le_bytes());
                    bytes.extend_from_slice(&round.to_le_bytes()); // bogus tag byte first
                    bytes[minsync_wire::HELLO_LEN + 4] = 0xFF;
                    let _ = s.write_all(&bytes);
                }
                // Shape 2: a foreign protocol — must be rejected at the
                // handshake.
                if let Ok(mut s) = TcpStream::connect_timeout(&addr, Duration::from_millis(250)) {
                    let mut junk = *b"GET / HTTP/1.1\r\n";
                    junk[15] = WIRE_VERSION as u8; // vary the bytes a little
                    let _ = s.write_all(&junk);
                }
                round += 1;
                std::thread::sleep(Duration::from_millis(20));
            }
        });
    }
}
