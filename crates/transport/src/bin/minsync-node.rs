//! One replica of the batched SMR + workload pipeline, run as a real OS
//! process over the TCP mesh — the unit the cluster orchestrator spawns.
//!
//! ```text
//! minsync-node --id I --n N --t T --listen 127.0.0.1:0
//!              [--peers a0,a1,…]           # else bootstrap over stdin
//!              [--auth-keys HEX]           # this replica's MAC keyring
//!              [--wal PATH]                # durable committed-log file
//!              [--window W]                # SMR pipelining window override
//!              [--trace PATH]              # structured trace dump (JSONL)
//!              [--stats-period MS]         # live STAT-STREAM sampling
//!              --groups M --clients C --commands K --batch B
//!              --arrival poisson:G|bursty:B/P|closed:T
//!              --seed S --behavior correct|silent|flood|impersonate
//!              --tick-us US --timeout-ms MS
//! ```
//!
//! With `--auth-keys` (an [`HmacAuthenticator::to_hex`] keyring from the
//! orchestrator's dealer) the mesh authenticates its handshake and MACs
//! every frame; forged streams are severed and counted in the
//! `mesh.auth_rejects` metric of the statistics snapshot.
//!
//! With `--trace` the mesh, SMR layer, and codec record structured trace
//! events into a bounded ring; when the run ends the ring is dumped as
//! JSONL to the named path (readable by `minsync-trace` and the
//! `minsync-telemetry` analyzer), with client `Submitted` stage events
//! back-filled from the workload's arrival schedule.
//!
//! With `--stats-period` the process emits one `STAT-STREAM v1` delta
//! sample (see `minsync_telemetry::timeseries`) over the control pipe every
//! period, and runs a local invariant watchdog over the same snapshots —
//! alarms surface as `watchdog.alarms*` counters in the stream and the
//! final statistics block, and as `alarm` records in the `--trace` ring.
//!
//! With `--wal` a correct replica appends every committed slot to the
//! named file (one `;`-terminated text line per slot) and, on startup,
//! replays whatever complete prefix the file already holds — the crash
//! half of crash-recovery. A restarted replica thus rejoins with its
//! pre-crash log intact and catches the tail over the checkpoint path; the
//! churn orchestrator leans on this for `ChurnAction::Restart`.
//!
//! Control pipe (see `minsync_transport::cluster`): the process prints
//! `PORT <p>` once its listener is bound; if `--peers` was not given it
//! then reads one `PEERS <addr0> … <addrN−1>` line from stdin. Mid-run the
//! orchestrator may inject link faults: `PART <ids…>` drops all outbound
//! traffic to the listed peers (replacing any previous set) and `HEAL`
//! clears every rule. A correct replica prints its statistics block (a
//! `STAT v1 … END STAT` registry snapshot followed by `DONE`) the moment
//! its workload drains, then *keeps serving* acks and checkpoints for
//! laggards until `STOP` arrives on stdin (or stdin closes), bounded by
//! `--timeout-ms`. Byzantine behaviors never report; they run until
//! `STOP`.

use std::io::{BufRead, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use minsync_adversary::impersonate::{forged_hello, tagged_frame, tampered_frame};
use minsync_adversary::{CaptureHandle, CaptureNode, FloodNode, SilentNode};
use minsync_auth::{Authenticator, HmacAuthenticator};
use minsync_core::{ConsensusConfig, ProtocolMsg};
use minsync_net::sim::OutputRecord;
use minsync_net::{Node, VirtualTime};
use minsync_smr::{ReplicaNode, SmrEvent, SmrLimits, SmrMsg};
use minsync_telemetry::trace::{TraceKind, TraceMeta, TraceRecorder, DEFAULT_TRACE_CAPACITY};
use minsync_telemetry::{Registry, Sampler, Watchdog, WatchdogConfig};
use minsync_transport::cluster::{control, parse_arrival, Behavior, LogDigest};
use minsync_transport::mesh::{LinkFaults, MeshConfig, MeshOutput, TcpMesh};
use minsync_types::{ProcessId, Round, SystemConfig};
use minsync_wire::{encode_frame, Hello, DEFAULT_MAX_FRAME, WIRE_VERSION};
use minsync_workload::{account, ArrivalProcess, Batch, ClientPopulation, WorkloadSpec};

type Msg = SmrMsg<Batch>;
type Out = SmrEvent<Batch>;

struct Args {
    id: usize,
    n: usize,
    t: usize,
    listen: SocketAddr,
    peers: Option<Vec<SocketAddr>>,
    groups: usize,
    clients: usize,
    commands: usize,
    batch: usize,
    arrival: ArrivalProcess,
    seed: u64,
    behavior: Behavior,
    tick: Duration,
    timeout: Duration,
    auth: Option<Arc<HmacAuthenticator>>,
    wal: Option<PathBuf>,
    ckpt_retry: u64,
    window: Option<u64>,
    trace: Option<PathBuf>,
    stats_period: Option<Duration>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        id: 0,
        n: 4,
        t: 1,
        listen: "127.0.0.1:0".parse().expect("static addr"),
        peers: None,
        groups: 1,
        clients: 2,
        commands: 8,
        batch: 8,
        arrival: ArrivalProcess::Poisson { mean_gap: 2.0 },
        seed: 1,
        behavior: Behavior::Correct,
        tick: Duration::from_micros(200),
        timeout: Duration::from_secs(30),
        auth: None,
        wal: None,
        ckpt_retry: 0,
        window: None,
        trace: None,
        stats_period: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag {
            "--id" => args.id = value.parse().map_err(|e| format!("--id: {e}"))?,
            "--n" => args.n = value.parse().map_err(|e| format!("--n: {e}"))?,
            "--t" => args.t = value.parse().map_err(|e| format!("--t: {e}"))?,
            "--listen" => args.listen = value.parse().map_err(|e| format!("--listen: {e}"))?,
            "--peers" => {
                let peers: Result<Vec<SocketAddr>, _> = value.split(',').map(str::parse).collect();
                args.peers = Some(peers.map_err(|e| format!("--peers: {e}"))?);
            }
            "--groups" => args.groups = value.parse().map_err(|e| format!("--groups: {e}"))?,
            "--clients" => args.clients = value.parse().map_err(|e| format!("--clients: {e}"))?,
            "--commands" => {
                args.commands = value.parse().map_err(|e| format!("--commands: {e}"))?
            }
            "--batch" => args.batch = value.parse().map_err(|e| format!("--batch: {e}"))?,
            "--arrival" => {
                args.arrival =
                    parse_arrival(value).ok_or_else(|| format!("--arrival: bad spec {value}"))?
            }
            "--seed" => args.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--behavior" => {
                args.behavior = Behavior::parse(value)
                    .ok_or_else(|| format!("--behavior: unknown behavior {value}"))?
            }
            "--tick-us" => {
                args.tick =
                    Duration::from_micros(value.parse().map_err(|e| format!("--tick-us: {e}"))?)
            }
            "--timeout-ms" => {
                args.timeout =
                    Duration::from_millis(value.parse().map_err(|e| format!("--timeout-ms: {e}"))?)
            }
            "--auth-keys" => {
                args.auth = Some(Arc::new(
                    HmacAuthenticator::from_hex(value)
                        .ok_or("--auth-keys: malformed keyring".to_string())?,
                ))
            }
            "--wal" => args.wal = Some(PathBuf::from(value)),
            "--ckpt-retry" => {
                args.ckpt_retry = value.parse().map_err(|e| format!("--ckpt-retry: {e}"))?
            }
            "--window" => {
                let window: u64 = value.parse().map_err(|e| format!("--window: {e}"))?;
                if window == 0 {
                    return Err("--window: must be at least 1".into());
                }
                args.window = Some(window);
            }
            "--trace" => args.trace = Some(PathBuf::from(value)),
            "--stats-period" => {
                let ms: u64 = value.parse().map_err(|e| format!("--stats-period: {e}"))?;
                if ms == 0 {
                    return Err("--stats-period: must be at least 1 ms".into());
                }
                args.stats_period = Some(Duration::from_millis(ms));
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    if args.id >= args.n {
        return Err(format!("--id {} out of range for --n {}", args.id, args.n));
    }
    if let Some(auth) = &args.auth {
        if auth.me().index() != args.id || auth.n() != args.n {
            return Err(format!(
                "--auth-keys is for replica {} of {}, not replica {} of {}",
                auth.me().index(),
                auth.n(),
                args.id,
                args.n
            ));
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("minsync-node: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(args) {
        eprintln!("minsync-node: {e}");
        std::process::exit(1);
    }
}

fn run(args: Args) -> Result<(), String> {
    let me = ProcessId::new(args.id);
    let mesh = TcpMesh::bind(me, args.listen).map_err(|e| format!("bind {}: {e}", args.listen))?;
    let port = mesh
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?
        .port();
    println!("{} {port}", control::PORT);
    std::io::stdout().flush().ok();

    // Stop flag: raised by STOP on stdin, or by stdin closing (the
    // orchestrator died — never outlive it). Link faults: flipped by
    // PART/HEAL on stdin, consulted by every mesh writer.
    let stop_flag = Arc::new(AtomicBool::new(false));
    let faults = Arc::new(LinkFaults::new(args.n));
    let peers = match args.peers.clone() {
        Some(peers) => {
            spawn_stdin_watcher(Arc::clone(&stop_flag), Arc::clone(&faults), None);
            peers
        }
        None => {
            let (peers_tx, peers_rx) = std::sync::mpsc::channel::<Vec<SocketAddr>>();
            spawn_stdin_watcher(Arc::clone(&stop_flag), Arc::clone(&faults), Some(peers_tx));
            peers_rx
                .recv_timeout(args.timeout)
                .map_err(|_| "no PEERS line arrived on stdin".to_string())?
        }
    };
    if peers.len() != args.n {
        return Err(format!(
            "peer list has {} addresses for --n {}",
            peers.len(),
            args.n
        ));
    }

    let system = SystemConfig::new(args.n, args.t).map_err(|e| format!("system config: {e}"))?;
    let pop = WorkloadSpec {
        groups: args.groups,
        clients_per_group: args.clients,
        commands_per_client: args.commands,
        arrivals: args.arrival,
        seed: args.seed,
    }
    .generate(&system)
    .map_err(|e| format!("workload: {e}"))?;
    let total: usize = pop.total_commands();
    let target = pop.slots_upper_bound(args.batch);

    // One registry backs every counter in the process (mesh + SMR layer);
    // the statistics block is its snapshot. The trace ring only exists
    // when `--trace` asked for it — untraced runs keep zero-cost hooks.
    let registry = Arc::new(Registry::new());
    let trace = args
        .trace
        .as_ref()
        .map(|_| Arc::new(TraceRecorder::new(DEFAULT_TRACE_CAPACITY)));

    let mut config = MeshConfig {
        tick: args.tick,
        timeout: args.timeout,
        seed: args.seed,
        auth: args.auth.clone().map(|a| a as Arc<dyn Authenticator>),
        faults: Some(Arc::clone(&faults)),
        registry: Some(Arc::clone(&registry)),
        trace: trace.clone(),
        ..MeshConfig::default()
    };
    if let Some(period) = args.stats_period {
        // Health probes must outpace the sampler: tighten the ping cadence
        // to the sampling period so every sample can carry fresh RTT.
        config.keepalive = config.keepalive.min(period);
    }
    let node: Box<dyn Node<Msg = Msg, Output = Out>> = match args.behavior {
        Behavior::Correct => {
            let cfg = ConsensusConfig::paper(system);
            // Under fault injection, links lose frames outright (a
            // partition blocks a frame at the fault switch; nothing
            // replays it), so the churn orchestrator passes `--ckpt-retry`
            // to enable the repair timer: a dropped state-transfer reply
            // must be a delay, never a permanent wedge. It stays off by
            // default — the repair's ack re-broadcasts speed up slot
            // retirement enough that honest late instance traffic starts
            // landing on retired slots, and clean runs assert those drop
            // counters stay zero.
            let mut limits = SmrLimits {
                ckpt_retry: args.ckpt_retry,
                ..SmrLimits::default()
            };
            if let Some(window) = args.window {
                limits.window = window;
            }
            let mut replica = ReplicaNode::new(cfg, pop.source_for(args.id, args.batch), target)
                .with_limits(limits)
                .with_registry(&registry)
                .with_watch(&registry, args.id);
            if let Some(trace) = &trace {
                replica = replica.with_trace(Arc::clone(trace));
            }
            if let Some(path) = &args.wal {
                let prefix = load_wal(path);
                let mut file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .map_err(|e| format!("opening WAL {}: {e}", path.display()))?;
                replica = replica.with_recovered_prefix(prefix).with_commit_log(
                    move |slot, batch: &Batch| {
                        let mut line = slot.to_string();
                        for &cmd in batch.commands() {
                            line.push(' ');
                            line.push_str(&cmd.to_string());
                        }
                        line.push_str(" ;\n");
                        // The `;` lands with the rest of the line or not at
                        // all, so a crash mid-write costs one slot, never a
                        // corrupt prefix. WAL writes must succeed: acking a
                        // commit the log lost would strand us after a
                        // restart (peers refuse to re-serve acked slots).
                        file.write_all(line.as_bytes())
                            .and_then(|()| file.flush())
                            .expect("WAL append failed");
                    },
                );
            }
            Box::new(replica)
        }
        Behavior::Silent => Box::new(SilentNode::<Msg, Out>::new()),
        Behavior::Impersonate => {
            // The in-protocol half is a silent recorder (it occupies a
            // fault slot and contributes nothing to quorums); the attack
            // itself runs in dialer threads forging *other* replicas'
            // identities at the byte level.
            let capture: CaptureNode<Msg, Out> = CaptureNode::new(1024);
            spawn_impersonator_dialers(
                me,
                args.n,
                args.t,
                &peers,
                args.auth.clone(),
                capture.handle(),
                Arc::clone(&stop_flag),
            );
            Box::new(capture)
        }
        Behavior::Flood => {
            // Protocol-level spam: bursts of future-slot garbage, plus raw
            // garbage bytes dialed straight at every peer (the transport
            // must disconnect those connections, not die).
            spawn_garbage_dialers(me, args.n, &peers, Arc::clone(&stop_flag));
            Box::new(FloodNode::<Msg, Out, _>::new(2, 64, u64::MAX, move |i| {
                SmrMsg::Slot {
                    slot: 2 + (i % target.max(3)),
                    msg: ProtocolMsg::EaProp2 {
                        round: Round::FIRST,
                        value: Batch(vec![u64::MAX]),
                    },
                }
            }))
        }
    };

    // A correct replica reports the moment it drains, then lingers (serving
    // acks/checkpoints to laggards) until STOP; Byzantine behaviors just
    // run until STOP. With `--stats-period`, every period the stop probe
    // also emits one `STAT-STREAM v1` delta sample over the control pipe
    // and feeds the snapshot to a local invariant watchdog, whose alarm
    // totals land back in the registry (`watchdog.alarms*`) — visible in
    // the very next sample and in the final `STAT v1` block.
    let mut reported = args.behavior != Behavior::Correct;
    let tick = args.tick;
    let run_start = std::time::Instant::now();
    let stop = {
        let stop_flag = Arc::clone(&stop_flag);
        let registry = Arc::clone(&registry);
        let pop = &pop;
        let mut last_dbg = std::time::Instant::now();
        let mut sampler = Sampler::new();
        let mut watchdog = Watchdog::new(WatchdogConfig::default()).with_registry(&registry);
        if let Some(trace) = &trace {
            watchdog = watchdog.with_trace(Arc::clone(trace));
        }
        let mut next_sample = args.stats_period.map(|p| run_start + p);
        move |outs: &[MeshOutput<Out>], _counters: &minsync_transport::mesh::MeshCounters| {
            if std::env::var_os("MINSYNC_NODE_DEBUG").is_some()
                && last_dbg.elapsed() > Duration::from_secs(1)
            {
                last_dbg = std::time::Instant::now();
                eprintln!(
                    "minsync-node[{me:?}]: progress {}/{total}",
                    committed_commands(outs)
                );
            }
            if !reported && committed_commands(outs) >= total {
                reported = true;
                print_stats(pop, outs, me, tick, &registry);
            }
            // STOP (or stdin EOF — the orchestrator is gone) ends the run
            // unconditionally: the orchestrator only sends STOP after every
            // correct replica reported, and an orphan must never linger.
            let stopping = stop_flag.load(Ordering::Relaxed);
            if let (Some(period), Some(due)) = (args.stats_period, next_sample) {
                // One sample per period, plus a closing sample on the way
                // out so the stream tail always carries the drained state.
                if stopping || std::time::Instant::now() >= due {
                    let at = (run_start.elapsed().as_nanos() / tick.as_nanos().max(1)) as u64;
                    // Observe first, sample second: alarms this observation
                    // raises bump `watchdog.alarms*` counters that the
                    // sample about to ship already carries.
                    watchdog.observe(args.id as u32, at, &registry.snapshot());
                    let sample = sampler.sample(at, &registry.snapshot());
                    print!("{}", sample.to_text());
                    std::io::stdout().flush().ok();
                    next_sample = Some(due + period);
                }
            }
            stopping
        }
    };
    let report = mesh.run(node, &peers, &config, stop);

    if let (Some(trace), Some(path)) = (&trace, &args.trace) {
        // Back-fill the client `Submitted` stage: the workload has no real
        // client processes, so a slot "finished arriving" at the latest
        // arrival tick among the commands its committed batch carries.
        // (The analyzer keeps the earliest observation per stage, so the
        // append order of these post-hoc events is irrelevant.)
        for out in &report.outputs {
            if let Some((slot, batch)) = out.event.as_committed() {
                if let Some(at) = batch
                    .commands()
                    .iter()
                    .filter_map(|&cmd| pop.submit_tick(cmd))
                    .max()
                {
                    trace.record_at(at, me.index() as u32, TraceKind::Submitted { slot });
                }
            }
        }
        let dump = trace.dump(&TraceMeta {
            source: "tcp".into(),
            tick_ns: args.tick.as_nanos() as u64,
            seed: args.seed,
        });
        std::fs::write(path, dump)
            .map_err(|e| format!("writing trace dump {}: {e}", path.display()))?;
    }

    if args.behavior == Behavior::Correct
        && report.timed_out
        && committed_commands(&report.outputs) < total
    {
        return Err(format!(
            "timed out at {}/{} commands",
            committed_commands(&report.outputs),
            total
        ));
    }
    Ok(())
}

/// Commands committed so far in a mesh output stream.
fn committed_commands(outs: &[MeshOutput<Out>]) -> usize {
    outs.iter()
        .filter_map(|o| o.event.as_committed())
        .map(|(_, batch)| batch.len())
        .sum()
}

/// Prints the statistics block the orchestrator parses (see
/// `cluster::parse_stats`), ending in `DONE`: the run's summary numbers
/// are written into the shared registry as `node.*` gauges and the whole
/// registry — mesh and SMR counters included — goes out as one
/// `STAT v1 … END STAT` snapshot.
fn print_stats(
    pop: &ClientPopulation,
    outs: &[MeshOutput<Out>],
    me: ProcessId,
    tick: Duration,
    registry: &Registry,
) {
    let mut digest = LogDigest::new();
    let mut slots = 0u64;
    let mut commands = 0usize;
    let mut wall = Duration::ZERO;
    let total = pop.total_commands();
    for out in outs {
        if let Some((slot, batch)) = out.event.as_committed() {
            wall = wall.max(out.elapsed);
            if commands >= total {
                // The stop condition cuts at `total` *commands*, but under
                // churn the log can keep growing with empty slots — how
                // many land before this replica's cutoff is a race, so
                // they stay out of the digest. Everything up to the slot
                // carrying the last command is prefix-identical by
                // agreement.
                continue;
            }
            digest.fold_slot(slot, batch.commands());
            slots += 1;
            commands += batch.len();
        }
    }
    // Latency accounting reuses the workload crate: mesh outputs become
    // OutputRecords at their tick-converted emission times.
    let records: Vec<OutputRecord<Out>> = outs
        .iter()
        .map(|o| OutputRecord {
            time: VirtualTime::from_ticks((o.elapsed.as_nanos() / tick.as_nanos().max(1)) as u64),
            process: me,
            event: o.event.clone(),
        })
        .collect();
    let workload = account(pop, &records, me);
    let lat = workload.latency;
    // Run-summary gauges: all integers (the registry holds no floats), so
    // the two fractional quantities ship scaled — wall time in
    // microseconds, mean latency in milliticks.
    registry
        .gauge("node.committed_commands")
        .set(commands as u64);
    registry.gauge("node.committed_slots").set(slots);
    registry.gauge("node.digest").set(digest.value());
    registry.gauge("node.wall_us").set(wall.as_micros() as u64);
    registry.gauge("node.lat_count").set(lat.count as u64);
    registry.gauge("node.lat_p50").set(lat.p50);
    registry.gauge("node.lat_p95").set(lat.p95);
    registry.gauge("node.lat_p99").set(lat.p99);
    registry
        .gauge("node.lat_mean_milli")
        .set((lat.mean * 1000.0).round() as u64);
    print!("{}", registry.snapshot().to_text());
    println!("{}", control::DONE);
    std::io::stdout().flush().ok();
}

/// Watches stdin: forwards the bootstrap `PEERS` line (if a sender is
/// given), applies `PART`/`HEAL` link-fault rules, and raises the stop
/// flag on `STOP` or EOF.
fn spawn_stdin_watcher(
    stop_flag: Arc<AtomicBool>,
    faults: Arc<LinkFaults>,
    peers_tx: Option<std::sync::mpsc::Sender<Vec<SocketAddr>>>,
) {
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        let mut peers_tx = peers_tx;
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            let line = line.trim().to_string();
            if let Some(rest) = line.strip_prefix(control::PEERS) {
                let peers: Result<Vec<SocketAddr>, _> =
                    rest.split_whitespace().map(str::parse).collect();
                if let (Some(tx), Ok(peers)) = (peers_tx.take(), peers) {
                    let _ = tx.send(peers);
                }
            } else if let Some(rest) = line.strip_prefix(control::PART) {
                let blocked: Result<Vec<usize>, _> =
                    rest.split_whitespace().map(str::parse).collect();
                if let Ok(blocked) = blocked {
                    faults.set_blocked(&blocked);
                }
            } else if line == control::HEAL {
                faults.heal();
            } else if line == control::STOP {
                stop_flag.store(true, Ordering::Relaxed);
            }
        }
        // EOF: the orchestrator is gone — stop regardless.
        stop_flag.store(true, Ordering::Relaxed);
    });
}

/// Loads the complete committed prefix out of a WAL file: one
/// `<slot> <cmd>… ;` text line per slot, slots contiguous from 1. The
/// trailing `;` is the torn-write sentinel — an unterminated or
/// out-of-sequence line and everything after it is discarded, so a crash
/// mid-append costs at most the slot being written (which was never acked;
/// see `ReplicaNode::with_commit_log`).
fn load_wal(path: &std::path::Path) -> Vec<Batch> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new(); // first boot: no log yet
    };
    let mut prefix = Vec::new();
    for line in text.lines() {
        let mut tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.pop() != Some(";") {
            break;
        }
        let Some(slot) = tokens.first().and_then(|t| t.parse::<u64>().ok()) else {
            break;
        };
        if slot != prefix.len() as u64 + 1 {
            break;
        }
        let Ok(commands) = tokens[1..]
            .iter()
            .map(|t| t.parse())
            .collect::<Result<Vec<u64>, _>>()
        else {
            break;
        };
        prefix.push(Batch(commands));
    }
    prefix
}

/// Slots the impersonator tries to poison with forged checkpoint votes.
const POISON_SLOTS: u64 = 3;
/// The attacker-chosen command the forged checkpoint votes inject. One
/// *global* value, deliberately: victims the storm misses catch up through
/// the ordinary checkpoint path (their poisoned peers' echoes match, so
/// `t + 1` votes assemble), keeping the poisoned cluster *live* — the
/// demonstration is that an unauthenticated cluster cleanly commits a
/// command no client ever submitted, measured as a digest split against a
/// clean run of the identical workload.
const POISON_COMMAND: u64 = 0xDEAD_BEEF;
/// Rounds of the forged-identity arms (~1s at the dialer cadence). Against
/// an unauthenticated mesh each forged handshake *evicts* the genuine
/// sender's connection (the epoch rule sides with the newest claimant), so
/// an endless storm is a trivial denial of service that would mask the
/// subtler result: bounding it to the cluster's startup window shows the
/// poison landing in the committed logs *and* the cluster then draining —
/// divergence, not just downtime. The MAC-game arm has no such side effect
/// and runs until STOP.
const FORGERY_ROUNDS: u64 = 64;

/// The impersonator's dialer threads: every peer is attacked on three
/// byte-level arms, repeating until STOP.
///
/// 1. **Forged identities** — dial claiming each of `t + 1` *other*
///    replicas (zero-tag handshakes, since the attacker holds none of their
///    keys) and stream poison checkpoint votes for the victim's first
///    slots. An unauthenticated victim counts them toward the `t + 1`
///    checkpoint plurality and commits values no correct replica proposed;
///    an authenticated victim severs the connection at key confirmation,
///    before the forgery can claim the genuine sender's connection epoch.
/// 2. **MAC games** (requires the attacker's own keyring) — a genuine
///    handshake as itself, then a well-formed frame with one tag bit
///    flipped (severed at the MAC check) and a correctly-MAC'd frame over
///    undecodable garbage (severed at the codec — proving the MAC is
///    verified first and the codec still guards behind it).
/// 3. **Replay** — genuine traffic the capture node observed, re-encoded
///    and re-sent under a forged identity.
fn spawn_impersonator_dialers(
    me: ProcessId,
    n: usize,
    t: usize,
    peers: &[SocketAddr],
    auth: Option<Arc<HmacAuthenticator>>,
    captured: CaptureHandle<Msg>,
    stop_flag: Arc<AtomicBool>,
) {
    for (victim, &addr) in peers.iter().enumerate() {
        if victim == me.index() {
            continue;
        }
        // `t + 1` identities the attacker holds no keys for — never the
        // victim's own id (the handshake refuses that outright, keys or
        // not, so it would test nothing).
        let claims: Vec<ProcessId> = (0..n)
            .filter(|&p| p != victim && p != me.index())
            .take(t + 1)
            .map(ProcessId::new)
            .collect();
        let auth = auth.clone();
        let captured = Arc::clone(&captured);
        let stop_flag = Arc::clone(&stop_flag);
        std::thread::spawn(move || {
            let mut round = 0u64;
            while !stop_flag.load(Ordering::Relaxed) {
                let forging = round < FORGERY_ROUNDS;
                // Arm 1: forged hellos carrying poison checkpoint votes.
                for &claim in claims.iter().filter(|_| forging) {
                    if let Ok(mut s) = TcpStream::connect_timeout(&addr, Duration::from_millis(250))
                    {
                        let mut bytes = forged_hello(claim, n as u32);
                        for slot in 1..=POISON_SLOTS {
                            let poison: Msg = SmrMsg::Checkpoint {
                                slot,
                                value: Batch(vec![POISON_COMMAND]),
                            };
                            encode_frame(&poison, &mut bytes, DEFAULT_MAX_FRAME)
                                .expect("a one-command poison batch fits any cap");
                        }
                        let _ = s.write_all(&bytes);
                    }
                }
                // Arm 2: MAC games under the attacker's own identity —
                // both shapes every round, each on its own connection
                // (each costs the attacker that connection), so even the
                // shortest run sees a MAC-severed *and* a codec-severed
                // stream.
                if let Some(auth) = &auth {
                    let to = ProcessId::new(victim);
                    let shapes = [
                        tampered_frame(&round.to_le_bytes(), auth.as_ref(), to),
                        tagged_frame(&[0xFF; 9], auth.as_ref(), to),
                    ];
                    for frame in shapes {
                        if let Ok(mut s) =
                            TcpStream::connect_timeout(&addr, Duration::from_millis(250))
                        {
                            let mut bytes =
                                Hello::authenticated(n as u32, auth.as_ref(), to).encode();
                            bytes.extend_from_slice(&frame);
                            let _ = s.write_all(&bytes);
                        }
                    }
                }
                // Arm 3: replay captured genuine traffic, forged sender.
                let replay: Vec<Msg> = if forging {
                    let seen = captured.lock().expect("capture transcript poisoned");
                    seen.iter().rev().take(8).map(|(_, m)| m.clone()).collect()
                } else {
                    Vec::new()
                };
                if !replay.is_empty() {
                    if let Ok(mut s) = TcpStream::connect_timeout(&addr, Duration::from_millis(250))
                    {
                        let mut bytes = forged_hello(claims[0], n as u32);
                        for msg in &replay {
                            let _ = encode_frame(msg, &mut bytes, DEFAULT_MAX_FRAME);
                        }
                        let _ = s.write_all(&bytes);
                    }
                }
                round += 1;
                std::thread::sleep(Duration::from_millis(15));
            }
        });
    }
}

/// The byte-level arm of the flooder: dials every peer and writes garbage
/// in both shapes the reader must survive — a valid handshake followed by
/// an undecodable frame, and a connection that fails the handshake
/// outright. Repeats until stopped.
fn spawn_garbage_dialers(
    me: ProcessId,
    n: usize,
    peers: &[SocketAddr],
    stop_flag: Arc<AtomicBool>,
) {
    for (peer, &addr) in peers.iter().enumerate() {
        if peer == me.index() {
            continue;
        }
        let stop_flag = Arc::clone(&stop_flag);
        std::thread::spawn(move || {
            let mut round = 0u64;
            while !stop_flag.load(Ordering::Relaxed) {
                // Shape 1: honest handshake, garbage frame — must cost this
                // connection a decode-disconnect on the receiver.
                if let Ok(mut s) = TcpStream::connect_timeout(&addr, Duration::from_millis(250)) {
                    let mut bytes = Hello::new(me, n as u32).encode();
                    bytes.extend_from_slice(&8u32.to_le_bytes());
                    bytes.extend_from_slice(&round.to_le_bytes()); // bogus tag byte first
                    bytes[minsync_wire::HELLO_LEN + 4] = 0xFF;
                    let _ = s.write_all(&bytes);
                }
                // Shape 2: a foreign protocol — must be rejected at the
                // handshake.
                if let Ok(mut s) = TcpStream::connect_timeout(&addr, Duration::from_millis(250)) {
                    let mut junk = *b"GET / HTTP/1.1\r\n";
                    junk[15] = WIRE_VERSION as u8; // vary the bytes a little
                    let _ = s.write_all(&junk);
                }
                round += 1;
                std::thread::sleep(Duration::from_millis(20));
            }
        });
    }
}
