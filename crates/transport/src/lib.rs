//! The socket-backed substrate: run the same sans-io automata every other
//! substrate runs — over real TCP connections, across real OS processes.
//!
//! The repository's other two substrates live in `minsync-net`: the
//! deterministic discrete-event simulator and the in-process threaded
//! runtime. This crate adds the third and most production-shaped one:
//!
//! * [`TcpMesh`] ([`mesh`]) — one mesh instance per process, speaking the
//!   `minsync-wire` byte protocol over `std::net::TcpStream` threads, with
//!   bounded outbound queues (slow or Byzantine peers cost drops, never
//!   stalls), decode-error disconnects (garbage bytes cost the sender its
//!   connection, never the receiver its process), reconnect with backoff,
//!   and wall-clock timers on the shared
//!   [`TimerTable`](minsync_net::TimerTable) generation scheme.
//! * [`cluster`] — a localhost orchestrator that spawns `n` `minsync-node`
//!   OS processes, bootstraps their port assignments over a stdin/stdout
//!   control pipe, and collects per-replica committed-log digests and
//!   latency statistics. This is what powers the E11 experiment and the CI
//!   loopback smoke job.
//!
//! The `minsync-node` binary (in `src/bin/`) is one replica of the batched
//! SMR + workload pipeline from `minsync-smr` / `minsync-workload`, run on
//! a mesh; see the README's cluster walkthrough.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod mesh;

pub use cluster::{
    run_churn_cluster, run_cluster, Behavior, ChurnAction, ChurnPlan, ChurnStep, ClusterError,
    ClusterReport, ClusterSpec, LogDigest, ReplicaStats,
};
pub use mesh::{LinkFaults, MeshConfig, MeshOutput, MeshReport, TcpMesh};
