//! Mesh-level integration tests: real sockets on 127.0.0.1, one mesh
//! instance per thread, adversarial byte streams poked in by hand.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use minsync_auth::HmacAuthenticator;
use minsync_net::{Env, Node, TimerId};
use minsync_transport::mesh::{LinkFaults, MeshConfig, MeshReport, TcpMesh};
use minsync_types::ProcessId;
use minsync_wire::{
    encode_frame, encode_frame_tagged, Hello, DEFAULT_MAX_FRAME, HELLO_LEN, WIRE_VERSION,
};

/// Outputs every message it receives.
struct Collector;

impl Node for Collector {
    type Msg = u64;
    type Output = u64;

    fn on_message(&mut self, _from: ProcessId, msg: u64, env: &mut Env<u64, u64>) {
        env.output(msg);
    }
}

/// Broadcasts `value` once at start, then collects.
struct Caster(u64);

impl Node for Caster {
    type Msg = u64;
    type Output = u64;

    fn on_start(&mut self, env: &mut Env<u64, u64>) {
        env.broadcast(self.0);
    }

    fn on_message(&mut self, _from: ProcessId, msg: u64, env: &mut Env<u64, u64>) {
        env.output(msg);
    }
}

fn quick_config() -> MeshConfig {
    MeshConfig {
        timeout: Duration::from_secs(20),
        ..MeshConfig::default()
    }
}

/// Two mesh instances exchange broadcasts: every process sees both values
/// (its peer's over TCP, its own over the self-channel).
#[test]
fn two_meshes_broadcast_to_each_other() {
    let a = TcpMesh::bind(ProcessId::new(0), "127.0.0.1:0".parse().unwrap()).unwrap();
    let b = TcpMesh::bind(ProcessId::new(1), "127.0.0.1:0".parse().unwrap()).unwrap();
    let peers = vec![a.local_addr().unwrap(), b.local_addr().unwrap()];
    let peers_b = peers.clone();
    let handle = std::thread::spawn(move || {
        b.run(
            Box::new(Caster(200)),
            &peers_b,
            &quick_config(),
            |outs, _| outs.len() >= 2,
        )
    });
    let report_a = a.run(Box::new(Caster(100)), &peers, &quick_config(), |outs, _| {
        outs.len() >= 2
    });
    let report_b = handle.join().unwrap();
    let sorted = |r: &MeshReport<u64>| {
        let mut v: Vec<u64> = r.outputs.iter().map(|o| o.event).collect();
        v.sort_unstable();
        v
    };
    assert!(!report_a.timed_out && !report_b.timed_out);
    assert_eq!(sorted(&report_a), [100, 200]);
    assert_eq!(sorted(&report_b), [100, 200]);
    assert_eq!(report_a.decode_disconnects, 0);
}

/// The RTT plumbing measures live links: after a couple of keepalive
/// periods each side's ping has been echoed back, so the per-peer
/// `link.rtt_ewma` gauge is populated (and exported through the registry
/// and the report) while the self slot stays unmeasured.
#[test]
fn rtt_probes_populate_per_peer_gauges() {
    use std::sync::Arc;
    use std::time::Instant;

    use minsync_telemetry::Registry;

    let a = TcpMesh::bind(ProcessId::new(0), "127.0.0.1:0".parse().unwrap()).unwrap();
    let b = TcpMesh::bind(ProcessId::new(1), "127.0.0.1:0".parse().unwrap()).unwrap();
    let peers = vec![a.local_addr().unwrap(), b.local_addr().unwrap()];
    let registry = Arc::new(Registry::new());
    let config = MeshConfig {
        timeout: Duration::from_secs(20),
        keepalive: Duration::from_millis(10),
        registry: Some(Arc::clone(&registry)),
        ..MeshConfig::default()
    };
    let config_b = MeshConfig {
        registry: None,
        ..config.clone()
    };
    let peers_b = peers.clone();
    let handle = std::thread::spawn(move || {
        let hold = Instant::now();
        b.run(
            Box::new(Caster(200)),
            &peers_b,
            &config_b,
            move |outs, _| {
                // Stay up long enough for a's ping to be echoed back.
                !outs.is_empty() && hold.elapsed() >= Duration::from_millis(300)
            },
        )
    });
    let hold = Instant::now();
    let report_a = a.run(Box::new(Caster(100)), &peers, &config, move |_, c| {
        c.rtt_ewma(1) > 0 && hold.elapsed() >= Duration::from_millis(300)
    });
    let report_b = handle.join().unwrap();
    assert!(!report_a.timed_out && !report_b.timed_out);
    assert!(report_a.pings > 0, "idle cadence sends probes");
    assert!(report_a.rtt_ewma[1] > 0, "peer link measured");
    assert_eq!(report_a.rtt_ewma[0], 0, "self slot never measured");
    // A loopback round trip sits far below a second: the estimate must be
    // in a sane range, not just nonzero (tick = 200µs → 5000 ticks/s).
    assert!(
        report_a.rtt_ewma[1] < 5_000,
        "rtt_ewma {} ticks is implausible for loopback",
        report_a.rtt_ewma[1]
    );
    let snapshot = registry.snapshot();
    assert_eq!(
        snapshot.gauge("link.rtt_ewma.p1"),
        Some(report_a.rtt_ewma[1])
    );
    assert!(snapshot.gauge("link.backlog.p1").is_some());
    // b ran without a registry: detached handles still fed its report.
    assert!(report_b.rtt_ewma[0] > 0, "detached gauges still measure");
}

/// Timers fire and cancel through the shared generation table, mapped to
/// wall-clock deadlines.
#[test]
fn mesh_timers_fire_and_cancel() {
    struct TimerNode;
    impl Node for TimerNode {
        type Msg = u64;
        type Output = &'static str;

        fn on_start(&mut self, env: &mut Env<u64, &'static str>) {
            let keep = env.set_timer(3);
            let cancel = env.set_timer(1);
            env.cancel_timer(cancel);
            let _ = keep;
        }

        fn on_message(&mut self, _: ProcessId, _: u64, _: &mut Env<u64, &'static str>) {}

        fn on_timer(&mut self, _t: TimerId, env: &mut Env<u64, &'static str>) {
            env.output("fired");
        }
    }

    let a = TcpMesh::bind(ProcessId::new(0), "127.0.0.1:0".parse().unwrap()).unwrap();
    // Peer 1 never exists; its writer just backs off in the background.
    let peers = vec![
        a.local_addr().unwrap(),
        "127.0.0.1:1".parse::<SocketAddr>().unwrap(),
    ];
    let report = a.run(Box::new(TimerNode), &peers, &quick_config(), |outs, _| {
        !outs.is_empty()
    });
    assert!(!report.timed_out);
    assert_eq!(report.outputs.len(), 1, "cancelled timer must not fire");
    assert_eq!(report.outputs[0].event, "fired");
}

/// Byzantine bytes cost the sender its connection, never the receiver its
/// process: a garbage frame after a valid handshake is cut with a
/// decode-disconnect, a foreign protocol is cut at the handshake, an
/// oversized frame announcement is cut at its header — and honest traffic
/// keeps flowing throughout.
#[test]
fn garbage_bytes_disconnect_the_peer_not_the_process() {
    let mesh = TcpMesh::bind(ProcessId::new(0), "127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = mesh.local_addr().unwrap();
    let peers = vec![addr, "127.0.0.1:1".parse().unwrap()];

    let poker = std::thread::spawn(move || {
        let hello = Hello::new(ProcessId::new(1), 2).encode();
        // 1. Valid handshake, then a frame whose payload cannot be one
        //    u64: nine bytes decode eight and leave one trailing.
        let mut s1 = TcpStream::connect(addr).unwrap();
        s1.write_all(&hello).unwrap();
        s1.write_all(&9u32.to_le_bytes()).unwrap();
        s1.write_all(&[0xFF; 9]).unwrap();
        // 2. A foreign protocol: rejected at the handshake.
        let mut s2 = TcpStream::connect(addr).unwrap();
        s2.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        // 3. Valid handshake, then an absurd frame length announcement.
        let mut s3 = TcpStream::connect(addr).unwrap();
        s3.write_all(&hello).unwrap();
        s3.write_all(&u32::MAX.to_le_bytes()).unwrap();
        // 4. A version from the future: rejected at the handshake.
        let mut future = hello.clone();
        future[4..6].copy_from_slice(&(WIRE_VERSION + 1).to_le_bytes());
        let mut s4 = TcpStream::connect(addr).unwrap();
        s4.write_all(&future).unwrap();
        // 5. Honest traffic, delivered in two split writes (partial-read
        //    tolerance), still goes through after all of the above.
        let mut s5 = TcpStream::connect(addr).unwrap();
        s5.write_all(&hello).unwrap();
        let mut frame = Vec::new();
        encode_frame(&42u64, &mut frame, DEFAULT_MAX_FRAME).unwrap();
        let (head, tail) = frame.split_at(3);
        s5.write_all(head).unwrap();
        s5.flush().unwrap();
        std::thread::sleep(Duration::from_millis(20));
        s5.write_all(tail).unwrap();
        // Hold the honest sockets open until the mesh stops, so their
        // teardown cannot race the assertions.
        std::thread::sleep(Duration::from_millis(500));
        drop((s1, s2, s3, s4, s5));
    });

    let report = mesh.run(
        Box::new(Collector),
        &peers,
        &quick_config(),
        |outs, counters| {
            outs.iter().any(|o| o.event == 42)
                && counters.decode_disconnects() >= 2
                && counters.handshake_rejects() >= 2
        },
    );
    poker.join().unwrap();
    assert!(!report.timed_out, "mesh survived and delivered");
    assert_eq!(report.outputs.len(), 1);
    assert_eq!(report.outputs[0].event, 42);
    assert!(
        report.decode_disconnects >= 2,
        "garbage frame + oversized header"
    );
    assert!(report.handshake_rejects >= 2, "bad magic + future version");
}

/// The handshake pins the cluster size and forbids claiming the host's own
/// id — both rejected without reading protocol traffic.
#[test]
fn handshake_rejects_wrong_cluster_and_impersonation() {
    let mesh = TcpMesh::bind(ProcessId::new(0), "127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = mesh.local_addr().unwrap();
    let peers = vec![addr, "127.0.0.1:1".parse().unwrap()];
    let poker = std::thread::spawn(move || {
        // Wrong cluster size.
        let mut s1 = TcpStream::connect(addr).unwrap();
        s1.write_all(&Hello::new(ProcessId::new(1), 9).encode())
            .unwrap();
        // Claiming the host's own id.
        let mut s2 = TcpStream::connect(addr).unwrap();
        s2.write_all(&Hello::new(ProcessId::new(0), 2).encode())
            .unwrap();
        std::thread::sleep(Duration::from_millis(300));
        drop((s1, s2));
    });
    let report = mesh.run(
        Box::new(Collector),
        &peers,
        &quick_config(),
        |_, counters| counters.handshake_rejects() >= 2,
    );
    poker.join().unwrap();
    assert!(!report.timed_out);
    assert_eq!(report.handshake_rejects, 2);
    assert!(report.outputs.is_empty(), "no traffic was ever accepted");
}

/// A writer whose connection is cut reconnects with backoff and re-sends
/// its handshake; frames in flight when the connection broke ride the
/// replay ring back out, and later messages flow again.
#[test]
fn writer_reconnects_after_peer_drops_the_connection() {
    struct Beacon;
    impl Node for Beacon {
        type Msg = u64;
        type Output = u64;

        fn on_start(&mut self, env: &mut Env<u64, u64>) {
            env.send(ProcessId::new(1), 0);
            env.set_timer(1);
        }

        fn on_message(&mut self, _: ProcessId, _: u64, _: &mut Env<u64, u64>) {}

        fn on_timer(&mut self, _t: TimerId, env: &mut Env<u64, u64>) {
            env.send(ProcessId::new(1), 0);
            env.set_timer(1);
        }
    }

    // A hand-rolled "peer 1": accept, read the hello, slam the door, then
    // accept again and verify the handshake comes back.
    let peer = TcpListener::bind("127.0.0.1:0").unwrap();
    let peer_addr = peer.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let read_hello = |stream: &mut TcpStream| {
            let mut buf = [0u8; HELLO_LEN];
            stream.read_exact(&mut buf).unwrap();
            Hello::decode(&mut buf.as_slice()).unwrap()
        };
        let (mut first, _) = peer.accept().unwrap();
        let hello = read_hello(&mut first);
        assert_eq!(hello.sender, ProcessId::new(0));
        drop(first); // cut the connection mid-stream
        let (mut second, _) = peer.accept().unwrap();
        let hello = read_hello(&mut second);
        assert_eq!(hello.sender, ProcessId::new(0), "handshake re-sent");
        // Keep reading so the beacon's writes succeed until shutdown.
        let mut sink = [0u8; 1024];
        second
            .set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        loop {
            match second.read(&mut sink) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(_) => break,
            }
        }
    });

    let mesh = TcpMesh::bind(ProcessId::new(0), "127.0.0.1:0".parse().unwrap()).unwrap();
    let peers = vec![mesh.local_addr().unwrap(), peer_addr];
    let report = mesh.run(Box::new(Beacon), &peers, &quick_config(), |_, counters| {
        counters.reconnects() >= 1
    });
    assert!(!report.timed_out, "writer reconnected");
    assert!(report.reconnects >= 1);
    server.join().unwrap();
}

/// Completing a handshake supersedes any older connection claiming the
/// same sender: an attacker (or a stale half-open connection) cannot pin
/// connection slots by holding hello'd sockets open.
#[test]
fn newer_connection_from_a_sender_supersedes_the_older_one() {
    let mesh = TcpMesh::bind(ProcessId::new(0), "127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = mesh.local_addr().unwrap();
    let peers = vec![addr, "127.0.0.1:1".parse().unwrap()];
    let poker = std::thread::spawn(move || {
        let hello = Hello::new(ProcessId::new(1), 2).encode();
        let frame = |v: u64| {
            let mut f = Vec::new();
            encode_frame(&v, &mut f, DEFAULT_MAX_FRAME).unwrap();
            f
        };
        // First connection delivers 1…
        let mut first = TcpStream::connect(addr).unwrap();
        first.write_all(&hello).unwrap();
        first.write_all(&frame(1)).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // …then a second connection claims the same sender.
        let mut second = TcpStream::connect(addr).unwrap();
        second.write_all(&hello).unwrap();
        // Give the first reader time to notice it was superseded, then try
        // to sneak a frame through it: it must never be delivered.
        std::thread::sleep(Duration::from_millis(300));
        let _ = first.write_all(&frame(99));
        std::thread::sleep(Duration::from_millis(100));
        second.write_all(&frame(2)).unwrap();
        // Hold the live socket open until the mesh stops.
        std::thread::sleep(Duration::from_millis(500));
        drop((first, second));
    });
    let mut seen_two_since = None;
    let report = mesh.run(
        Box::new(Collector),
        &peers,
        &quick_config(),
        move |outs, _| {
            // Wait a grace period past the delivery of 2, so a stray 99
            // would have had time to arrive before we assert.
            if outs.iter().any(|o| o.event == 2) {
                let at = *seen_two_since.get_or_insert_with(std::time::Instant::now);
                return at.elapsed() > Duration::from_millis(200);
            }
            false
        },
    );
    poker.join().unwrap();
    assert!(!report.timed_out);
    let events: Vec<u64> = report.outputs.iter().map(|o| o.event).collect();
    assert_eq!(
        events,
        [1, 2],
        "superseded connection's frame must not land"
    );
}

/// Injected link faults partition a live mesh and heal without any
/// reconnect: while the fault is up, outbound frames toward the blocked
/// peer are counted as drops and never hit the socket; after `heal()` the
/// very next send goes through and the peer's reply comes back.
#[test]
fn link_faults_block_then_heal_outbound_traffic() {
    /// Sends `7` toward peer 1 every tick until peer 1's echo arrives.
    struct Beacon;
    impl Node for Beacon {
        type Msg = u64;
        type Output = u64;

        fn on_start(&mut self, env: &mut Env<u64, u64>) {
            env.send(ProcessId::new(1), 7);
            env.set_timer(1);
        }

        fn on_message(&mut self, _: ProcessId, msg: u64, env: &mut Env<u64, u64>) {
            env.output(msg);
        }

        fn on_timer(&mut self, _t: TimerId, env: &mut Env<u64, u64>) {
            env.send(ProcessId::new(1), 7);
            env.set_timer(1);
        }
    }
    /// Echoes everything back to process 0.
    struct Echo;
    impl Node for Echo {
        type Msg = u64;
        type Output = u64;

        fn on_message(&mut self, _: ProcessId, msg: u64, env: &mut Env<u64, u64>) {
            env.send(ProcessId::new(0), msg + 1);
            env.output(msg);
        }
    }

    let faults = std::sync::Arc::new(LinkFaults::new(2));
    faults.block(1);
    assert!(faults.is_blocked(1) && !faults.is_blocked(0));

    let a = TcpMesh::bind(ProcessId::new(0), "127.0.0.1:0".parse().unwrap()).unwrap();
    let b = TcpMesh::bind(ProcessId::new(1), "127.0.0.1:0".parse().unwrap()).unwrap();
    let peers = vec![a.local_addr().unwrap(), b.local_addr().unwrap()];
    let peers_b = peers.clone();
    // B lingers past its first echo: stopping immediately would race its
    // writer thread (teardown outranks the backlog and would discard the
    // still-queued reply frame).
    let mut served_since = None;
    let echo = std::thread::spawn(move || {
        b.run(Box::new(Echo), &peers_b, &quick_config(), move |outs, _| {
            if outs.is_empty() {
                return false;
            }
            let at = *served_since.get_or_insert_with(std::time::Instant::now);
            at.elapsed() > Duration::from_millis(300)
        })
    });
    let healer = {
        let faults = std::sync::Arc::clone(&faults);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            faults.heal();
        })
    };
    let config = MeshConfig {
        faults: Some(std::sync::Arc::clone(&faults)),
        ..quick_config()
    };
    let report_a = a.run(Box::new(Beacon), &peers, &config, |outs, _| {
        !outs.is_empty()
    });
    let report_b = echo.join().unwrap();
    healer.join().unwrap();
    assert!(!report_a.timed_out && !report_b.timed_out);
    assert_eq!(report_a.outputs[0].event, 8, "echo landed after the heal");
    assert_eq!(report_b.outputs[0].event, 7);
    assert!(
        report_a.outbound_dropped[1] >= 1,
        "partition-era sends were counted as drops, got {:?}",
        report_a.outbound_dropped
    );
}

/// `set_blocked` replaces the whole blocked set (the `PART` control verb's
/// semantics) and `heal` clears it.
#[test]
fn link_faults_set_blocked_replaces_wholesale() {
    let f = LinkFaults::new(4);
    f.set_blocked(&[1, 3]);
    assert!(!f.is_blocked(0) && f.is_blocked(1) && !f.is_blocked(2) && f.is_blocked(3));
    f.set_blocked(&[2]);
    assert!(
        !f.is_blocked(1) && f.is_blocked(2) && !f.is_blocked(3),
        "replaced, not unioned"
    );
    f.heal();
    assert!((0..4).all(|p| !f.is_blocked(p)));
}

/// Key confirmation happens *before* the epoch claim: a forged handshake
/// racing the genuine sender's connection is rejected without superseding
/// it, so the impersonator can neither deliver traffic nor knock the real
/// replica off the mesh — frames sent on the genuine connection after the
/// forgery storm still land.
#[test]
fn forged_handshakes_cannot_evict_the_genuine_connection() {
    let mut ring = HmacAuthenticator::deal(b"mesh-epoch-test", 2);
    let peer_auth = ring.remove(1);
    let my_auth = ring.remove(0);
    let mesh = TcpMesh::bind(ProcessId::new(0), "127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = mesh.local_addr().unwrap();
    let peers = vec![addr, "127.0.0.1:1".parse().unwrap()];
    let config = MeshConfig {
        auth: Some(std::sync::Arc::new(my_auth)),
        ..quick_config()
    };

    let poker = std::thread::spawn(move || {
        let frame = |v: u64| {
            let mut f = Vec::new();
            encode_frame_tagged(&v, &mut f, DEFAULT_MAX_FRAME, &peer_auth, ProcessId::new(0))
                .unwrap();
            f
        };
        // The genuine replica 1 connects with a key-confirmed handshake.
        let mut genuine = TcpStream::connect(addr).unwrap();
        genuine
            .write_all(&Hello::authenticated(2, &peer_auth, ProcessId::new(0)).encode())
            .unwrap();
        genuine.write_all(&frame(1)).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // A forgery storm claims the same sender with zeroed tags. If the
        // epoch were claimed before key confirmation, each of these would
        // kill the genuine connection.
        let mut forged = Vec::new();
        for _ in 0..3 {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&Hello::new(ProcessId::new(1), 2).encode())
                .unwrap();
            forged.push(s);
            std::thread::sleep(Duration::from_millis(50));
        }
        std::thread::sleep(Duration::from_millis(200));
        // The genuine connection must still be live.
        genuine.write_all(&frame(2)).unwrap();
        std::thread::sleep(Duration::from_millis(500));
        drop((genuine, forged));
    });

    let report = mesh.run(Box::new(Collector), &peers, &config, |outs, counters| {
        outs.iter().any(|o| o.event == 2) && counters.auth_rejects() >= 3
    });
    poker.join().unwrap();
    assert!(!report.timed_out, "genuine traffic survived the forgeries");
    let events: Vec<u64> = report.outputs.iter().map(|o| o.event).collect();
    assert_eq!(events, [1, 2], "both genuine frames on one connection");
    assert!(report.auth_rejects >= 3, "every forgery was severed");
    assert_eq!(
        report.decode_disconnects, 0,
        "forged bytes never reached the codec"
    );
}
