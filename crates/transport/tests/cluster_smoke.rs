//! Real multi-process cluster tests: n OS processes on 127.0.0.1 reach
//! digest-identical committed logs over TCP, with and without Byzantine
//! riders. These are the tier-1 teeth behind the E11 experiment.

use std::time::Duration;

use minsync_transport::cluster::{run_cluster, Behavior, ClusterSpec};
use minsync_workload::ArrivalProcess;

/// Points the orchestrator at the binary Cargo built for this test run.
fn use_built_binary() {
    std::env::set_var("MINSYNC_NODE_BIN", env!("CARGO_BIN_EXE_minsync-node"));
}

fn spec(n: usize, t: usize, riders: Vec<Behavior>) -> ClusterSpec {
    ClusterSpec {
        n,
        t,
        groups: 1, // m = 1: committed logs are schedule-independent
        clients_per_group: 2,
        commands_per_client: 8,
        batch: 8,
        arrivals: ArrivalProcess::Poisson { mean_gap: 2.0 },
        seed: 7,
        riders,
        auth: false,
        tick: Duration::from_micros(200),
        child_timeout: Duration::from_secs(30),
        harness_timeout: Duration::from_secs(60),
        window: None,
        trace_dir: None,
        stats_period: None,
    }
}

#[test]
fn all_correct_cluster_agrees_over_tcp() {
    use_built_binary();
    let report = run_cluster(&spec(4, 1, vec![])).expect("cluster runs");
    assert_eq!(report.replicas.len(), 4);
    assert!(report.digests_agree(), "committed-log digests diverged");
    for r in &report.replicas {
        assert_eq!(
            r.committed, report.total_commands,
            "replica {} stalled",
            r.id
        );
        assert!(r.wall > Duration::ZERO);
    }
    assert!(report.cmds_per_sec() > 0.0);
}

#[test]
fn silent_rider_does_not_stall_the_cluster() {
    use_built_binary();
    let report = run_cluster(&spec(4, 1, vec![Behavior::Silent])).expect("cluster runs");
    assert_eq!(report.replicas.len(), 3, "three correct replicas report");
    assert!(report.digests_agree());
    for r in &report.replicas {
        assert_eq!(r.committed, report.total_commands);
    }
}

#[test]
fn flooding_rider_is_survived_and_disconnected() {
    use_built_binary();
    let report = run_cluster(&spec(4, 1, vec![Behavior::Flood])).expect("cluster runs");
    assert_eq!(report.replicas.len(), 3);
    assert!(report.digests_agree());
    for r in &report.replicas {
        assert_eq!(r.committed, report.total_commands);
    }
    // The flooder's garbage-byte arm must have been cut at least once
    // somewhere in the cluster — the decode-error-disconnect defense at
    // work (the protocol-spam arm is absorbed by the SMR bounded buffers).
    let cuts: u64 = report
        .replicas
        .iter()
        .map(|r| r.decode_disconnects + r.handshake_rejects)
        .sum();
    assert!(cuts >= 1, "no replica ever cut the garbage dialer");
}

/// An authenticated cluster (per-frame MACs, key-confirmed handshakes)
/// drains and agrees exactly like a plain one — the MAC layer must be
/// transparent to honest traffic.
#[test]
fn authenticated_cluster_agrees_over_tcp() {
    use_built_binary();
    let mut spec = spec(4, 1, vec![]);
    spec.auth = true;
    let report = run_cluster(&spec).expect("authenticated cluster runs");
    assert_eq!(report.replicas.len(), 4);
    assert!(report.digests_agree());
    for r in &report.replicas {
        assert_eq!(r.committed, report.total_commands);
        assert_eq!(r.auth_rejects, 0, "honest traffic must always verify");
    }
}

/// An impersonator rider forging other replicas' identities against an
/// authenticated cluster: every forged stream is severed at the MAC layer
/// (`auth_rejects`), its valid-MAC garbage arm is cut at the codec, and the
/// committed logs stay digest-identical with full liveness.
#[test]
fn authenticated_cluster_severs_an_impersonator() {
    use_built_binary();
    let mut spec = spec(4, 1, vec![Behavior::Impersonate]);
    spec.auth = true;
    let report = run_cluster(&spec).expect("cluster runs");
    assert_eq!(report.replicas.len(), 3);
    assert!(
        report.digests_agree(),
        "forged identities must not steer agreement"
    );
    for r in &report.replicas {
        assert_eq!(r.committed, report.total_commands);
    }
    let auth_rejects: u64 = report.replicas.iter().map(|r| r.auth_rejects).sum();
    assert!(auth_rejects >= 1, "no replica ever severed a forged stream");
    // The impersonator's valid-MAC-but-undecodable arm passes the MAC
    // check and must die at the codec instead.
    let cuts: u64 = report.replicas.iter().map(|r| r.decode_disconnects).sum();
    assert!(cuts >= 1, "the valid-MAC garbage arm was never cut");
}

/// The same impersonator against an *unauthenticated* cluster: its forged
/// checkpoint votes pass for `t + 1` distinct correct senders, and the
/// cluster commits the attacker's command — the committed log differs from
/// a clean run of the *identical* workload. (This is the attack
/// demonstration; the defense is the test above.)
#[test]
fn unauthenticated_cluster_accepts_the_forged_stream() {
    use_built_binary();
    let clean = run_cluster(&spec(4, 1, vec![Behavior::Silent])).expect("clean cluster");
    let poisoned = run_cluster(&spec(4, 1, vec![Behavior::Impersonate])).expect("poisoned cluster");
    assert_eq!(poisoned.replicas.len(), 3);
    for r in &poisoned.replicas {
        assert_eq!(r.auth_rejects, 0, "nothing to sever without keys");
    }
    // The flood test proves model-legal noise cannot move the m=1 log; the
    // impersonator's forgery *does* move it.
    assert!(
        poisoned
            .replicas
            .iter()
            .all(|r| r.digest != clean.replicas[0].digest),
        "no replica committed the forged command: clean={:016x} poisoned={:?}",
        clean.replicas[0].digest,
        poisoned
            .replicas
            .iter()
            .map(|r| (r.id, r.digest))
            .collect::<Vec<_>>()
    );
}

/// A cluster run with live stat streaming: every correct replica emits
/// periodic `STAT-STREAM v1` samples over its control pipe, the
/// orchestrator reassembles them into per-replica series carrying the
/// `watch.p<i>.*` health gauges, and the local watchdogs stay silent on a
/// clean run — all while the final report is exactly as healthy as an
/// unsampled one.
#[test]
fn sampled_cluster_streams_health_gauges_without_alarms() {
    use_built_binary();
    let mut spec = spec(4, 1, vec![]);
    // The node tightens its mesh ping cadence to the sampling period, and
    // emits one closing sample at STOP — so even a short run ends with a
    // series whose tail has seen at least one ping round-trip.
    spec.stats_period = Some(Duration::from_millis(25));
    let report = run_cluster(&spec).expect("sampled cluster runs");
    assert_eq!(report.replicas.len(), 4);
    assert!(report.digests_agree());
    for r in &report.replicas {
        assert_eq!(r.committed, report.total_commands);
        assert!(!r.series.is_empty(), "replica {} streamed no samples", r.id);
        // The reconstructed tail carries the replica's own watch plane at
        // its drained state, and the mesh's per-peer RTT estimators.
        let state = r.series.state();
        let floor = state.gauge(&format!("watch.p{}.commit_floor", r.id));
        assert!(
            floor.is_some_and(|f| f > 0),
            "replica {} floor {floor:?}",
            r.id
        );
        assert!(
            (0..4).any(|p| state
                .gauge(&format!("link.rtt_ewma.p{p}"))
                .is_some_and(|v| v > 0)),
            "replica {} observed no peer RTT",
            r.id
        );
        // Clean run: the local watchdog never fired.
        assert_eq!(state.counter("watchdog.alarms").unwrap_or(0), 0);
        assert_eq!(r.snapshot.counter("watchdog.alarms").unwrap_or(0), 0);
    }
}

/// The deterministic m=1 workload commits the *same* log whether the
/// flooder is present or not — Byzantine noise cannot steer agreement.
#[test]
fn flood_and_clean_clusters_commit_identical_logs() {
    use_built_binary();
    let clean = run_cluster(&spec(4, 1, vec![])).expect("clean cluster");
    let noisy = run_cluster(&spec(4, 1, vec![Behavior::Flood])).expect("noisy cluster");
    assert_eq!(
        clean.replicas[0].digest, noisy.replicas[0].digest,
        "m=1 log must be independent of Byzantine interference"
    );
}
