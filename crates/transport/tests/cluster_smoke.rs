//! Real multi-process cluster tests: n OS processes on 127.0.0.1 reach
//! digest-identical committed logs over TCP, with and without Byzantine
//! riders. These are the tier-1 teeth behind the E11 experiment.

use std::time::Duration;

use minsync_transport::cluster::{run_cluster, Behavior, ClusterSpec};
use minsync_workload::ArrivalProcess;

/// Points the orchestrator at the binary Cargo built for this test run.
fn use_built_binary() {
    std::env::set_var("MINSYNC_NODE_BIN", env!("CARGO_BIN_EXE_minsync-node"));
}

fn spec(n: usize, t: usize, riders: Vec<Behavior>) -> ClusterSpec {
    ClusterSpec {
        n,
        t,
        groups: 1, // m = 1: committed logs are schedule-independent
        clients_per_group: 2,
        commands_per_client: 8,
        batch: 8,
        arrivals: ArrivalProcess::Poisson { mean_gap: 2.0 },
        seed: 7,
        riders,
        tick: Duration::from_micros(200),
        child_timeout: Duration::from_secs(30),
        harness_timeout: Duration::from_secs(60),
    }
}

#[test]
fn all_correct_cluster_agrees_over_tcp() {
    use_built_binary();
    let report = run_cluster(&spec(4, 1, vec![])).expect("cluster runs");
    assert_eq!(report.replicas.len(), 4);
    assert!(report.digests_agree(), "committed-log digests diverged");
    for r in &report.replicas {
        assert_eq!(
            r.committed, report.total_commands,
            "replica {} stalled",
            r.id
        );
        assert!(r.wall > Duration::ZERO);
    }
    assert!(report.cmds_per_sec() > 0.0);
}

#[test]
fn silent_rider_does_not_stall_the_cluster() {
    use_built_binary();
    let report = run_cluster(&spec(4, 1, vec![Behavior::Silent])).expect("cluster runs");
    assert_eq!(report.replicas.len(), 3, "three correct replicas report");
    assert!(report.digests_agree());
    for r in &report.replicas {
        assert_eq!(r.committed, report.total_commands);
    }
}

#[test]
fn flooding_rider_is_survived_and_disconnected() {
    use_built_binary();
    let report = run_cluster(&spec(4, 1, vec![Behavior::Flood])).expect("cluster runs");
    assert_eq!(report.replicas.len(), 3);
    assert!(report.digests_agree());
    for r in &report.replicas {
        assert_eq!(r.committed, report.total_commands);
    }
    // The flooder's garbage-byte arm must have been cut at least once
    // somewhere in the cluster — the decode-error-disconnect defense at
    // work (the protocol-spam arm is absorbed by the SMR bounded buffers).
    let cuts: u64 = report
        .replicas
        .iter()
        .map(|r| r.decode_disconnects + r.handshake_rejects)
        .sum();
    assert!(cuts >= 1, "no replica ever cut the garbage dialer");
}

/// The deterministic m=1 workload commits the *same* log whether the
/// flooder is present or not — Byzantine noise cannot steer agreement.
#[test]
fn flood_and_clean_clusters_commit_identical_logs() {
    use_built_binary();
    let clean = run_cluster(&spec(4, 1, vec![])).expect("clean cluster");
    let noisy = run_cluster(&spec(4, 1, vec![Behavior::Flood])).expect("noisy cluster");
    assert_eq!(
        clean.replicas[0].digest, noisy.replicas[0].digest,
        "m=1 log must be independent of Byzantine interference"
    );
}
