//! Orchestrator fail-fast: a child that dies before announcing its port
//! must surface as an immediate protocol error carrying the exit status,
//! not as a harness-timeout minutes later.
//!
//! Lives in its own test binary because it points `MINSYNC_NODE_BIN` at a
//! deliberately-broken "replica" — an environment variable is process
//! -global, so sharing a binary with the real cluster tests would race.

use std::time::{Duration, Instant};

use minsync_transport::cluster::{run_cluster, ClusterError, ClusterSpec};
use minsync_workload::ArrivalProcess;

#[test]
fn child_dying_before_port_fails_fast_with_its_exit_status() {
    // `false` exits 1 without ever printing a PORT line.
    std::env::set_var("MINSYNC_NODE_BIN", "/bin/false");
    let spec = ClusterSpec {
        n: 4,
        t: 1,
        groups: 1,
        clients_per_group: 1,
        commands_per_client: 1,
        batch: 8,
        arrivals: ArrivalProcess::Poisson { mean_gap: 2.0 },
        seed: 7,
        riders: vec![],
        auth: false,
        tick: Duration::from_micros(200),
        child_timeout: Duration::from_secs(30),
        harness_timeout: Duration::from_secs(60),
        window: None,
        trace_dir: None,
        stats_period: None,
    };
    let start = Instant::now();
    let err = run_cluster(&spec).expect_err("a cluster of /bin/false cannot run");
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "fail-fast took {:?} — the orchestrator waited toward its deadline",
        start.elapsed()
    );
    match err {
        ClusterError::Protocol { what, .. } => {
            assert!(
                what.contains("exited before announcing its port"),
                "unexpected protocol error: {what}"
            );
            assert!(
                what.contains("exit status: 1"),
                "error should carry the child's exit status: {what}"
            );
        }
        other => panic!("expected a protocol error, got: {other}"),
    }
}
