//! Orchestrator fail-fast, phase two: a child that announces its port and
//! *then* dies (the after-handshake crash) must still surface as an
//! immediate protocol error naming the dead replica and its exit status —
//! never as a generic io error or a harness timeout.
//!
//! Lives in its own test binary because it points `MINSYNC_NODE_BIN` at a
//! deliberately-broken "replica" — an environment variable is process
//! -global, so sharing a binary with the other cluster tests would race.

#![cfg(unix)]

use std::time::{Duration, Instant};

use minsync_transport::cluster::{run_cluster, ClusterError, ClusterSpec};
use minsync_workload::ArrivalProcess;

#[test]
fn child_dying_after_port_fails_fast_naming_the_victim() {
    // A "replica" that completes the port handshake, then drops dead.
    use std::os::unix::fs::PermissionsExt;
    let dir = std::env::temp_dir().join(format!("minsync-fake-node-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let script = dir.join("fake-node.sh");
    std::fs::write(&script, "#!/bin/sh\necho 'PORT 1'\nexit 3\n").unwrap();
    std::fs::set_permissions(&script, std::fs::Permissions::from_mode(0o755)).unwrap();
    std::env::set_var("MINSYNC_NODE_BIN", &script);

    let spec = ClusterSpec {
        n: 4,
        t: 1,
        groups: 1,
        clients_per_group: 1,
        commands_per_client: 1,
        batch: 8,
        arrivals: ArrivalProcess::Poisson { mean_gap: 2.0 },
        seed: 7,
        riders: vec![],
        auth: false,
        tick: Duration::from_micros(200),
        child_timeout: Duration::from_secs(30),
        harness_timeout: Duration::from_secs(60),
        window: None,
        trace_dir: None,
        stats_period: None,
    };
    let start = Instant::now();
    let err = run_cluster(&spec).expect_err("a cluster of exiting stubs cannot run");
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "fail-fast took {:?} — the orchestrator waited toward its deadline",
        start.elapsed()
    );
    let _ = std::fs::remove_dir_all(&dir);
    // Which phase catches the death depends on pipe-close timing (the EOF
    // racing the peer-list write racing the report wait), but every path
    // must name a replica and carry its exit status.
    match err {
        ClusterError::Protocol { id, what } => {
            assert!(id < 4, "protocol errors name a real replica, got {id}");
            assert!(
                what.contains("exit status: 3"),
                "error should carry the child's exit status: {what}"
            );
            assert!(
                !what.contains("before announcing its port"),
                "the child did announce its port; the error blames the wrong phase: {what}"
            );
        }
        other => panic!("expected a protocol error, got: {other}"),
    }
}
