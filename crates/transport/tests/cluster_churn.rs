//! End-to-end churn orchestration: real `minsync-node` processes disrupted
//! mid-run by the [`ChurnPlan`] verbs — a message-level partition that
//! heals, and a crash (SIGKILL) followed by a same-port restart that
//! recovers from the write-ahead log. Both must end with every replica
//! draining the full workload onto digest-identical logs.

use std::time::Duration;

use minsync_transport::cluster::{
    run_churn_cluster, ChurnAction, ChurnPlan, ClusterSpec, LogDigest,
};
use minsync_workload::ArrivalProcess;

/// A workload slow enough (~20 ms between commands per client) that the
/// plan's disruptions land mid-run, and small enough (≤ 48 slots) to stay
/// inside the SMR flow-control window a rejoiner starts with.
fn spec(seed: u64) -> ClusterSpec {
    ClusterSpec {
        n: 4,
        t: 1,
        groups: 1,
        clients_per_group: 2,
        commands_per_client: 20,
        batch: 4,
        arrivals: ArrivalProcess::Poisson { mean_gap: 100.0 },
        seed,
        riders: vec![],
        auth: false,
        tick: Duration::from_micros(200),
        child_timeout: Duration::from_secs(60),
        harness_timeout: Duration::from_secs(120),
        window: None,
        trace_dir: None,
        stats_period: None,
    }
}

#[test]
fn partition_heals_and_the_cluster_drains() {
    let spec = spec(11);
    let plan = ChurnPlan::new()
        .step(
            Duration::from_millis(80),
            ChurnAction::Partition { side: vec![3] },
        )
        .step(Duration::from_millis(380), ChurnAction::Heal);
    let report = run_churn_cluster(&spec, &plan).expect("churn cluster runs");
    assert!(report.digests_agree(), "logs split: {:?}", report.replicas);
    for r in &report.replicas {
        assert_eq!(
            r.committed,
            spec.total_commands(),
            "replica {} finished short",
            r.id
        );
    }
    assert_ne!(report.replicas[0].digest, LogDigest::new().value());
}

#[test]
fn killed_replica_restarts_from_wal_with_an_identical_log() {
    let spec = spec(12);
    let plan = ChurnPlan::new()
        .step(Duration::from_millis(100), ChurnAction::Kill { id: 2 })
        .step(Duration::from_millis(350), ChurnAction::Restart { id: 2 });
    let report = run_churn_cluster(&spec, &plan).expect("churn cluster runs");
    assert!(
        report.digests_agree(),
        "the rejoiner's recovered log diverged: {:?}",
        report.replicas
    );
    for r in &report.replicas {
        assert_eq!(
            r.committed,
            spec.total_commands(),
            "replica {} finished short",
            r.id
        );
    }
}
