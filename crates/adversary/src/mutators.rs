//! Ready-made message mutators for [`FilterNode`](crate::FilterNode),
//! targeting the specific mechanisms of the paper's algorithms.

use minsync_broadcast::RbMsg;
use minsync_core::{CbId, ProtocolMsg, RbTag};
use minsync_types::{ProcessId, Value};

/// Equivocates the initial proposal: the wrapped node's `CB_VAL(ConsValid)`
/// `INIT` carries `value_a` to destinations in the first half of the id
/// space and `value_b` to the rest. Everything else (echoes, readies, later
/// rounds) flows unchanged — the node keeps "honestly" running on its own
/// proposal, which is the subtlest version of this attack.
///
/// Bracha's RB defeats it: at most one of the two values can gather an echo
/// quorum, so correct processes never CB-validate both as coming from this
/// origin.
pub fn equivocate_proposal<V: Value>(
    n: usize,
    value_a: V,
    value_b: V,
) -> impl FnMut(ProcessId, &ProtocolMsg<V>) -> Option<ProtocolMsg<V>> + Send {
    move |to: ProcessId, msg: &ProtocolMsg<V>| {
        if let ProtocolMsg::Rb(RbMsg::Init {
            tag: RbTag::CbVal(CbId::ConsValid),
            ..
        }) = msg
        {
            let forged = if to.index() < n / 2 {
                value_a.clone()
            } else {
                value_b.clone()
            };
            return Some(ProtocolMsg::Rb(RbMsg::Init {
                tag: RbTag::CbVal(CbId::ConsValid),
                value: forged,
            }));
        }
        Some(msg.clone())
    }
}

/// Mutes the coordinator role: drops every outgoing `EA_COORD`, so in every
/// round this process coordinates, correct processes fall back to the timer
/// / `⊥`-relay path — the paper's worst case for EA progress. All other
/// behavior stays honest.
pub fn mute_coordinator<V: Value>(
) -> impl FnMut(ProcessId, &ProtocolMsg<V>) -> Option<ProtocolMsg<V>> + Send {
    move |_to: ProcessId, msg: &ProtocolMsg<V>| match msg {
        ProtocolMsg::EaCoord { .. } => None,
        other => Some(other.clone()),
    }
}

/// A coordinator that *splits* instead of muting: when championing, it
/// sends `value_a` as `EA_COORD` to half the processes and `value_b` to the
/// other half, trying to make their relays disagree. (EA tolerates this —
/// its validity property is deliberately weak — and the consensus layer's
/// AC object prevents the split from violating agreement.)
pub fn split_coordinator<V: Value>(
    n: usize,
    value_a: V,
    value_b: V,
) -> impl FnMut(ProcessId, &ProtocolMsg<V>) -> Option<ProtocolMsg<V>> + Send {
    move |to: ProcessId, msg: &ProtocolMsg<V>| match msg {
        ProtocolMsg::EaCoord { round, .. } => {
            let forged = if to.index() < n / 2 {
                value_a.clone()
            } else {
                value_b.clone()
            };
            Some(ProtocolMsg::EaCoord {
                round: *round,
                value: forged,
            })
        }
        other => Some(other.clone()),
    }
}

/// Drops every outgoing `EA_RELAY`, starving line 6's `n − t` relay wait as
/// much as a single process can.
pub fn drop_relays<V: Value>(
) -> impl FnMut(ProcessId, &ProtocolMsg<V>) -> Option<ProtocolMsg<V>> + Send {
    move |_to: ProcessId, msg: &ProtocolMsg<V>| match msg {
        ProtocolMsg::EaRelay { .. } => None,
        other => Some(other.clone()),
    }
}

/// Withholds all RB `ECHO` / `READY` participation: the process still
/// initiates its own broadcasts but never helps anyone else's instance
/// complete — a "free rider" liveness attack on the RB layer.
pub fn withhold_rb_support<V: Value>(
) -> impl FnMut(ProcessId, &ProtocolMsg<V>) -> Option<ProtocolMsg<V>> + Send {
    move |_to: ProcessId, msg: &ProtocolMsg<V>| match msg {
        ProtocolMsg::Rb(RbMsg::Echo { .. }) | ProtocolMsg::Rb(RbMsg::Ready { .. }) => None,
        other => Some(other.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minsync_types::Round;

    #[test]
    fn equivocator_forges_only_consvalid_inits() {
        let mut m = equivocate_proposal::<u64>(4, 1, 2);
        let init = ProtocolMsg::Rb(RbMsg::Init {
            tag: RbTag::CbVal(CbId::ConsValid),
            value: 9u64,
        });
        // First half gets value_a...
        match m(ProcessId::new(0), &init) {
            Some(ProtocolMsg::Rb(RbMsg::Init { value, .. })) => assert_eq!(value, 1),
            other => panic!("unexpected: {other:?}"),
        }
        // ...second half gets value_b.
        match m(ProcessId::new(3), &init) {
            Some(ProtocolMsg::Rb(RbMsg::Init { value, .. })) => assert_eq!(value, 2),
            other => panic!("unexpected: {other:?}"),
        }
        // Other messages flow untouched.
        let echo = ProtocolMsg::Rb(RbMsg::Echo {
            origin: ProcessId::new(2),
            tag: RbTag::CbVal(CbId::ConsValid),
            value: 9u64,
        });
        assert_eq!(m(ProcessId::new(0), &echo), Some(echo.clone()));
    }

    #[test]
    fn mute_coordinator_drops_only_coord() {
        let mut m = mute_coordinator::<u64>();
        let coord = ProtocolMsg::EaCoord {
            round: Round::FIRST,
            value: 5u64,
        };
        assert_eq!(m(ProcessId::new(0), &coord), None);
        let relay = ProtocolMsg::EaRelay {
            round: Round::FIRST,
            value: Some(5u64),
        };
        assert_eq!(m(ProcessId::new(0), &relay), Some(relay.clone()));
    }

    #[test]
    fn split_coordinator_forges_per_half() {
        let mut m = split_coordinator::<u64>(4, 10, 20);
        let coord = ProtocolMsg::EaCoord {
            round: Round::FIRST,
            value: 5u64,
        };
        match m(ProcessId::new(1), &coord) {
            Some(ProtocolMsg::EaCoord { value, .. }) => assert_eq!(value, 10),
            other => panic!("unexpected: {other:?}"),
        }
        match m(ProcessId::new(2), &coord) {
            Some(ProtocolMsg::EaCoord { value, .. }) => assert_eq!(value, 20),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn withholder_blocks_echo_and_ready() {
        let mut m = withhold_rb_support::<u64>();
        let echo = ProtocolMsg::Rb(RbMsg::Echo {
            origin: ProcessId::new(1),
            tag: RbTag::Decide,
            value: 5u64,
        });
        assert_eq!(m(ProcessId::new(0), &echo), None);
        let init = ProtocolMsg::Rb(RbMsg::Init {
            tag: RbTag::Decide,
            value: 5u64,
        });
        assert!(m(ProcessId::new(0), &init).is_some());
    }
}
