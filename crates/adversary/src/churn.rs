//! Time-windowed churn injection for the simulator's
//! [`ScheduleOracle`] seam.
//!
//! The delay oracles in [`crate::oracles`] shape *how slow* asynchronous
//! channels are; the churn oracle models *dynamic* faults — partitions that
//! heal, processes that vanish and come back, a timely source that moves —
//! by suppressing messages outright during declared time windows. Drops are
//! the one tool the schedule seam has that timing bounds cannot veto, and
//! they are sound against a correct protocol: round advancement (the view
//! synchronizer) retransmits state in fresh-round messages and the SMR
//! checkpoint path repairs any replica that missed traffic, so progress
//! must resume once the window closes — exactly the liveness-under-churn
//! property experiment E13 asserts.
//!
//! Everything here is virtual-time-driven and deterministic: the same
//! windows over the same seeded simulation give byte-identical executions.

use minsync_net::sim::{ScheduleCommand, ScheduleOracle};
use minsync_net::VirtualTime;
use minsync_types::ProcessId;

/// A [`Disruption::Targeted`] drop predicate: given sender, destination,
/// and the message, returns true for messages to suppress.
pub type DropPredicate<M> = Box<dyn FnMut(ProcessId, ProcessId, &M) -> bool + Send>;

/// What a [`ChurnWindow`] does to messages routed while it is open.
pub enum Disruption<M> {
    /// Bidirectional partition: messages crossing the cut between `side`
    /// and its complement are dropped. Self-delivery and intra-side traffic
    /// flow normally.
    Partition {
        /// One side of the cut (the other side is the complement).
        side: Vec<ProcessId>,
    },
    /// Total isolation of one process — the sim-side model of a crash (and,
    /// when windows rotate over processes, of a GST that moves because the
    /// timely source rotates). Self-delivery still flows, so the process
    /// keeps running and can be repaired by checkpoints after the window.
    Isolate {
        /// The isolated process.
        process: ProcessId,
    },
    /// Adaptive targeting: drops exactly the messages the host-supplied
    /// predicate selects (given sender, destination, and the message).
    /// The harness builds predicates with full protocol knowledge — e.g.
    /// "traffic from the coordinator of the round this message belongs
    /// to" — which is how an adversary that follows the current champion
    /// is expressed without this crate knowing the message schema.
    Targeted {
        /// Returns true for messages to suppress.
        predicate: DropPredicate<M>,
    },
}

impl<M> std::fmt::Debug for Disruption<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Disruption::Partition { side } => {
                f.debug_struct("Partition").field("side", side).finish()
            }
            Disruption::Isolate { process } => {
                f.debug_struct("Isolate").field("process", process).finish()
            }
            Disruption::Targeted { .. } => f.debug_struct("Targeted").finish_non_exhaustive(),
        }
    }
}

/// One disruption active during `[from, to)` in virtual time.
#[derive(Debug)]
pub struct ChurnWindow<M> {
    /// Window opens (inclusive).
    pub from: VirtualTime,
    /// Window closes (exclusive) — the "heal" instant.
    pub to: VirtualTime,
    /// What the window does.
    pub disruption: Disruption<M>,
}

impl<M> ChurnWindow<M> {
    fn blocks(&mut self, from: ProcessId, to: ProcessId, at: VirtualTime, msg: &M) -> bool {
        if at < self.from || at >= self.to {
            return false;
        }
        match &mut self.disruption {
            Disruption::Partition { side } => {
                from != to && side.contains(&from) != side.contains(&to)
            }
            Disruption::Isolate { process } => from != to && (from == *process || to == *process),
            Disruption::Targeted { predicate } => predicate(from, to, msg),
        }
    }
}

/// A [`ScheduleOracle`] that applies a set of [`ChurnWindow`]s: any message
/// routed while a window blocking it is open is suppressed; everything else
/// follows the channel's sampled default, so outside every window the
/// execution is byte-identical to an oracle-free run.
#[derive(Debug, Default)]
pub struct ChurnOracle<M> {
    windows: Vec<ChurnWindow<M>>,
    dropped: u64,
}

impl<M> ChurnOracle<M> {
    /// An oracle with no windows (drops nothing).
    pub fn new() -> Self {
        ChurnOracle {
            windows: Vec::new(),
            dropped: 0,
        }
    }

    /// Adds a window (builder style).
    pub fn window(mut self, w: ChurnWindow<M>) -> Self {
        self.windows.push(w);
        self
    }

    /// Partition `side` vs the rest during `[from, to)` ticks.
    pub fn partition(self, from: u64, to: u64, side: Vec<ProcessId>) -> Self {
        self.window(ChurnWindow {
            from: VirtualTime::from_ticks(from),
            to: VirtualTime::from_ticks(to),
            disruption: Disruption::Partition { side },
        })
    }

    /// Isolate `process` (crash model) during `[from, to)` ticks.
    pub fn isolate(self, from: u64, to: u64, process: ProcessId) -> Self {
        self.window(ChurnWindow {
            from: VirtualTime::from_ticks(from),
            to: VirtualTime::from_ticks(to),
            disruption: Disruption::Isolate { process },
        })
    }

    /// Drop messages matching `predicate` during `[from, to)` ticks.
    pub fn targeted(
        self,
        from: u64,
        to: u64,
        predicate: impl FnMut(ProcessId, ProcessId, &M) -> bool + Send + 'static,
    ) -> Self {
        self.window(ChurnWindow {
            from: VirtualTime::from_ticks(from),
            to: VirtualTime::from_ticks(to),
            disruption: Disruption::Targeted {
                predicate: Box::new(predicate),
            },
        })
    }

    /// A moving-GST schedule: processes `0..n` take turns being isolated,
    /// each for `span` ticks starting at `start` — operationally, the set
    /// of processes with timely connectivity rotates, so no single round
    /// interval has a stable bisource until the rotation ends.
    pub fn rotating_isolation(mut self, n: usize, start: u64, span: u64) -> Self {
        for p in 0..n {
            let from = start + p as u64 * span;
            self = self.isolate(from, from + span, ProcessId::new(p));
        }
        self
    }

    /// Messages suppressed so far (mirrors the simulator's
    /// `messages_suppressed` metric, readable before the sim is dropped).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured windows (diagnostics).
    pub fn windows(&self) -> &[ChurnWindow<M>] {
        &self.windows
    }
}

impl<M> ScheduleOracle<M> for ChurnOracle<M> {
    fn command(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        at: VirtualTime,
        msg: &M,
        _default: u64,
    ) -> ScheduleCommand {
        for w in &mut self.windows {
            if w.blocks(from, to, at, msg) {
                self.dropped += 1;
                return ScheduleCommand::Drop;
            }
        }
        ScheduleCommand::Default
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn cmd(o: &mut ChurnOracle<u32>, from: usize, to: usize, at: u64) -> ScheduleCommand {
        o.command(p(from), p(to), VirtualTime::from_ticks(at), &0u32, 3)
    }

    #[test]
    fn partition_blocks_only_cut_crossing_traffic_inside_window() {
        let mut o = ChurnOracle::new().partition(100, 200, vec![p(0), p(1)]);
        assert_eq!(cmd(&mut o, 0, 2, 150), ScheduleCommand::Drop, "crosses cut");
        assert_eq!(cmd(&mut o, 2, 1, 150), ScheduleCommand::Drop, "other way");
        assert_eq!(
            cmd(&mut o, 0, 1, 150),
            ScheduleCommand::Default,
            "same side"
        );
        assert_eq!(
            cmd(&mut o, 2, 3, 150),
            ScheduleCommand::Default,
            "same side"
        );
        assert_eq!(cmd(&mut o, 0, 2, 99), ScheduleCommand::Default, "before");
        assert_eq!(cmd(&mut o, 0, 2, 200), ScheduleCommand::Default, "healed");
        assert_eq!(o.dropped(), 2);
    }

    #[test]
    fn isolation_spares_self_delivery() {
        let mut o = ChurnOracle::new().isolate(0, 50, p(1));
        assert_eq!(cmd(&mut o, 1, 0, 10), ScheduleCommand::Drop);
        assert_eq!(cmd(&mut o, 0, 1, 10), ScheduleCommand::Drop);
        assert_eq!(
            cmd(&mut o, 1, 1, 10),
            ScheduleCommand::Default,
            "self flows"
        );
        assert_eq!(cmd(&mut o, 0, 2, 10), ScheduleCommand::Default);
    }

    #[test]
    fn rotation_covers_each_process_in_turn() {
        let mut o = ChurnOracle::new().rotating_isolation(3, 100, 50);
        assert_eq!(cmd(&mut o, 0, 1, 120), ScheduleCommand::Drop, "p0's turn");
        assert_eq!(
            cmd(&mut o, 0, 2, 170),
            ScheduleCommand::Default,
            "p0 healed"
        );
        assert_eq!(cmd(&mut o, 1, 2, 170), ScheduleCommand::Drop, "p1's turn");
        assert_eq!(cmd(&mut o, 2, 0, 220), ScheduleCommand::Drop, "p2's turn");
        assert_eq!(
            cmd(&mut o, 2, 0, 260),
            ScheduleCommand::Default,
            "rotation over"
        );
    }

    #[test]
    fn targeted_predicate_sees_sender_destination_and_message() {
        let mut o =
            ChurnOracle::new().targeted(0, 100, |from, _to, msg: &u32| from == p(2) && *msg == 7);
        assert_eq!(
            o.command(p(2), p(0), VirtualTime::from_ticks(5), &7u32, 3),
            ScheduleCommand::Drop
        );
        assert_eq!(
            o.command(p(2), p(0), VirtualTime::from_ticks(5), &8u32, 3),
            ScheduleCommand::Default
        );
        assert_eq!(
            o.command(p(1), p(0), VirtualTime::from_ticks(5), &7u32, 3),
            ScheduleCommand::Default
        );
    }

    #[test]
    fn empty_oracle_never_drops() {
        let mut o: ChurnOracle<u32> = ChurnOracle::new();
        assert_eq!(cmd(&mut o, 0, 1, 5), ScheduleCommand::Default);
        assert_eq!(o.dropped(), 0);
    }
}
