//! The impersonator: an adversary that violates §2.1's *no-impersonation*
//! assumption on purpose.
//!
//! Every other behavior in this crate is model-legal — the paper simply
//! *assumes* a Byzantine process cannot forge another process's sender
//! identity. Over an in-memory substrate that assumption is free; over TCP
//! it is exactly as strong as the transport makes it. This module supplies
//! the attack that probes it:
//!
//! * [`CaptureNode`] — a silent replica that records every message it
//!   legitimately receives, handing the transcript to out-of-band attack
//!   threads (replaying genuine traffic under a forged identity is the
//!   strongest impersonation: every byte of the body is well-formed);
//! * byte-level forgery helpers ([`forged_hello`], [`tagged_frame`],
//!   [`tampered_frame`]) for building the dialed attack streams.
//!
//! An **unauthenticated** mesh accepts these streams — the E15 experiment
//! demonstrates committed-log divergence from forged checkpoint votes. An
//! **authenticated** mesh must sever every one of them at the MAC check,
//! before the bytes reach the codec.

use std::marker::PhantomData;
use std::sync::{Arc, Mutex};

use minsync_auth::{Authenticator, MAC_LEN};
use minsync_net::{Env, Node};
use minsync_types::ProcessId;
use minsync_wire::Hello;

/// Shared transcript of everything a [`CaptureNode`] has received.
pub type CaptureHandle<M> = Arc<Mutex<Vec<(ProcessId, M)>>>;

/// A replica that participates in nothing but remembers everything: each
/// inbound message is appended (up to a bound) to a shared transcript that
/// attack threads replay under forged identities.
///
/// Like [`SilentNode`](crate::SilentNode) it occupies a fault slot without
/// contributing to quorums, so safety results with a `CaptureNode` rider
/// hold under the paper's fault bound.
#[derive(Debug)]
pub struct CaptureNode<M, O> {
    seen: CaptureHandle<M>,
    cap: usize,
    _out: PhantomData<fn() -> O>,
}

impl<M, O> CaptureNode<M, O> {
    /// A capture node remembering at most `cap` messages (older traffic
    /// wins: the bound is a memory guard, not a sampling policy).
    pub fn new(cap: usize) -> Self {
        CaptureNode {
            seen: Arc::new(Mutex::new(Vec::new())),
            cap,
            _out: PhantomData,
        }
    }

    /// The shared transcript; clone it before moving the node into a
    /// substrate.
    pub fn handle(&self) -> CaptureHandle<M> {
        Arc::clone(&self.seen)
    }
}

impl<M, O> Node for CaptureNode<M, O>
where
    M: Clone + Send + std::fmt::Debug + 'static,
    O: Clone + Send + std::fmt::Debug + 'static,
{
    type Msg = M;
    type Output = O;

    fn on_message(&mut self, from: ProcessId, msg: M, _env: &mut Env<M, O>) {
        let mut seen = self.seen.lock().expect("capture transcript poisoned");
        if seen.len() < self.cap {
            seen.push((from, msg));
        }
    }
}

/// A handshake claiming `claim`'s identity with a zeroed key-confirmation
/// tag — the best a process that does not hold `claim`'s keys can do.
///
/// An unauthenticated mesh accepts this (the tag bytes are ignored); an
/// authenticated one must reject it *before* claiming the sender's
/// connection epoch, so the forgery cannot evict the genuine connection.
pub fn forged_hello(claim: ProcessId, n: u32) -> Vec<u8> {
    Hello::new(claim, n).encode()
}

/// A correctly-framed, correctly-MAC'd frame carrying an **arbitrary**
/// body, built with keys the attacker legitimately holds.
///
/// This is the probe for MAC-then-decode ordering: the tag verifies, so the
/// bytes reach the codec, and an undecodable body must cost the sender a
/// decode-disconnect — never the receiver its process.
pub fn tagged_frame(body: &[u8], auth: &dyn Authenticator, to: ProcessId) -> Vec<u8> {
    let mut frame = Vec::with_capacity(4 + body.len() + MAC_LEN);
    frame.extend_from_slice(&((body.len() + MAC_LEN) as u32).to_le_bytes());
    frame.extend_from_slice(body);
    frame.extend_from_slice(&auth.tag(to, body).0);
    frame
}

/// Like [`tagged_frame`], but with one tag bit flipped: a well-formed frame
/// whose MAC must fail, severing the connection at the authentication check
/// without the body ever reaching the codec.
pub fn tampered_frame(body: &[u8], auth: &dyn Authenticator, to: ProcessId) -> Vec<u8> {
    let mut frame = tagged_frame(body, auth, to);
    let last = frame.len() - 1;
    frame[last] ^= 0x01;
    frame
}

#[cfg(test)]
mod tests {
    use super::*;
    use minsync_auth::HmacAuthenticator;
    use minsync_wire::{split_frame, verify_frame_tag, WireError, DEFAULT_MAX_FRAME};

    fn pair() -> (HmacAuthenticator, HmacAuthenticator) {
        let mut ring = HmacAuthenticator::deal(b"impersonate-test", 4);
        let b = ring.remove(1);
        let a = ring.remove(0);
        (a, b)
    }

    #[test]
    fn tagged_frames_verify_and_tampered_ones_fail() {
        let (attacker, victim) = pair();
        let body = b"not a protocol message at all";
        let good = tagged_frame(body, &attacker, ProcessId::new(1));
        let (payload, used) = split_frame(&good, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(used, good.len());
        let verified = verify_frame_tag(payload, &victim, ProcessId::new(0)).unwrap();
        assert_eq!(verified, body, "valid MAC admits the (garbage) body");

        let bad = tampered_frame(body, &attacker, ProcessId::new(1));
        let (payload, _) = split_frame(&bad, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert!(matches!(
            verify_frame_tag(payload, &victim, ProcessId::new(0)),
            Err(WireError::AuthFailed)
        ));
    }

    #[test]
    fn forged_hello_decodes_but_fails_key_confirmation() {
        let (_, victim) = pair();
        let bytes = forged_hello(ProcessId::new(2), 4);
        let hello = Hello::decode(&mut bytes.as_slice()).unwrap();
        assert_eq!(hello.sender, ProcessId::new(2));
        assert!(!hello.verify_auth(&victim), "zeroed tag must not verify");
    }

    #[test]
    fn capture_node_records_up_to_its_bound() {
        let node: CaptureNode<u64, u64> = CaptureNode::new(2);
        let handle = node.handle();
        let mut node = node;
        let mut env = Env::new(4, 7);
        for v in 0..5u64 {
            node.on_message(ProcessId::new(0), v, &mut env);
        }
        assert_eq!(env.drain().count(), 0, "capture sends nothing");
        let seen = handle.lock().unwrap();
        assert_eq!(seen.len(), 2, "bounded at cap");
        assert_eq!(seen[0], (ProcessId::new(0), 0));
    }
}
