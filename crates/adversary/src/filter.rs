use core::fmt::Debug;

use minsync_net::{Context, Node, TimerId, VirtualTime};
use minsync_types::ProcessId;

/// Boxed per-destination message mutator.
type Mutator<M> = Box<dyn FnMut(ProcessId, &M) -> Option<M> + Send>;

/// Per-destination rewrite of an honest automaton's outgoing messages.
///
/// `FilterNode` runs the wrapped node normally but routes every `send` /
/// `broadcast` through a mutator closure `fn(to, msg) -> Option<msg>`:
/// returning `None` drops the copy, returning a modified message equivocates.
/// Incoming messages, timers, and state are untouched — the node *believes*
/// it is honest, which is exactly how subtle Byzantine behavior looks.
///
/// Outputs of the wrapped node are suppressed by default (a Byzantine
/// process's "decisions" must not pollute experiment reports); see
/// [`FilterNode::keep_outputs`].
///
/// Ready-made mutators live in [`crate::mutators`].
pub struct FilterNode<N: Node> {
    inner: N,
    mutator: Mutator<N::Msg>,
    keep_outputs: bool,
}

impl<N: Node> FilterNode<N> {
    /// Wraps `inner` with `mutator`.
    pub fn new(
        inner: N,
        mutator: impl FnMut(ProcessId, &N::Msg) -> Option<N::Msg> + Send + 'static,
    ) -> Self {
        FilterNode {
            inner,
            mutator: Box::new(mutator),
            keep_outputs: false,
        }
    }

    /// Forward the wrapped node's outputs instead of suppressing them.
    pub fn keep_outputs(mut self) -> Self {
        self.keep_outputs = true;
        self
    }
}

impl<N: Node + Debug> Debug for FilterNode<N> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FilterNode")
            .field("inner", &self.inner)
            .finish()
    }
}

struct FilterCtx<'a, 'b, M, O> {
    outer: &'a mut (dyn Context<M, O> + 'b),
    mutator: &'a mut (dyn FnMut(ProcessId, &M) -> Option<M> + Send),
    keep_outputs: bool,
}

impl<M: Clone, O> Context<M, O> for FilterCtx<'_, '_, M, O> {
    fn me(&self) -> ProcessId {
        self.outer.me()
    }
    fn n(&self) -> usize {
        self.outer.n()
    }
    fn now(&self) -> VirtualTime {
        self.outer.now()
    }
    fn send(&mut self, to: ProcessId, msg: M) {
        if let Some(m) = (self.mutator)(to, &msg) {
            self.outer.send(to, m);
        }
    }
    fn broadcast(&mut self, msg: M) {
        // A Byzantine "broadcast" is n independent sends: each copy can be
        // dropped or rewritten per destination.
        for i in 0..self.outer.n() {
            self.send(ProcessId::new(i), msg.clone());
        }
    }
    fn set_timer(&mut self, delay: u64) -> TimerId {
        self.outer.set_timer(delay)
    }
    fn cancel_timer(&mut self, timer: TimerId) {
        self.outer.cancel_timer(timer);
    }
    fn output(&mut self, event: O) {
        if self.keep_outputs {
            self.outer.output(event);
        }
    }
    fn halt(&mut self) {
        self.outer.halt();
    }
    fn random(&mut self) -> u64 {
        self.outer.random()
    }
}

impl<N: Node> Node for FilterNode<N> {
    type Msg = N::Msg;
    type Output = N::Output;

    fn on_start(&mut self, ctx: &mut dyn Context<N::Msg, N::Output>) {
        let mut shim = FilterCtx {
            outer: ctx,
            mutator: self.mutator.as_mut(),
            keep_outputs: self.keep_outputs,
        };
        self.inner.on_start(&mut shim);
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: N::Msg,
        ctx: &mut dyn Context<N::Msg, N::Output>,
    ) {
        let mut shim = FilterCtx {
            outer: ctx,
            mutator: self.mutator.as_mut(),
            keep_outputs: self.keep_outputs,
        };
        self.inner.on_message(from, msg, &mut shim);
    }

    fn on_timer(&mut self, timer: TimerId, ctx: &mut dyn Context<N::Msg, N::Output>) {
        let mut shim = FilterCtx {
            outer: ctx,
            mutator: self.mutator.as_mut(),
            keep_outputs: self.keep_outputs,
        };
        self.inner.on_timer(timer, &mut shim);
    }

    fn label(&self) -> &'static str {
        "byz-filter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minsync_net::sim::SimBuilder;
    use minsync_net::NetworkTopology;

    #[derive(Debug)]
    struct Broadcaster;

    impl Node for Broadcaster {
        type Msg = u32;
        type Output = u32;

        fn on_start(&mut self, ctx: &mut dyn Context<u32, u32>) {
            ctx.broadcast(7);
        }

        fn on_message(&mut self, _from: ProcessId, msg: u32, ctx: &mut dyn Context<u32, u32>) {
            ctx.output(msg);
        }
    }

    #[test]
    fn mutator_equivocates_per_destination() {
        // p1 broadcasts 7 but the filter turns even destinations' copies
        // into 100 + index.
        let byz = FilterNode::new(Broadcaster, |to: ProcessId, msg: &u32| {
            if to.index().is_multiple_of(2) {
                Some(100 + to.index() as u32)
            } else {
                Some(*msg)
            }
        });
        let mut sim = SimBuilder::new(NetworkTopology::all_timely(3, 1))
            .node(byz)
            .node(Broadcaster)
            .node(Broadcaster)
            .build();
        let report = sim.run();
        let p2_got: Vec<u32> = report
            .outputs_of(ProcessId::new(1))
            .map(|o| o.event)
            .collect();
        let p3_got: Vec<u32> = report
            .outputs_of(ProcessId::new(2))
            .map(|o| o.event)
            .collect();
        assert!(p2_got.contains(&7), "odd destination saw the true value");
        assert!(
            p3_got.contains(&102),
            "even destination saw the forged value"
        );
    }

    #[test]
    fn mutator_can_drop_messages() {
        let byz = FilterNode::new(Broadcaster, |_to: ProcessId, _msg: &u32| None);
        let mut sim = SimBuilder::new(NetworkTopology::all_timely(2, 1))
            .node(byz)
            .node(Broadcaster)
            .build();
        let report = sim.run();
        assert_eq!(report.metrics.sent_by_process(ProcessId::new(0)), 0);
    }

    #[test]
    fn outputs_suppressed_unless_kept() {
        let byz = FilterNode::new(Broadcaster, |_t: ProcessId, m: &u32| Some(*m));
        let mut sim = SimBuilder::new(NetworkTopology::all_timely(2, 1))
            .node(byz)
            .node(Broadcaster)
            .build();
        let report = sim.run();
        assert_eq!(report.outputs_of(ProcessId::new(0)).count(), 0);

        let byz = FilterNode::new(Broadcaster, |_t: ProcessId, m: &u32| Some(*m)).keep_outputs();
        let mut sim = SimBuilder::new(NetworkTopology::all_timely(2, 1))
            .node(byz)
            .node(Broadcaster)
            .build();
        let report = sim.run();
        assert!(report.outputs_of(ProcessId::new(0)).count() > 0);
    }
}
