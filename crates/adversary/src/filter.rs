use core::fmt::Debug;

use minsync_net::{Effect, Env, Node, TimerId};
use minsync_types::ProcessId;

/// Boxed per-destination message mutator.
type Mutator<M> = Box<dyn FnMut(ProcessId, &M) -> Option<M> + Send>;

/// Per-destination rewrite of an honest automaton's *effect stream*.
///
/// `FilterNode` runs the wrapped node normally, then intercepts everything
/// it queued since the handler began ([`Env::mark`] / [`Env::take_since`])
/// and rewrites it: each [`Effect::Send`] goes through a mutator closure
/// `fn(to, msg) -> Option<msg>` (returning `None` drops the copy, returning
/// a modified message equivocates), and each [`Effect::Broadcast`] is first
/// split into `n` per-destination sends so every copy can be dropped or
/// forged independently — a Byzantine "broadcast" is exactly that. Timer
/// effects pass through untouched; incoming messages and state are
/// unmodified — the node *believes* it is honest, which is exactly how
/// subtle Byzantine behavior looks.
///
/// Outputs of the wrapped node are suppressed by default (a Byzantine
/// process's "decisions" must not pollute experiment reports); see
/// [`FilterNode::keep_outputs`].
///
/// Ready-made mutators live in [`crate::mutators`].
pub struct FilterNode<N: Node> {
    inner: N,
    mutator: Mutator<N::Msg>,
    keep_outputs: bool,
}

impl<N: Node> FilterNode<N> {
    /// Wraps `inner` with `mutator`.
    pub fn new(
        inner: N,
        mutator: impl FnMut(ProcessId, &N::Msg) -> Option<N::Msg> + Send + 'static,
    ) -> Self {
        FilterNode {
            inner,
            mutator: Box::new(mutator),
            keep_outputs: false,
        }
    }

    /// Forward the wrapped node's outputs instead of suppressing them.
    pub fn keep_outputs(mut self) -> Self {
        self.keep_outputs = true;
        self
    }

    /// Rewrites every effect the inner handler queued since `mark`.
    fn rewrite(&mut self, env: &mut Env<N::Msg, N::Output>, mark: usize) {
        let n = env.n();
        for effect in env.take_since(mark) {
            match effect {
                Effect::Send { to, msg } => {
                    if let Some(m) = (self.mutator)(to, &msg) {
                        env.send(to, m);
                    }
                }
                Effect::Broadcast { msg } => {
                    // Split the fan-out: each copy is independently
                    // droppable/forgeable per destination.
                    for i in 0..n {
                        let to = ProcessId::new(i);
                        if let Some(m) = (self.mutator)(to, &msg) {
                            env.send(to, m);
                        }
                    }
                }
                Effect::Output(event) => {
                    if self.keep_outputs {
                        env.output(event);
                    }
                }
                other => env.push(other),
            }
        }
    }
}

impl<N: Node + Debug> Debug for FilterNode<N> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FilterNode")
            .field("inner", &self.inner)
            .finish()
    }
}

impl<N: Node> Node for FilterNode<N> {
    type Msg = N::Msg;
    type Output = N::Output;

    fn on_start(&mut self, env: &mut Env<N::Msg, N::Output>) {
        let mark = env.mark();
        self.inner.on_start(env);
        self.rewrite(env, mark);
    }

    fn on_message(&mut self, from: ProcessId, msg: N::Msg, env: &mut Env<N::Msg, N::Output>) {
        let mark = env.mark();
        self.inner.on_message(from, msg, env);
        self.rewrite(env, mark);
    }

    fn on_timer(&mut self, timer: TimerId, env: &mut Env<N::Msg, N::Output>) {
        let mark = env.mark();
        self.inner.on_timer(timer, env);
        self.rewrite(env, mark);
    }

    fn label(&self) -> &'static str {
        "byz-filter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minsync_net::sim::SimBuilder;
    use minsync_net::NetworkTopology;

    #[derive(Debug)]
    struct Broadcaster;

    impl Node for Broadcaster {
        type Msg = u32;
        type Output = u32;

        fn on_start(&mut self, env: &mut Env<u32, u32>) {
            env.broadcast(7);
        }

        fn on_message(&mut self, _from: ProcessId, msg: u32, env: &mut Env<u32, u32>) {
            env.output(msg);
        }
    }

    #[test]
    fn mutator_equivocates_per_destination() {
        // p1 broadcasts 7 but the filter turns even destinations' copies
        // into 100 + index.
        let byz = FilterNode::new(Broadcaster, |to: ProcessId, msg: &u32| {
            if to.index().is_multiple_of(2) {
                Some(100 + to.index() as u32)
            } else {
                Some(*msg)
            }
        });
        let mut sim = SimBuilder::new(NetworkTopology::all_timely(3, 1))
            .node(byz)
            .node(Broadcaster)
            .node(Broadcaster)
            .build();
        let report = sim.run();
        let p2_got: Vec<u32> = report
            .outputs_of(ProcessId::new(1))
            .map(|o| o.event)
            .collect();
        let p3_got: Vec<u32> = report
            .outputs_of(ProcessId::new(2))
            .map(|o| o.event)
            .collect();
        assert!(p2_got.contains(&7), "odd destination saw the true value");
        assert!(
            p3_got.contains(&102),
            "even destination saw the forged value"
        );
    }

    #[test]
    fn mutator_can_drop_messages() {
        let byz = FilterNode::new(Broadcaster, |_to: ProcessId, _msg: &u32| None);
        let mut sim = SimBuilder::new(NetworkTopology::all_timely(2, 1))
            .node(byz)
            .node(Broadcaster)
            .build();
        let report = sim.run();
        assert_eq!(report.metrics.sent_by_process(ProcessId::new(0)), 0);
    }

    #[test]
    fn outputs_suppressed_unless_kept() {
        let byz = FilterNode::new(Broadcaster, |_t: ProcessId, m: &u32| Some(*m));
        let mut sim = SimBuilder::new(NetworkTopology::all_timely(2, 1))
            .node(byz)
            .node(Broadcaster)
            .build();
        let report = sim.run();
        assert_eq!(report.outputs_of(ProcessId::new(0)).count(), 0);

        let byz = FilterNode::new(Broadcaster, |_t: ProcessId, m: &u32| Some(*m)).keep_outputs();
        let mut sim = SimBuilder::new(NetworkTopology::all_timely(2, 1))
            .node(byz)
            .node(Broadcaster)
            .build();
        let report = sim.run();
        assert!(report.outputs_of(ProcessId::new(0)).count() > 0);
    }

    /// The rewrite only touches effects queued by the wrapped node — a
    /// stream prefix queued by an enclosing adapter is left alone.
    #[test]
    fn rewrite_respects_the_mark() {
        let mut env: Env<u32, u32> = Env::new(2, 0);
        env.send(ProcessId::new(0), 99); // queued "before" the handler
        let mut byz = FilterNode::new(Broadcaster, |_t: ProcessId, _m: &u32| None);
        byz.on_start(&mut env);
        let effects: Vec<_> = env.drain().collect();
        // The prefix survived; the broadcast was dropped entirely.
        assert_eq!(
            effects,
            [Effect::Send {
                to: ProcessId::new(0),
                msg: 99
            }]
        );
    }
}
