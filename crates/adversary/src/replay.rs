use core::fmt::Debug;
use core::marker::PhantomData;
use std::collections::VecDeque;

use minsync_net::{Context, Node};
use minsync_types::ProcessId;

/// A Byzantine process that records every message it receives and replays
/// them later — to the original pattern's victims or to fresh ones.
///
/// Replay attacks every first-message-only rule of §2.1 at once: the RB
/// engine's per-sender dedup, the EA object's per-sender prop2/relay
/// dedup, and the decide counting. Because the network stamps the *true*
/// sender, a replayed copy arrives as a duplicate from this process — the
/// protocols must treat it as noise.
pub struct ReplayNode<M, O> {
    /// Recorded messages pending replay.
    buffer: VecDeque<M>,
    /// Replay each recorded message after this many further receipts.
    lag: usize,
    since_last: usize,
    max_buffer: usize,
    _output: PhantomData<fn() -> O>,
}

impl<M, O> ReplayNode<M, O> {
    /// Creates a replayer that re-sends each recorded message after `lag`
    /// further receipts (buffer capped at 4096 messages).
    pub fn new(lag: usize) -> Self {
        ReplayNode {
            buffer: VecDeque::new(),
            lag: lag.max(1),
            since_last: 0,
            max_buffer: 4096,
            _output: PhantomData,
        }
    }
}

impl<M, O> Debug for ReplayNode<M, O> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ReplayNode")
            .field("buffered", &self.buffer.len())
            .field("lag", &self.lag)
            .finish()
    }
}

impl<M, O> Node for ReplayNode<M, O>
where
    M: Clone + Debug + Send + 'static,
    O: Clone + Debug + Send + 'static,
{
    type Msg = M;
    type Output = O;

    fn on_message(&mut self, from: ProcessId, msg: M, ctx: &mut dyn Context<M, O>) {
        if from == ctx.me() {
            return; // own replays loop back; don't re-record them
        }
        if self.buffer.len() < self.max_buffer {
            self.buffer.push_back(msg);
        }
        self.since_last += 1;
        if self.since_last >= self.lag {
            self.since_last = 0;
            if let Some(replay) = self.buffer.pop_front() {
                // Replay to a pseudo-random victim (never itself).
                let mut target = ProcessId::new((ctx.random() as usize) % ctx.n());
                if target == ctx.me() {
                    target = ProcessId::new((target.index() + 1) % ctx.n());
                }
                ctx.send(target, replay);
            }
        }
    }

    fn label(&self) -> &'static str {
        "byz-replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minsync_net::sim::SimBuilder;
    use minsync_net::NetworkTopology;

    #[derive(Debug)]
    struct Talker;
    impl Node for Talker {
        type Msg = u32;
        type Output = u32;
        fn on_start(&mut self, ctx: &mut dyn Context<u32, u32>) {
            ctx.broadcast(7);
        }
        fn on_message(&mut self, _f: ProcessId, m: u32, ctx: &mut dyn Context<u32, u32>) {
            ctx.output(m);
        }
    }

    #[test]
    fn replayer_resends_observed_messages() {
        let mut sim = SimBuilder::new(NetworkTopology::all_timely(3, 1))
            .seed(3)
            .node(Talker)
            .node(Talker)
            .node(ReplayNode::<u32, u32>::new(1))
            .max_events(10_000)
            .build();
        let report = sim.run();
        // The replayer received 2 broadcasts and replayed each once.
        assert!(report.metrics.sent_by_process(ProcessId::new(2)) >= 1);
        assert!(report.metrics.sent_by_process(ProcessId::new(2)) <= 4);
    }

    #[test]
    fn replayer_never_explodes() {
        // Replay lag 1 with chatty peers must not loop unboundedly: the
        // replayer ignores its own loop-backs and pops one per receipt.
        let mut sim = SimBuilder::new(NetworkTopology::all_timely(2, 1))
            .seed(5)
            .node(Talker)
            .node(ReplayNode::<u32, u32>::new(1))
            .max_events(10_000)
            .build();
        let report = sim.run();
        assert!(
            report.metrics.events_processed < 10_000,
            "replayer must quiesce, got {} events",
            report.metrics.events_processed
        );
    }
}
