use core::fmt::Debug;
use core::marker::PhantomData;
use std::collections::VecDeque;

use minsync_net::sim::EffectRecord;
use minsync_net::{Effect, Env, Node, TimerId};
use minsync_types::ProcessId;

/// A Byzantine process that records every message it receives and replays
/// them later — to the original pattern's victims or to fresh ones.
///
/// Replay attacks every first-message-only rule of §2.1 at once: the RB
/// engine's per-sender dedup, the EA object's per-sender prop2/relay
/// dedup, and the decide counting. Because the network stamps the *true*
/// sender, a replayed copy arrives as a duplicate from this process — the
/// protocols must treat it as noise.
pub struct ReplayNode<M, O> {
    /// Recorded messages pending replay.
    buffer: VecDeque<M>,
    /// Replay each recorded message after this many further receipts.
    lag: usize,
    since_last: usize,
    max_buffer: usize,
    _output: PhantomData<fn() -> O>,
}

impl<M, O> ReplayNode<M, O> {
    /// Creates a replayer that re-sends each recorded message after `lag`
    /// further receipts (buffer capped at 4096 messages).
    pub fn new(lag: usize) -> Self {
        ReplayNode {
            buffer: VecDeque::new(),
            lag: lag.max(1),
            since_last: 0,
            max_buffer: 4096,
            _output: PhantomData,
        }
    }
}

impl<M, O> Debug for ReplayNode<M, O> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ReplayNode")
            .field("buffered", &self.buffer.len())
            .field("lag", &self.lag)
            .finish()
    }
}

impl<M, O> Node for ReplayNode<M, O>
where
    M: Clone + Debug + Send + 'static,
    O: Clone + Debug + Send + 'static,
{
    type Msg = M;
    type Output = O;

    fn on_message(&mut self, from: ProcessId, msg: M, env: &mut Env<M, O>) {
        if from == env.me() {
            return; // own replays loop back; don't re-record them
        }
        if self.buffer.len() < self.max_buffer {
            self.buffer.push_back(msg);
        }
        self.since_last += 1;
        if self.since_last >= self.lag {
            self.since_last = 0;
            if let Some(replay) = self.buffer.pop_front() {
                // Replay to a pseudo-random victim (never itself).
                let mut target = ProcessId::new((env.random() as usize) % env.n());
                if target == env.me() {
                    target = ProcessId::new((target.index() + 1) % env.n());
                }
                env.send(target, replay);
            }
        }
    }

    fn label(&self) -> &'static str {
        "byz-replay"
    }
}

/// A node that replays a recorded per-invocation effect stream verbatim —
/// the perfect mimic.
///
/// Build one per process from a full effect trace recorded with
/// [`minsync_net::sim::SimBuilder::record_effects`]. Run the same topology
/// and seed with `ScriptedNode`s in every slot and the execution reproduces
/// the original byte-for-byte: every handler invocation pops the next
/// recorded effect batch and queues it unchanged, so the same messages are
/// sent at the same instants, the same timers fire, and the same outputs
/// appear. The effect-trace digests of the two runs are equal.
///
/// As a Byzantine behavior this is the strongest replay adversary the
/// model admits: a process that perfectly mimics an observed honest
/// execution (without being able to forge its identity).
pub struct ScriptedNode<M, O> {
    script: VecDeque<Vec<Effect<M, O>>>,
}

impl<M: Clone, O: Clone> ScriptedNode<M, O> {
    /// Extracts process `p`'s invocation script from a recorded trace.
    pub fn from_trace(trace: &[EffectRecord<M, O>], p: ProcessId) -> Self {
        ScriptedNode {
            script: trace
                .iter()
                .filter(|r| r.process == p)
                .map(|r| r.effects.clone())
                .collect(),
        }
    }

    /// Remaining scripted invocations.
    pub fn remaining(&self) -> usize {
        self.script.len()
    }

    fn replay_next(&mut self, env: &mut Env<M, O>) {
        if let Some(effects) = self.script.pop_front() {
            for effect in effects {
                env.push(effect);
            }
        }
    }
}

impl<M, O> Debug for ScriptedNode<M, O> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ScriptedNode")
            .field("remaining", &self.script.len())
            .finish()
    }
}

impl<M, O> Node for ScriptedNode<M, O>
where
    M: Clone + Debug + Send + 'static,
    O: Clone + Debug + Send + 'static,
{
    type Msg = M;
    type Output = O;

    fn on_start(&mut self, env: &mut Env<M, O>) {
        self.replay_next(env);
    }

    fn on_message(&mut self, _from: ProcessId, _msg: M, env: &mut Env<M, O>) {
        self.replay_next(env);
    }

    fn on_timer(&mut self, _timer: TimerId, env: &mut Env<M, O>) {
        self.replay_next(env);
    }

    fn label(&self) -> &'static str {
        "byz-scripted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minsync_net::sim::SimBuilder;
    use minsync_net::NetworkTopology;

    #[derive(Debug)]
    struct Talker;
    impl Node for Talker {
        type Msg = u32;
        type Output = u32;
        fn on_start(&mut self, env: &mut Env<u32, u32>) {
            env.broadcast(7);
        }
        fn on_message(&mut self, _f: ProcessId, m: u32, env: &mut Env<u32, u32>) {
            env.output(m);
        }
    }

    #[test]
    fn replayer_resends_observed_messages() {
        let mut sim = SimBuilder::new(NetworkTopology::all_timely(3, 1))
            .seed(3)
            .node(Talker)
            .node(Talker)
            .node(ReplayNode::<u32, u32>::new(1))
            .max_events(10_000)
            .build();
        let report = sim.run();
        // The replayer received 2 broadcasts and replayed each once.
        assert!(report.metrics.sent_by_process(ProcessId::new(2)) >= 1);
        assert!(report.metrics.sent_by_process(ProcessId::new(2)) <= 4);
    }

    /// Recording a run and re-running it with ScriptedNodes in every slot
    /// reproduces the execution byte-for-byte (equal trace digests).
    #[test]
    fn scripted_nodes_replay_byte_identically() {
        use minsync_net::{ChannelTiming, DelayLaw};

        /// Broadcasts on a timer, echoes what it hears — exercises sends,
        /// broadcasts, timers, outputs, and halt in one automaton.
        #[derive(Debug)]
        struct Busy {
            heard: u32,
        }
        impl Node for Busy {
            type Msg = u32;
            type Output = u32;
            fn on_start(&mut self, env: &mut Env<u32, u32>) {
                let _ = env.set_timer(3 + env.me().index() as u64);
            }
            fn on_timer(&mut self, _t: TimerId, env: &mut Env<u32, u32>) {
                env.broadcast(env.me().index() as u32);
            }
            fn on_message(&mut self, from: ProcessId, msg: u32, env: &mut Env<u32, u32>) {
                self.heard += 1;
                env.output(msg);
                if self.heard < 4 && from != env.me() {
                    env.send(from, msg + 10);
                } else if self.heard >= 6 {
                    env.halt();
                }
            }
        }

        let topo = NetworkTopology::uniform(
            3,
            ChannelTiming::asynchronous(DelayLaw::Uniform { min: 1, max: 20 }),
        );
        let mut original = SimBuilder::new(topo.clone())
            .seed(11)
            .node(Busy { heard: 0 })
            .node(Busy { heard: 0 })
            .node(Busy { heard: 0 })
            .record_effects(usize::MAX)
            .build();
        let report = original.run();
        let trace = original.effect_trace().to_vec();
        assert!(!trace.is_empty());

        // Same topology and seed, every slot a ScriptedNode.
        let mut replayed = SimBuilder::new(topo).seed(11).record_effects(usize::MAX);
        for p in 0..3 {
            replayed = replayed.node(ScriptedNode::from_trace(&trace, ProcessId::new(p)));
        }
        let mut replayed = replayed.build();
        let replay_report = replayed.run();

        assert_eq!(
            original.effect_trace_digest(),
            replayed.effect_trace_digest(),
            "replay must be byte-identical"
        );
        assert_eq!(original.effect_trace(), replayed.effect_trace());
        assert_eq!(
            report.metrics.messages_sent,
            replay_report.metrics.messages_sent
        );
        assert_eq!(report.final_time, replay_report.final_time);
        for p in 0..3 {
            let scripted = replayed.node(ProcessId::new(p));
            assert_eq!(scripted.label(), "byz-scripted");
        }
    }

    #[test]
    fn replayer_never_explodes() {
        // Replay lag 1 with chatty peers must not loop unboundedly: the
        // replayer ignores its own loop-backs and pops one per receipt.
        let mut sim = SimBuilder::new(NetworkTopology::all_timely(2, 1))
            .seed(5)
            .node(Talker)
            .node(ReplayNode::<u32, u32>::new(1))
            .max_events(10_000)
            .build();
        let report = sim.run();
        assert!(
            report.metrics.events_processed < 10_000,
            "replayer must quiesce, got {} events",
            report.metrics.events_processed
        );
    }
}
