use core::fmt::Debug;
use core::marker::PhantomData;

use minsync_net::{Env, Node, TimerId, VirtualTime};
use minsync_types::ProcessId;

/// A Byzantine process that never sends anything — indistinguishable from a
/// crashed process, and the canonical way to occupy `t` fault slots in
/// liveness experiments (every `n − t` quorum wait must succeed without it).
pub struct SilentNode<M, O>(PhantomData<fn() -> (M, O)>);

impl<M, O> SilentNode<M, O> {
    /// Creates a silent node.
    pub fn new() -> Self {
        SilentNode(PhantomData)
    }
}

impl<M, O> Default for SilentNode<M, O> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M, O> Debug for SilentNode<M, O> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("SilentNode")
    }
}

impl<M, O> Node for SilentNode<M, O>
where
    M: Clone + Debug + Send + 'static,
    O: Clone + Debug + Send + 'static,
{
    type Msg = M;
    type Output = O;

    fn on_message(&mut self, _from: ProcessId, _msg: M, _ctx: &mut Env<M, O>) {}

    fn label(&self) -> &'static str {
        "byz-silent"
    }
}

/// Wraps an honest automaton and stops it cold at `crash_at`: afterwards
/// every handler is a no-op, mid-protocol, exactly like a crash failure.
///
/// Because the wrapped node behaved correctly until the crash, this tests
/// the protocols against the paper's footnote 4: "even if, up to now, a
/// process behaved correctly, it may crash in the future and become then
/// faulty".
pub struct CrashNode<N> {
    inner: N,
    crash_at: VirtualTime,
}

impl<N> CrashNode<N> {
    /// Wraps `inner`, killing it at `crash_at` (checked before every
    /// handler invocation).
    pub fn new(inner: N, crash_at: VirtualTime) -> Self {
        CrashNode { inner, crash_at }
    }
}

impl<N: Debug> Debug for CrashNode<N> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CrashNode")
            .field("inner", &self.inner)
            .field("crash_at", &self.crash_at)
            .finish()
    }
}

impl<N: Node> Node for CrashNode<N> {
    type Msg = N::Msg;
    type Output = N::Output;

    fn on_start(&mut self, env: &mut Env<N::Msg, N::Output>) {
        if env.now() < self.crash_at {
            self.inner.on_start(env);
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: N::Msg, env: &mut Env<N::Msg, N::Output>) {
        if env.now() < self.crash_at {
            self.inner.on_message(from, msg, env);
        }
    }

    fn on_timer(&mut self, timer: TimerId, env: &mut Env<N::Msg, N::Output>) {
        if env.now() < self.crash_at {
            self.inner.on_timer(timer, env);
        }
    }

    fn label(&self) -> &'static str {
        "byz-crash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minsync_net::sim::SimBuilder;
    use minsync_net::NetworkTopology;

    /// Counts received messages; replies to each.
    #[derive(Debug)]
    struct Chatty {
        received: u32,
    }

    impl Node for Chatty {
        type Msg = u32;
        type Output = u32;

        fn on_start(&mut self, env: &mut Env<u32, u32>) {
            env.broadcast(0);
        }

        fn on_message(&mut self, from: ProcessId, msg: u32, env: &mut Env<u32, u32>) {
            self.received += 1;
            env.output(msg);
            if msg < 3 && from != env.me() {
                env.send(from, msg + 1);
            }
        }
    }

    #[test]
    fn silent_node_sends_nothing() {
        let mut sim = SimBuilder::new(NetworkTopology::all_timely(2, 1))
            .node(Chatty { received: 0 })
            .node(SilentNode::<u32, u32>::new())
            .build();
        let report = sim.run();
        // Only the chatty node's initial broadcast (2 copies) ever flows.
        assert_eq!(report.metrics.sent_by_process(ProcessId::new(1)), 0);
        assert_eq!(report.metrics.sent_by_process(ProcessId::new(0)), 2);
    }

    #[test]
    fn crash_node_behaves_then_dies() {
        // δ = 10 per hop; crash at t = 15 allows exactly the start broadcast
        // and the first reply hop.
        let crashing = CrashNode::new(Chatty { received: 0 }, VirtualTime::from_ticks(15));
        let mut sim = SimBuilder::new(NetworkTopology::all_timely(2, 10))
            .node(Chatty { received: 0 })
            .node(crashing)
            .build();
        let report = sim.run();
        // The crashed node emitted its start broadcast (2 msgs) and one
        // reply at t = 10 (its own loopback at t=10 also arrives pre-crash,
        // triggering a reply only for from != me).
        let crashed_outputs: Vec<_> = report.outputs_of(ProcessId::new(1)).collect();
        assert!(!crashed_outputs.is_empty(), "behaved before the crash");
        assert!(
            crashed_outputs
                .iter()
                .all(|o| o.time < VirtualTime::from_ticks(15)),
            "no activity after the crash: {crashed_outputs:?}"
        );
    }

    #[test]
    fn crash_at_zero_is_born_dead() {
        let crashing = CrashNode::new(Chatty { received: 0 }, VirtualTime::ZERO);
        let mut sim = SimBuilder::new(NetworkTopology::all_timely(2, 10))
            .node(Chatty { received: 0 })
            .node(crashing)
            .build();
        let report = sim.run();
        assert_eq!(report.metrics.sent_by_process(ProcessId::new(1)), 0);
    }
}
