use core::fmt::Debug;
use core::marker::PhantomData;

use minsync_net::{Env, Node, TimerId};
use minsync_types::ProcessId;

/// A Byzantine flooder: on a timer loop it broadcasts bursts of messages
/// produced by a caller-supplied generator — the canonical memory-pressure
/// attack against any protocol that buffers traffic it cannot process yet
/// (future log slots, future rounds, …).
///
/// The generator receives a running message counter, so a flood can sweep
/// slot or round numbers (e.g. far-future SMR slots) instead of repeating
/// one message. The flood stops after `rounds` bursts so simulations still
/// quiesce; pick `rounds` large enough to outlast the honest execution
/// under test.
///
/// ```rust
/// use minsync_adversary::FloodNode;
///
/// // Burst 8 junk u32 messages every 5 ticks, 100 times over.
/// let _flood: FloodNode<u32, (), _> = FloodNode::new(5, 8, 100, |i| i as u32);
/// ```
pub struct FloodNode<M, O, F> {
    interval: u64,
    burst: usize,
    rounds: u64,
    fired: u64,
    sent: u64,
    make: F,
    _marker: PhantomData<fn() -> (M, O)>,
}

impl<M, O, F> FloodNode<M, O, F>
where
    F: FnMut(u64) -> M + Send,
{
    /// Creates a flooder that broadcasts `burst` generated messages every
    /// `interval` ticks, `rounds` times, starting immediately at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `interval == 0` or `burst == 0`.
    pub fn new(interval: u64, burst: usize, rounds: u64, make: F) -> Self {
        assert!(interval > 0, "a zero interval would jam the event queue");
        assert!(burst > 0, "an empty burst floods nothing");
        FloodNode {
            interval,
            burst,
            rounds,
            fired: 0,
            sent: 0,
            make,
            _marker: PhantomData,
        }
    }

    fn burst_now(&mut self, env: &mut Env<M, O>) {
        for _ in 0..self.burst {
            let msg = (self.make)(self.sent);
            self.sent += 1;
            env.broadcast(msg);
        }
    }
}

impl<M, O, F> Debug for FloodNode<M, O, F> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FloodNode")
            .field("interval", &self.interval)
            .field("burst", &self.burst)
            .field("rounds", &self.rounds)
            .field("sent", &self.sent)
            .finish()
    }
}

impl<M, O, F> Node for FloodNode<M, O, F>
where
    M: Clone + Debug + Send + 'static,
    O: Clone + Debug + Send + 'static,
    F: FnMut(u64) -> M + Send,
{
    type Msg = M;
    type Output = O;

    fn on_start(&mut self, env: &mut Env<M, O>) {
        if self.rounds == 0 {
            return;
        }
        self.fired = 1;
        self.burst_now(env);
        if self.fired < self.rounds {
            env.set_timer(self.interval);
        }
    }

    fn on_message(&mut self, _from: ProcessId, _msg: M, _env: &mut Env<M, O>) {
        // Deaf to the protocol: the flood is unconditional.
    }

    fn on_timer(&mut self, _timer: TimerId, env: &mut Env<M, O>) {
        self.fired += 1;
        self.burst_now(env);
        if self.fired < self.rounds {
            env.set_timer(self.interval);
        }
    }

    fn label(&self) -> &'static str {
        "byz-flood"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minsync_net::sim::SimBuilder;
    use minsync_net::NetworkTopology;

    /// Counts what it receives.
    #[derive(Debug)]
    struct Counter;
    impl Node for Counter {
        type Msg = u32;
        type Output = u32;
        fn on_message(&mut self, _: ProcessId, msg: u32, env: &mut Env<u32, u32>) {
            env.output(msg);
        }
    }

    #[test]
    fn flood_emits_rounds_times_burst_messages() {
        let mut sim = SimBuilder::new(NetworkTopology::all_timely(2, 1))
            .node(Counter)
            .node(FloodNode::<u32, u32, _>::new(3, 4, 5, |i| i as u32))
            .build();
        let report = sim.run();
        // 5 bursts × 4 messages × 2 destinations (broadcast fan-out).
        assert_eq!(report.metrics.messages_sent, 40);
        // The generator saw a running counter.
        let got: Vec<u32> = report
            .outputs_of(ProcessId::new(0))
            .map(|o| o.event)
            .collect();
        assert_eq!(got, (0..20).collect::<Vec<u32>>());
        // And the run quiesced (the flood is finite).
        assert_eq!(report.reason, minsync_net::sim::StopReason::Quiescent);
    }

    #[test]
    fn zero_rounds_is_silent() {
        let mut sim = SimBuilder::new(NetworkTopology::all_timely(2, 1))
            .node(Counter)
            .node(FloodNode::<u32, u32, _>::new(1, 1, 0, |i| i as u32))
            .build();
        let report = sim.run();
        assert_eq!(report.metrics.messages_sent, 0);
    }

    #[test]
    #[should_panic(expected = "zero interval")]
    fn zero_interval_rejected() {
        let _ = FloodNode::<u32, u32, _>::new(0, 1, 1, |i| i as u32);
    }
}
