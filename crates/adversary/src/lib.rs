//! Byzantine process behaviors and adversarial network schedulers for the
//! `minsync` stack.
//!
//! The paper's failure model (Section 2.1) lets up to `t` processes behave
//! arbitrarily — crash, stay silent, send conflicting or garbage messages,
//! collude — but they can neither impersonate other processes nor control
//! the network schedule. This crate provides that adversary:
//!
//! * [`SilentNode`] — sends nothing, ever (the strongest *liveness* attack a
//!   single process can mount against quorum waits);
//! * [`CrashNode`] — wraps an honest automaton and kills it at a chosen
//!   virtual time (Byzantine subsumes crash);
//! * [`FloodNode`] — broadcasts timed bursts of generated garbage (the
//!   memory-pressure attack against future-slot/future-round buffers);
//! * [`FilterNode`] — wraps an honest automaton and rewrites/drops/redirects
//!   its *outgoing* messages per destination: the building block for
//!   equivocators, mute coordinators, and value-splitting colluders (see
//!   [`mutators`]);
//! * [`RandomProtocolNode`] — a protocol-aware fuzzer emitting syntactically
//!   valid but semantically hostile [`ProtocolMsg`] traffic;
//! * [`ReplayNode`] — records and replays observed messages, attacking every
//!   first-message-only dedup rule of §2.1 at once;
//! * [`CaptureNode`] and the [`impersonate`] forgery helpers — the one
//!   deliberately model-**illegal** behavior: it forges other processes'
//!   sender identities at the byte level, probing the assumption the others
//!   take for granted (an authenticated transport must sever it);
//! * [`ScriptedNode`] — replays a recorded effect trace verbatim (the
//!   perfect mimic), reproducing a simulated execution byte-for-byte from
//!   a [`minsync_net::sim::SimBuilder::record_effects`] recording;
//! * [`oracles`] — delay oracles for the simulator's
//!   [`DelayOracle`](minsync_net::sim::DelayOracle) hook, which schedule the
//!   channels the model leaves asynchronous as adversarially as the model
//!   allows;
//! * [`churn`] — time-windowed dynamic faults (partitions that heal,
//!   isolation that models crash/restart, rotating-GST schedules, adaptive
//!   targeting) for the [`ScheduleOracle`](minsync_net::sim::ScheduleOracle)
//!   seam, driving the liveness-under-churn scenarios of experiment E13.
//!
//! With one flagged exception ([`impersonate`]), everything here is
//! *model-legal*: safety properties of the protocols must hold against any
//! combination of these behaviors, and the test suites assert exactly that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
mod filter;
mod flood;
pub mod impersonate;
pub mod mutators;
pub mod oracles;
mod random_node;
mod replay;
mod silent;

pub use churn::{ChurnOracle, ChurnWindow, Disruption};
pub use filter::FilterNode;
pub use flood::FloodNode;
pub use impersonate::{CaptureHandle, CaptureNode};
pub use random_node::RandomProtocolNode;
pub use replay::{ReplayNode, ScriptedNode};
pub use silent::{CrashNode, SilentNode};

// Re-exported for mutator signatures.
pub use minsync_core::ProtocolMsg;
