use core::fmt::Debug;
use core::marker::PhantomData;

use minsync_broadcast::RbMsg;
use minsync_core::{CbId, ProtocolMsg, RbTag};
use minsync_net::{Env, Node};
use minsync_types::{ProcessId, Round, Value};

/// A protocol-aware fuzzer: on every received message it emits a burst of
/// syntactically valid, semantically hostile [`ProtocolMsg`] traffic —
/// random RB inits/echoes/readies with forged origins, fake coordinator
/// championships, `⊥` and non-`⊥` relays — drawn from a value pool and a
/// bounded round window around the traffic it observes.
///
/// Safety test suites run the honest protocols against this node: no
/// interleaving of its output may break agreement, validity, or RB unicity.
/// (Note the network still stamps the *true* sender, so "forged origins"
/// inside `Echo`/`Ready` payloads are exactly what a real Byzantine process
/// could attempt.)
pub struct RandomProtocolNode<V, O> {
    pool: Vec<V>,
    burst: usize,
    round_window: u64,
    last_seen_round: u64,
    _output: PhantomData<fn() -> O>,
}

impl<V: Value, O> RandomProtocolNode<V, O> {
    /// Creates a fuzzer drawing values from `pool`, sending `burst` random
    /// messages per stimulus.
    ///
    /// # Panics
    ///
    /// Panics if `pool` is empty.
    pub fn new(pool: Vec<V>, burst: usize) -> Self {
        assert!(!pool.is_empty(), "fuzzer needs a non-empty value pool");
        RandomProtocolNode {
            pool,
            burst,
            round_window: 3,
            last_seen_round: 1,
            _output: PhantomData,
        }
    }

    fn random_value(&self, roll: u64) -> V {
        self.pool[(roll as usize) % self.pool.len()].clone()
    }

    fn random_round(&self, roll: u64) -> Round {
        let lo = self.last_seen_round.saturating_sub(1).max(1);
        Round::new(lo + roll % self.round_window)
    }

    fn random_msg(&self, env: &mut Env<ProtocolMsg<V>, O>) -> ProtocolMsg<V> {
        let kind = env.random() % 8;
        let value = self.random_value(env.random());
        let round = self.random_round(env.random());
        let origin = ProcessId::new((env.random() as usize) % env.n());
        let tag = match env.random() % 4 {
            0 => RbTag::CbVal(CbId::ConsValid),
            1 => RbTag::CbVal(CbId::AcProp(round)),
            2 => RbTag::CbVal(CbId::EaProp(round)),
            _ => RbTag::AcEst(round),
        };
        match kind {
            0 => ProtocolMsg::Rb(RbMsg::Init { tag, value }),
            1 => ProtocolMsg::Rb(RbMsg::Echo { origin, tag, value }),
            2 => ProtocolMsg::Rb(RbMsg::Ready { origin, tag, value }),
            3 => ProtocolMsg::Rb(RbMsg::Ready {
                origin,
                tag: RbTag::Decide,
                value,
            }),
            4 => ProtocolMsg::EaProp2 { round, value },
            5 => ProtocolMsg::EaCoord { round, value },
            6 => ProtocolMsg::EaRelay {
                round,
                value: Some(value),
            },
            _ => ProtocolMsg::EaRelay { round, value: None },
        }
    }

    fn burst(&mut self, env: &mut Env<ProtocolMsg<V>, O>) {
        let me = env.me();
        for _ in 0..self.burst {
            let msg = self.random_msg(env);
            let mut target = ProcessId::new((env.random() as usize) % env.n());
            if target == me {
                // Spamming oneself only re-triggers this handler; aim at a
                // real victim instead.
                target = ProcessId::new((target.index() + 1) % env.n());
            }
            env.send(target, msg);
        }
    }
}

impl<V: Value, O> Debug for RandomProtocolNode<V, O> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RandomProtocolNode")
            .field("pool", &self.pool)
            .field("burst", &self.burst)
            .finish()
    }
}

impl<V: Value, O> Node for RandomProtocolNode<V, O>
where
    O: Clone + Debug + Send + 'static,
{
    type Msg = ProtocolMsg<V>;
    type Output = O;

    fn on_start(&mut self, env: &mut Env<ProtocolMsg<V>, O>) {
        self.burst(env);
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: ProtocolMsg<V>,
        env: &mut Env<ProtocolMsg<V>, O>,
    ) {
        if from == env.me() {
            return; // never amplify own noise into an infinite loop
        }
        // Track the round frontier so the junk stays relevant.
        let seen = match &msg {
            ProtocolMsg::EaProp2 { round, .. }
            | ProtocolMsg::EaCoord { round, .. }
            | ProtocolMsg::EaRelay { round, .. } => Some(round.get()),
            ProtocolMsg::Rb(RbMsg::Init {
                tag: RbTag::AcEst(r),
                ..
            }) => Some(r.get()),
            _ => None,
        };
        if let Some(r) = seen {
            self.last_seen_round = self.last_seen_round.max(r);
        }
        self.burst(env);
    }

    fn label(&self) -> &'static str {
        "byz-fuzzer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minsync_net::sim::SimBuilder;
    use minsync_net::NetworkTopology;

    #[derive(Debug)]
    struct Sink;
    impl Node for Sink {
        type Msg = ProtocolMsg<u64>;
        type Output = u8;
        fn on_message(
            &mut self,
            _: ProcessId,
            _: ProtocolMsg<u64>,
            _: &mut Env<ProtocolMsg<u64>, u8>,
        ) {
        }
    }

    #[test]
    fn fuzzer_emits_bounded_bursts() {
        let mut sim = SimBuilder::new(NetworkTopology::all_timely(3, 1))
            .seed(5)
            .node(RandomProtocolNode::<u64, u8>::new(vec![1, 2, 3], 4))
            .node(Sink)
            .node(Sink)
            .max_events(1_000)
            .build();
        let report = sim.run();
        // Start burst only (sinks never reply): exactly 4 messages.
        assert_eq!(report.metrics.sent_by_process(ProcessId::new(0)), 4);
    }

    #[test]
    #[should_panic(expected = "non-empty value pool")]
    fn empty_pool_rejected() {
        let _ = RandomProtocolNode::<u64, u8>::new(vec![], 4);
    }
}
