//! Adversarial delay oracles for the simulator's
//! [`DelayOracle`] hook.
//!
//! These control *when* messages arrive on the channels the model leaves
//! asynchronous — the other half of the adversary. They cannot violate
//! (eventually-)timely bounds: the simulator clamps oracle-chosen delays on
//! stabilized channels to the paper's `max(τ, τ′) + δ` rule.

use minsync_core::ProtocolMsg;
use minsync_net::sim::DelayOracle;
use minsync_net::VirtualTime;
use minsync_types::{ProcessId, Value};

/// Stretches every asynchronous delay to a fixed large value — the
/// "maximally slow but still reliable" network. With no bisource this
/// starves every timer-based mechanism; with one, Lemma 3 must still go
/// through, which is exactly what experiment E3 checks.
#[derive(Clone, Debug)]
pub struct UniformSlowOracle {
    /// Delay applied to every asynchronous message.
    pub delay: u64,
}

impl<M> DelayOracle<M> for UniformSlowOracle {
    fn delay(
        &mut self,
        _from: ProcessId,
        _to: ProcessId,
        _at: VirtualTime,
        _msg: &M,
        _default: u64,
    ) -> u64 {
        self.delay
    }
}

/// Delays only the messages of the given kinds (per
/// [`ProtocolMsg::kind`]), letting everything else flow at the channel's
/// sampled default. `EA_COORD` + `EA_RELAY` with a delay just above the
/// timeout curve is the sharpest attack on the EA object's coordinator
/// phase that the model permits.
#[derive(Clone, Debug)]
pub struct KindTargetedOracle {
    /// Message kinds to slow down (e.g. `"EA_COORD"`).
    pub kinds: Vec<&'static str>,
    /// Delay for targeted kinds.
    pub delay: u64,
}

impl<V: Value> DelayOracle<ProtocolMsg<V>> for KindTargetedOracle {
    fn delay(
        &mut self,
        _from: ProcessId,
        _to: ProcessId,
        _at: VirtualTime,
        msg: &ProtocolMsg<V>,
        default: u64,
    ) -> u64 {
        if self.kinds.contains(&msg.kind()) {
            self.delay
        } else {
            default
        }
    }
}

/// Isolates a victim process: everything *to or from* it crawls at
/// `delay`, everything else is fast. Against a correct protocol the victim
/// must still decide (it reaches no quorum itself, but RB-Termination-2
/// eventually carries the decision to it).
#[derive(Clone, Debug)]
pub struct IsolateProcessOracle {
    /// The victim.
    pub victim: ProcessId,
    /// Delay for the victim's traffic.
    pub delay: u64,
}

impl<M> DelayOracle<M> for IsolateProcessOracle {
    fn delay(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        _at: VirtualTime,
        _msg: &M,
        default: u64,
    ) -> u64 {
        if from == self.victim || to == self.victim {
            self.delay
        } else {
            default
        }
    }
}

/// The strongest model-legal network adversary against the consensus
/// stack, for binary (0/1) value domains: it works to keep the system
/// split so that *only* the bisource's timely channels can ever unify it.
///
/// Three rules (all delays finite, all (eventually-)timely bounds still
/// enforced by the simulator):
///
/// 1. **Aux splitting** — reliable-broadcast traffic of the CB instances
///    (`CB_VAL(ConsValid)`, `CB_VAL(EaProp)`, `CB_VAL(AcProp)`) and of
///    `AC_EST` carrying value `v` is slowed by `split_extra` toward destinations
///    whose parity differs from `v`. Every process therefore validates and
///    witnesses its "own" value first: EA's line-4 fast path never fires
///    unanimously across the system and adopt-commit's MFA keeps returning
///    each side's own value — the split persists.
/// 2. **Coordinator starvation** — `EA_COORD` and `EA_RELAY` on
///    asynchronous channels crawl at `coord_relay_delay`, so relays beat
///    timers only where the model *guarantees* timeliness.
/// 3. Everything else flows at the channel's sampled default.
///
/// Against this adversary, termination is exactly the paper's Lemma 3
/// story: a round coordinated by the bisource, after stabilization, with
/// `X⁺ ⊆ F(r)` and timeouts above `2δ`. Experiments E3/E5/E6/E8 use it to
/// surface the round-complexity structure that benign schedules hide.
#[derive(Clone, Debug)]
pub struct SplitBrainOracle {
    /// Extra delay for cross-parity value traffic (rule 1).
    pub split_extra: u64,
    /// Delay for `EA_COORD` on async channels (rule 2).
    pub coord_delay: u64,
    /// Delay for non-⊥ `EA_RELAY` (witnessing relays crawl…).
    pub value_relay_delay: u64,
    /// Delay for `⊥` relays (…while suspicion spreads fast, so relay
    /// quorums fill with ⊥ wherever the model allows it).
    pub bottom_relay_delay: u64,
    /// When the round schedule is known, witness relays *from `F(r)`
    /// members* get this extra delay on top of `value_relay_delay`: line 7
    /// only accepts non-⊥ relays from `F(r)`, so the sharpest adversary
    /// makes exactly those the slowest. Convergence then genuinely requires
    /// the `X⁺ ⊆ F(r)` alignment the §5.4 bounds count.
    pub f_member_relay_extra: u64,
    /// The schedule used for the F-membership rule (None disables it).
    pub schedule: Option<minsync_types::RoundSchedule>,
}

impl Default for SplitBrainOracle {
    fn default() -> Self {
        SplitBrainOracle {
            split_extra: 60,
            coord_delay: 1_000,
            value_relay_delay: 1_000,
            bottom_relay_delay: 100,
            f_member_relay_extra: 500,
            schedule: None,
        }
    }
}

impl SplitBrainOracle {
    /// Default tuning plus schedule awareness (the F-membership rule).
    pub fn with_schedule(schedule: minsync_types::RoundSchedule) -> Self {
        SplitBrainOracle {
            schedule: Some(schedule),
            ..Default::default()
        }
    }
}

impl DelayOracle<ProtocolMsg<u64>> for SplitBrainOracle {
    fn delay(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        _at: VirtualTime,
        msg: &ProtocolMsg<u64>,
        default: u64,
    ) -> u64 {
        use minsync_broadcast::RbMsg;
        use minsync_core::{CbId, RbTag};
        match msg {
            ProtocolMsg::EaCoord { .. } => self.coord_delay,
            ProtocolMsg::EaRelay {
                round,
                value: Some(_),
            } => {
                let from_f = self
                    .schedule
                    .as_ref()
                    .is_some_and(|s| s.f_set(*round).contains(&from));
                if from_f {
                    self.value_relay_delay + self.f_member_relay_extra
                } else {
                    self.value_relay_delay
                }
            }
            ProtocolMsg::EaRelay { value: None, .. } => self.bottom_relay_delay,
            // Cross-parity EA_PROP2 is slowed too: otherwise a coordinator
            // can champion another parity's proposal (arriving before its
            // own CB instance resolves) and flip itself through its
            // always-timely self-channel relay.
            ProtocolMsg::EaProp2 { value, .. } if (to.index() % 2) as u64 != *value % 2 => {
                default + self.split_extra
            }
            ProtocolMsg::Rb(rb) => {
                let (tag, value) = match rb {
                    RbMsg::Init { tag, value }
                    | RbMsg::Echo { tag, value, .. }
                    | RbMsg::Ready { tag, value, .. } => (tag, value),
                };
                let splittable = matches!(
                    tag,
                    RbTag::CbVal(CbId::ConsValid)
                        | RbTag::CbVal(CbId::EaProp(_))
                        | RbTag::CbVal(CbId::AcProp(_))
                        | RbTag::AcEst(_)
                );
                if splittable && (to.index() % 2) as u64 != *value % 2 {
                    default + self.split_extra
                } else {
                    default
                }
            }
            _ => default,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_slow_returns_constant() {
        let mut o = UniformSlowOracle { delay: 500 };
        let d = DelayOracle::<u32>::delay(
            &mut o,
            ProcessId::new(0),
            ProcessId::new(1),
            VirtualTime::ZERO,
            &1u32,
            3,
        );
        assert_eq!(d, 500);
    }

    #[test]
    fn kind_targeted_hits_only_selected_kinds() {
        let mut o = KindTargetedOracle {
            kinds: vec!["EA_COORD"],
            delay: 900,
        };
        let coord: ProtocolMsg<u64> = ProtocolMsg::EaCoord {
            round: minsync_types::Round::FIRST,
            value: 1,
        };
        let relay: ProtocolMsg<u64> = ProtocolMsg::EaRelay {
            round: minsync_types::Round::FIRST,
            value: None,
        };
        assert_eq!(
            o.delay(
                ProcessId::new(0),
                ProcessId::new(1),
                VirtualTime::ZERO,
                &coord,
                3
            ),
            900
        );
        assert_eq!(
            o.delay(
                ProcessId::new(0),
                ProcessId::new(1),
                VirtualTime::ZERO,
                &relay,
                3
            ),
            3
        );
    }

    #[test]
    fn isolation_targets_victim_traffic_both_ways() {
        let mut o = IsolateProcessOracle {
            victim: ProcessId::new(2),
            delay: 777,
        };
        let d1 = DelayOracle::<u32>::delay(
            &mut o,
            ProcessId::new(2),
            ProcessId::new(0),
            VirtualTime::ZERO,
            &1u32,
            3,
        );
        let d2 = DelayOracle::<u32>::delay(
            &mut o,
            ProcessId::new(1),
            ProcessId::new(2),
            VirtualTime::ZERO,
            &1u32,
            3,
        );
        let d3 = DelayOracle::<u32>::delay(
            &mut o,
            ProcessId::new(0),
            ProcessId::new(1),
            VirtualTime::ZERO,
            &1u32,
            3,
        );
        assert_eq!((d1, d2, d3), (777, 777, 3));
    }

    #[test]
    fn split_brain_slows_cross_parity_cb_traffic() {
        use minsync_broadcast::RbMsg;
        use minsync_core::{CbId, RbTag};
        use minsync_types::Round;
        let mut o = SplitBrainOracle::default();
        let msg: ProtocolMsg<u64> = ProtocolMsg::Rb(RbMsg::Init {
            tag: RbTag::CbVal(CbId::EaProp(Round::FIRST)),
            value: 1,
        });
        // Value 1 toward an even process: slowed.
        let d_even = o.delay(
            ProcessId::new(3),
            ProcessId::new(0),
            VirtualTime::ZERO,
            &msg,
            5,
        );
        // Value 1 toward an odd process: default.
        let d_odd = o.delay(
            ProcessId::new(3),
            ProcessId::new(1),
            VirtualTime::ZERO,
            &msg,
            5,
        );
        assert_eq!((d_even, d_odd), (65, 5));
    }

    #[test]
    fn split_brain_leaves_decide_alone() {
        use minsync_broadcast::RbMsg;
        use minsync_core::RbTag;
        let mut o = SplitBrainOracle::default();
        let msg: ProtocolMsg<u64> = ProtocolMsg::Rb(RbMsg::Init {
            tag: RbTag::Decide,
            value: 1,
        });
        let d = o.delay(
            ProcessId::new(3),
            ProcessId::new(0),
            VirtualTime::ZERO,
            &msg,
            5,
        );
        assert_eq!(d, 5, "DECIDE traffic must not be split");
    }

    #[test]
    fn split_brain_starves_coordinator_traffic() {
        let mut o = SplitBrainOracle::default();
        let msg: ProtocolMsg<u64> = ProtocolMsg::EaCoord {
            round: minsync_types::Round::FIRST,
            value: 0,
        };
        let d = o.delay(
            ProcessId::new(0),
            ProcessId::new(1),
            VirtualTime::ZERO,
            &msg,
            5,
        );
        assert_eq!(d, 1_000);
        let witness: ProtocolMsg<u64> = ProtocolMsg::EaRelay {
            round: minsync_types::Round::FIRST,
            value: Some(0),
        };
        let suspect: ProtocolMsg<u64> = ProtocolMsg::EaRelay {
            round: minsync_types::Round::FIRST,
            value: None,
        };
        let dw = o.delay(
            ProcessId::new(0),
            ProcessId::new(1),
            VirtualTime::ZERO,
            &witness,
            5,
        );
        let db = o.delay(
            ProcessId::new(0),
            ProcessId::new(1),
            VirtualTime::ZERO,
            &suspect,
            5,
        );
        assert!(dw > db, "witness relays must crawl behind ⊥ relays");
    }
}
