//! Consensus (Figure 4) under every adversary in the library: termination,
//! agreement, and validity must survive `t` Byzantine processes plus
//! adversarial asynchronous scheduling.

use minsync_adversary::{mutators, oracles, FilterNode, RandomProtocolNode, SilentNode};
use minsync_core::{ConsensusConfig, ConsensusEvent, ConsensusNode, ProtocolMsg};
use minsync_net::sim::{RunReport, SimBuilder};
use minsync_net::{ChannelTiming, DelayLaw, NetworkTopology, VirtualTime};
use minsync_types::{BisourceSpec, ProcessId, SystemConfig};

type Msg = ProtocolMsg<u64>;
type Out = ConsensusEvent<u64>;
type BoxedNode = Box<dyn minsync_net::Node<Msg = Msg, Output = Out>>;

fn consensus(cfg: ConsensusConfig, v: u64) -> BoxedNode {
    Box::new(ConsensusNode::new(cfg, v).unwrap())
}

fn decisions(report: &RunReport<Out>, correct: &[usize]) -> Vec<(usize, u64)> {
    report
        .outputs
        .iter()
        .filter(|o| correct.contains(&o.process.index()))
        .filter_map(|o| o.event.as_decision().map(|v| (o.process.index(), *v)))
        .collect()
}

fn run_to_decisions(
    topo: NetworkTopology,
    nodes: Vec<BoxedNode>,
    correct: Vec<usize>,
    seed: u64,
) -> (Vec<(usize, u64)>, RunReport<Out>) {
    let need = correct.len();
    let mut builder = SimBuilder::new(topo).seed(seed).max_events(3_000_000);
    for n in nodes {
        builder = builder.boxed_node(n);
    }
    let mut sim = builder.build();
    let correct_for_pred = correct.clone();
    let report = sim.run_until(move |outs| {
        outs.iter()
            .filter(|o| correct_for_pred.contains(&o.process.index()))
            .filter(|o| o.event.as_decision().is_some())
            .count()
            == need
    });
    (decisions(&report, &correct), report)
}

fn assert_agreement_validity(d: &[(usize, u64)], proposed: &[u64], n_correct: usize) {
    assert_eq!(d.len(), n_correct, "termination violated: {d:?}");
    let v = d[0].1;
    assert!(d.iter().all(|&(_, x)| x == v), "agreement violated: {d:?}");
    assert!(
        proposed.contains(&v),
        "validity violated: decided {v}, proposed {proposed:?}"
    );
}

#[test]
fn survives_silent_byzantine() {
    let system = SystemConfig::new(4, 1).unwrap();
    let cfg = ConsensusConfig::paper(system);
    for seed in 0..5 {
        let nodes: Vec<BoxedNode> = vec![
            consensus(cfg, 8),
            consensus(cfg, 9),
            consensus(cfg, 8),
            Box::new(SilentNode::<Msg, Out>::new()),
        ];
        let (d, _) = run_to_decisions(
            NetworkTopology::all_timely(4, 3),
            nodes,
            vec![0, 1, 2],
            seed,
        );
        assert_agreement_validity(&d, &[8, 9], 3);
    }
}

#[test]
fn survives_two_silent_in_seven() {
    let system = SystemConfig::new(7, 2).unwrap();
    let cfg = ConsensusConfig::paper(system);
    let nodes: Vec<BoxedNode> = vec![
        consensus(cfg, 1),
        consensus(cfg, 2),
        consensus(cfg, 1),
        consensus(cfg, 2),
        consensus(cfg, 1),
        Box::new(SilentNode::<Msg, Out>::new()),
        Box::new(SilentNode::<Msg, Out>::new()),
    ];
    let (d, _) = run_to_decisions(
        NetworkTopology::all_timely(7, 2),
        nodes,
        vec![0, 1, 2, 3, 4],
        11,
    );
    assert_agreement_validity(&d, &[1, 2], 5);
}

#[test]
fn survives_proposal_equivocator() {
    let system = SystemConfig::new(4, 1).unwrap();
    let cfg = ConsensusConfig::paper(system);
    for seed in 0..5 {
        // The equivocator "honestly" runs consensus but its initial
        // CB_VAL(ConsValid) INIT claims 100 to half and 200 to the rest.
        let byz = FilterNode::new(
            ConsensusNode::new(cfg, 100u64).unwrap(),
            mutators::equivocate_proposal::<u64>(4, 100, 200),
        );
        let nodes: Vec<BoxedNode> = vec![
            consensus(cfg, 5),
            consensus(cfg, 6),
            consensus(cfg, 5),
            Box::new(byz),
        ];
        let (d, _) = run_to_decisions(
            NetworkTopology::all_timely(4, 3),
            nodes,
            vec![0, 1, 2],
            seed,
        );
        // 100/200 must never be decided: neither can gather an RB echo
        // quorum as a single instance value... (they can actually: RB
        // echo quorum counts one value; equivocation means *at most one*
        // of them completes). Correct decisions must come from {5, 6} ∪
        // {the one equivocated value that completed}: the AC output-domain
        // property only allows values CB-validated as correct-process
        // proposals — 100/200 have a single (Byzantine) proposer, so
        // cb_valid never admits them.
        assert_agreement_validity(&d, &[5, 6], 3);
    }
}

#[test]
fn survives_mute_coordinator() {
    let system = SystemConfig::new(4, 1).unwrap();
    let cfg = ConsensusConfig::paper(system);
    // p1 coordinates rounds 1, 5, 9, …; muting it forces the ⊥-relay path
    // in those rounds.
    let byz = FilterNode::new(
        ConsensusNode::new(cfg, 7u64).unwrap(),
        mutators::mute_coordinator::<u64>(),
    );
    let nodes: Vec<BoxedNode> = vec![
        Box::new(byz),
        consensus(cfg, 7),
        consensus(cfg, 9),
        consensus(cfg, 9),
    ];
    let (d, _) = run_to_decisions(NetworkTopology::all_timely(4, 3), nodes, vec![1, 2, 3], 2);
    assert_agreement_validity(&d, &[7, 9], 3);
}

#[test]
fn survives_split_coordinator() {
    let system = SystemConfig::new(4, 1).unwrap();
    let cfg = ConsensusConfig::paper(system);
    for seed in 0..5 {
        let byz = FilterNode::new(
            ConsensusNode::new(cfg, 3u64).unwrap(),
            mutators::split_coordinator::<u64>(4, 3, 4),
        );
        let nodes: Vec<BoxedNode> = vec![
            Box::new(byz),
            consensus(cfg, 3),
            consensus(cfg, 4),
            consensus(cfg, 3),
        ];
        let (d, _) = run_to_decisions(
            NetworkTopology::all_timely(4, 3),
            nodes,
            vec![1, 2, 3],
            seed,
        );
        assert_agreement_validity(&d, &[3, 4], 3);
    }
}

#[test]
fn survives_rb_support_withholder() {
    let system = SystemConfig::new(4, 1).unwrap();
    let cfg = ConsensusConfig::paper(system);
    let byz = FilterNode::new(
        ConsensusNode::new(cfg, 1u64).unwrap(),
        mutators::withhold_rb_support::<u64>(),
    );
    let nodes: Vec<BoxedNode> = vec![
        consensus(cfg, 1),
        Box::new(byz),
        consensus(cfg, 2),
        consensus(cfg, 2),
    ];
    let (d, _) = run_to_decisions(NetworkTopology::all_timely(4, 3), nodes, vec![0, 2, 3], 4);
    assert_agreement_validity(&d, &[1, 2], 3);
}

#[test]
fn safety_holds_under_fuzzer() {
    // The fuzzer only *adds* messages; every wait is on distinct-sender
    // counts, so junk can pollute witnesses but never block progress.
    // Safety and termination must both hold.
    let system = SystemConfig::new(4, 1).unwrap();
    let cfg = ConsensusConfig::paper(system);
    for seed in 0..8 {
        let nodes: Vec<BoxedNode> = vec![
            consensus(cfg, 5),
            consensus(cfg, 6),
            consensus(cfg, 6),
            Box::new(RandomProtocolNode::<u64, Out>::new(vec![5, 6, 77, 99], 3)),
        ];
        let (d, _) = run_to_decisions(
            NetworkTopology::all_timely(4, 3),
            nodes,
            vec![0, 1, 2],
            seed,
        );
        assert_agreement_validity(&d, &[5, 6], 3);
    }
}

#[test]
fn terminates_with_bisource_despite_adversarial_async_noise() {
    // Background channels asynchronous and adversarially slowed; only the
    // bisource's channels stabilize. The paper's headline claim: this is
    // enough.
    let system = SystemConfig::new(4, 1).unwrap();
    let cfg = ConsensusConfig::paper(system);
    let spec = BisourceSpec::symmetric(&system, ProcessId::new(1), system.plurality()).unwrap();
    let topo = NetworkTopology::uniform(
        4,
        ChannelTiming::asynchronous(DelayLaw::Uniform { min: 5, max: 60 }),
    )
    .with_bisource(&spec, VirtualTime::from_ticks(40), 4);
    let nodes: Vec<BoxedNode> = vec![
        consensus(cfg, 1),
        consensus(cfg, 2),
        consensus(cfg, 1),
        Box::new(SilentNode::<Msg, Out>::new()),
    ];
    let need = 3;
    let mut builder = SimBuilder::new(topo).seed(9).max_events(3_000_000);
    for n in nodes {
        builder = builder.boxed_node(n);
    }
    // Adversary stretches EA_COORD / EA_RELAY on asynchronous channels.
    let mut sim = builder
        .delay_oracle(oracles::KindTargetedOracle {
            kinds: vec!["EA_COORD", "EA_RELAY"],
            delay: 300,
        })
        .build();
    let report = sim.run_until(move |outs| {
        outs.iter()
            .filter(|o| o.process.index() < 3)
            .filter(|o| o.event.as_decision().is_some())
            .count()
            == need
    });
    let d = decisions(&report, &[0, 1, 2]);
    assert_agreement_validity(&d, &[1, 2], 3);
}

#[test]
fn isolated_victim_still_decides() {
    let system = SystemConfig::new(4, 1).unwrap();
    let cfg = ConsensusConfig::paper(system);
    let topo = NetworkTopology::uniform(4, ChannelTiming::asynchronous(DelayLaw::Fixed(2)));
    let nodes: Vec<BoxedNode> = vec![
        consensus(cfg, 1),
        consensus(cfg, 1),
        consensus(cfg, 2),
        consensus(cfg, 2),
    ];
    let mut builder = SimBuilder::new(topo).seed(13).max_events(3_000_000);
    for n in nodes {
        builder = builder.boxed_node(n);
    }
    let mut sim = builder
        .delay_oracle(oracles::IsolateProcessOracle {
            victim: ProcessId::new(3),
            delay: 500,
        })
        .build();
    let report = sim.run_until(|outs| {
        outs.iter()
            .filter(|o| o.event.as_decision().is_some())
            .count()
            == 4
    });
    let d = decisions(&report, &[0, 1, 2, 3]);
    assert_agreement_validity(&d, &[1, 2], 4);
}

#[test]
fn survives_replay_attack() {
    use minsync_adversary::ReplayNode;
    let system = SystemConfig::new(4, 1).unwrap();
    let cfg = ConsensusConfig::paper(system);
    for seed in 0..5 {
        let nodes: Vec<BoxedNode> = vec![
            consensus(cfg, 5),
            consensus(cfg, 6),
            consensus(cfg, 5),
            Box::new(ReplayNode::<Msg, Out>::new(2)),
        ];
        let (d, _) = run_to_decisions(
            NetworkTopology::all_timely(4, 3),
            nodes,
            vec![0, 1, 2],
            seed,
        );
        assert_agreement_validity(&d, &[5, 6], 3);
    }
}
