//! Wire messages of the consensus stack.
//!
//! Everything reliable rides inside [`RbMsg`] instances keyed by [`RbTag`];
//! the eventual-agreement object's plain (best-effort) broadcasts —
//! `EA_PROP2`, `EA_COORD`, `EA_RELAY` of Figure 3 — travel outside RB,
//! exactly as in the paper (footnote 2 explains why `EA_PROP2` is *not*
//! reliable: the coordinator logic of lines 11–14 consumes the raw
//! messages).

use minsync_broadcast::RbMsg;
use minsync_types::Round;

/// Identifies a cooperative-broadcast instance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CbId {
    /// `CB[0]` of Figure 4 — the initial `VALID(v_i)` exchange.
    ConsValid,
    /// The CB instance inside round `r`'s adopt-commit object (Figure 2
    /// line 1, `AC_PROP`).
    AcProp(Round),
    /// The CB instance inside round `r` of the EA object (Figure 3 line 1,
    /// `EA_PROP1`).
    EaProp(Round),
}

/// Tags multiplexing every reliable-broadcast use onto one [`RbEngine`]
/// (instances are keyed `(origin, RbTag)`).
///
/// [`RbEngine`]: minsync_broadcast::RbEngine
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RbTag {
    /// `CB_VAL` of some CB instance (Figure 1 line 1).
    CbVal(CbId),
    /// `AC_EST` of round `r`'s adopt-commit object (Figure 2 line 2).
    AcEst(Round),
    /// `DECIDE` (Figure 4 line 7). One instance per process: a correct
    /// process RB-broadcasts `DECIDE` at most once (its committed estimate
    /// can never change afterwards — see the CONS-Agreement proof).
    Decide,
}

/// Top-level protocol message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProtocolMsg<V> {
    /// Reliable-broadcast traffic (`CB_VAL`, `AC_EST`, `DECIDE`).
    Rb(RbMsg<RbTag, V>),
    /// Figure 3 line 2: best-effort broadcast of the CB-validated value.
    EaProp2 {
        /// EA round.
        round: Round,
        /// The `aux_i` value.
        value: V,
    },
    /// Figure 3 line 13: the round coordinator champions a value.
    EaCoord {
        /// EA round.
        round: Round,
        /// Championed value `w`.
        value: V,
    },
    /// Figure 3 line 18: relay of the coordinator's value, or `None` (the
    /// paper's `⊥`) if the relaying process's timer expired first.
    EaRelay {
        /// EA round.
        round: Round,
        /// `Some(v)` = witnessed the coordinator's value; `None` = suspect.
        value: Option<V>,
    },
}

impl<V> ProtocolMsg<V> {
    /// Classifier for per-kind message metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            ProtocolMsg::Rb(rb) => match rb {
                RbMsg::Init { tag, .. } => Self::tag_kind(tag, "INIT"),
                RbMsg::Echo { tag, .. } => Self::tag_kind(tag, "ECHO"),
                RbMsg::Ready { tag, .. } => Self::tag_kind(tag, "READY"),
            },
            ProtocolMsg::EaProp2 { .. } => "EA_PROP2",
            ProtocolMsg::EaCoord { .. } => "EA_COORD",
            ProtocolMsg::EaRelay { .. } => "EA_RELAY",
        }
    }

    fn tag_kind(tag: &RbTag, phase: &'static str) -> &'static str {
        match (tag, phase) {
            (RbTag::CbVal(_), "INIT") => "CB_VAL/INIT",
            (RbTag::CbVal(_), "ECHO") => "CB_VAL/ECHO",
            (RbTag::CbVal(_), "READY") => "CB_VAL/READY",
            (RbTag::AcEst(_), "INIT") => "AC_EST/INIT",
            (RbTag::AcEst(_), "ECHO") => "AC_EST/ECHO",
            (RbTag::AcEst(_), "READY") => "AC_EST/READY",
            (RbTag::Decide, "INIT") => "DECIDE/INIT",
            (RbTag::Decide, "ECHO") => "DECIDE/ECHO",
            (RbTag::Decide, "READY") => "DECIDE/READY",
            _ => unreachable!("phase is one of INIT/ECHO/READY"),
        }
    }

    /// Free-function form of [`ProtocolMsg::kind`] usable as a `fn` pointer
    /// for the simulator's classifier hook.
    pub fn classify(msg: &ProtocolMsg<V>) -> &'static str {
        msg.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minsync_types::ProcessId;

    #[test]
    fn kinds_cover_all_variants() {
        let r = Round::FIRST;
        let m: ProtocolMsg<u64> = ProtocolMsg::Rb(RbMsg::Init {
            tag: RbTag::CbVal(CbId::ConsValid),
            value: 1,
        });
        assert_eq!(m.kind(), "CB_VAL/INIT");
        let m: ProtocolMsg<u64> = ProtocolMsg::Rb(RbMsg::Echo {
            origin: ProcessId::new(0),
            tag: RbTag::AcEst(r),
            value: 1,
        });
        assert_eq!(m.kind(), "AC_EST/ECHO");
        let m: ProtocolMsg<u64> = ProtocolMsg::Rb(RbMsg::Ready {
            origin: ProcessId::new(0),
            tag: RbTag::Decide,
            value: 1,
        });
        assert_eq!(m.kind(), "DECIDE/READY");
        assert_eq!(
            ProtocolMsg::<u64>::EaProp2 { round: r, value: 1 }.kind(),
            "EA_PROP2"
        );
        assert_eq!(
            ProtocolMsg::<u64>::EaCoord { round: r, value: 1 }.kind(),
            "EA_COORD"
        );
        assert_eq!(
            ProtocolMsg::<u64>::EaRelay {
                round: r,
                value: None
            }
            .kind(),
            "EA_RELAY"
        );
    }

    #[test]
    fn rb_tags_order_and_compare() {
        // Needed for BTreeMap keys.
        let a = RbTag::CbVal(CbId::AcProp(Round::new(1)));
        let b = RbTag::CbVal(CbId::AcProp(Round::new(2)));
        assert!(a < b);
        assert_ne!(RbTag::Decide, RbTag::AcEst(Round::FIRST));
    }
}
