//! The view synchronizer: round advancement + round-timer ownership,
//! extracted from the protocol automata.
//!
//! Every round-based host used to carry the same two maps
//! (`TimerId → Round` and `Round → TimerId`) plus the ad-hoc glue to arm,
//! cancel, and translate timer firings back into round expiries — tangled
//! into the protocol stepping itself. Following the view-synchronizer
//! decomposition of the BFT-liveness literature (see PAPERS.md, "Making
//! Byzantine Consensus Live"), [`ViewSynchronizer`] owns that machinery:
//! *protocol stepping* (what messages mean) stays in the automaton, *"when
//! do we give up on this round"* lives here, testable in isolation.
//!
//! The synchronizer also owns the [`TimeoutPolicy`], defaulting new
//! deployments to exponential backoff ([`ViewSynchronizer::backoff`]): after
//! a disruption (partition, crash, moving GST) the timeout doubles each
//! failed round, so the synchronizer crosses any finite `2δ` within
//! `O(log δ)` rounds of the network stabilizing — the churn-recovery bound
//! experiment E13 measures.

use std::collections::BTreeMap;

use minsync_net::{Env, TimerId};
use minsync_types::Round;

use crate::timeout::TimeoutPolicy;

/// Round advancement and round-timer bookkeeping for one process.
///
/// The synchronizer tracks the current round, arms at most one timer per
/// round, translates substrate timer firings back into round expiries with
/// stale-firing suppression, and cancels everything when the host stops.
/// Hosts drive it from their `Node` handlers:
///
/// ```rust
/// use minsync_core::{TimeoutPolicy, ViewSynchronizer};
/// use minsync_net::Env;
/// use minsync_types::Round;
///
/// let mut env: Env<(), ()> = Env::new(1, 0);
/// let mut sync = ViewSynchronizer::backoff(4, 1_000);
/// sync.advance_to(Round::FIRST);
/// let id = sync.arm(Round::FIRST, &mut env).unwrap();
/// // ... the substrate fires `id` ...
/// assert_eq!(sync.expire(id), Some(Round::FIRST));
/// assert_eq!(sync.expire(id), None, "stale firings are swallowed");
/// ```
#[derive(Clone, Debug)]
pub struct ViewSynchronizer {
    policy: TimeoutPolicy,
    current: Round,
    timers: BTreeMap<TimerId, Round>,
    rounds: BTreeMap<Round, TimerId>,
}

impl ViewSynchronizer {
    /// Creates a synchronizer with the given timeout policy, starting at
    /// [`Round::FIRST`].
    pub fn new(policy: TimeoutPolicy) -> Self {
        ViewSynchronizer {
            policy,
            current: Round::FIRST,
            timers: BTreeMap::new(),
            rounds: BTreeMap::new(),
        }
    }

    /// Creates a synchronizer with exponential backoff
    /// (`min(base·2^(r−1), cap)` ticks for round `r`) — the default for
    /// churn-tolerant deployments.
    pub fn backoff(base: u64, cap: u64) -> Self {
        ViewSynchronizer::new(TimeoutPolicy::exponential(base, cap))
    }

    /// The timeout policy in force.
    pub fn policy(&self) -> TimeoutPolicy {
        self.policy
    }

    /// The round the host is currently in.
    pub fn current(&self) -> Round {
        self.current
    }

    /// Records that the host entered round `r`.
    ///
    /// Advancement is monotone in practice but not enforced: a host
    /// re-entering its current round (restart recovery) is a no-op here.
    pub fn advance_to(&mut self, r: Round) {
        self.current = r;
    }

    /// Arms round `r`'s timer with the policy's timeout for `r`. Returns
    /// `None` (and arms nothing) if `r` already has a live timer — the
    /// at-most-one-timer-per-round rule every host wants.
    pub fn arm<M, O>(&mut self, r: Round, env: &mut Env<M, O>) -> Option<TimerId> {
        self.arm_with(r, self.policy.timeout(r), env)
    }

    /// Arms round `r`'s timer with an explicit `delay` (for hosts whose
    /// protocol layer dictates the timeout, e.g. the EA object's Figure 3
    /// line 5). Same at-most-one rule as [`ViewSynchronizer::arm`].
    pub fn arm_with<M, O>(&mut self, r: Round, delay: u64, env: &mut Env<M, O>) -> Option<TimerId> {
        if self.rounds.contains_key(&r) {
            return None;
        }
        let id = env.set_timer(delay);
        self.timers.insert(id, r);
        self.rounds.insert(r, id);
        Some(id)
    }

    /// Cancels round `r`'s timer if one is live. Returns whether a timer
    /// was actually cancelled.
    pub fn cancel<M, O>(&mut self, r: Round, env: &mut Env<M, O>) -> bool {
        match self.rounds.remove(&r) {
            Some(id) => {
                self.timers.remove(&id);
                env.cancel_timer(id);
                true
            }
            None => false,
        }
    }

    /// Translates a substrate timer firing into a round expiry. Returns the
    /// round whose timer this was, or `None` for firings the synchronizer
    /// does not own (another subsystem's timer, or one raced by a cancel).
    pub fn expire(&mut self, timer: TimerId) -> Option<Round> {
        let round = self.timers.remove(&timer)?;
        self.rounds.remove(&round);
        Some(round)
    }

    /// Cancels every live timer (host decided or is shutting down).
    pub fn cancel_all<M, O>(&mut self, env: &mut Env<M, O>) {
        for (id, _) in std::mem::take(&mut self.timers) {
            env.cancel_timer(id);
        }
        self.rounds.clear();
    }

    /// Number of live round timers.
    pub fn pending(&self) -> usize {
        self.timers.len()
    }

    /// Whether round `r` currently has a live timer.
    pub fn is_armed(&self, r: Round) -> bool {
        self.rounds.contains_key(&r)
    }
}

impl Default for ViewSynchronizer {
    fn default() -> Self {
        ViewSynchronizer::new(TimeoutPolicy::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minsync_net::Effect;

    fn env() -> Env<(), ()> {
        Env::new(1, 0)
    }

    #[test]
    fn arm_uses_policy_timeout() {
        let mut e = env();
        let mut sync = ViewSynchronizer::backoff(4, 100);
        sync.arm(Round::new(3), &mut e).unwrap();
        let effects = e.take_buffer();
        assert!(
            matches!(effects[..], [Effect::SetTimer { delay: 16, .. }]),
            "round 3 of base-4 backoff is 4·2² = 16: {effects:?}"
        );
    }

    #[test]
    fn one_timer_per_round() {
        let mut e = env();
        let mut sync = ViewSynchronizer::default();
        let first = sync.arm(Round::FIRST, &mut e);
        assert!(first.is_some());
        assert!(sync.arm(Round::FIRST, &mut e).is_none(), "already armed");
        assert_eq!(sync.pending(), 1);
    }

    #[test]
    fn expire_is_once_and_owned_only() {
        let mut e = env();
        let mut sync = ViewSynchronizer::default();
        let id = sync.arm(Round::FIRST, &mut e).unwrap();
        let foreign = e.set_timer(5);
        assert_eq!(sync.expire(foreign), None, "not ours");
        assert_eq!(sync.expire(id), Some(Round::FIRST));
        assert_eq!(sync.expire(id), None, "consumed");
        assert!(!sync.is_armed(Round::FIRST));
    }

    #[test]
    fn cancel_suppresses_expiry() {
        let mut e = env();
        let mut sync = ViewSynchronizer::default();
        let id = sync.arm(Round::new(2), &mut e).unwrap();
        assert!(sync.cancel(Round::new(2), &mut e));
        assert!(!sync.cancel(Round::new(2), &mut e), "already cancelled");
        assert_eq!(sync.expire(id), None);
        let effects = e.take_buffer();
        assert!(
            effects
                .iter()
                .any(|ef| matches!(ef, Effect::CancelTimer { .. })),
            "cancel reached the substrate: {effects:?}"
        );
    }

    #[test]
    fn cancel_all_clears_every_round() {
        let mut e = env();
        let mut sync = ViewSynchronizer::default();
        let ids: Vec<TimerId> = (1..=5)
            .map(|r| sync.arm(Round::new(r), &mut e).unwrap())
            .collect();
        sync.cancel_all(&mut e);
        assert_eq!(sync.pending(), 0);
        for id in ids {
            assert_eq!(sync.expire(id), None);
        }
    }

    #[test]
    fn advancement_is_tracked() {
        let mut sync = ViewSynchronizer::default();
        assert_eq!(sync.current(), Round::FIRST);
        sync.advance_to(Round::new(7));
        assert_eq!(sync.current(), Round::new(7));
    }

    #[test]
    fn arm_with_overrides_policy_delay() {
        let mut e = env();
        let mut sync = ViewSynchronizer::backoff(4, 100);
        sync.arm_with(Round::FIRST, 999, &mut e).unwrap();
        let effects = e.take_buffer();
        assert!(matches!(effects[..], [Effect::SetTimer { delay: 999, .. }]));
    }
}
