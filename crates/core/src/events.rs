//! Observable events emitted by the protocol automata.

use minsync_types::Round;

/// Outcome tag of an adopt-commit invocation (Figure 2 lines 6–7).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AcTag {
    /// All `n − t` witnessed estimates agreed — safe to decide.
    Commit,
    /// Mixed estimates — adopt the most frequent and continue.
    Adopt,
}

/// Telemetry and decisions emitted by [`ConsensusNode`].
///
/// [`ConsensusNode`]: crate::ConsensusNode
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ConsensusEvent<V> {
    /// Entered round `round` (Figure 4 line 3).
    RoundStarted {
        /// The round.
        round: Round,
    },
    /// The EA object returned for this round (Figure 4 line 4).
    EaReturned {
        /// The round.
        round: Round,
        /// Returned value.
        value: V,
        /// True if the unanimity fast path (Figure 3 line 4) fired —
        /// no coordinator/timer phase was needed.
        fast: bool,
    },
    /// The adopt-commit object returned (Figure 4 line 6).
    AcReturned {
        /// The round.
        round: Round,
        /// `Commit` or `Adopt`.
        tag: AcTag,
        /// The (possibly new) estimate.
        value: V,
    },
    /// This process RB-broadcast `DECIDE(value)` (Figure 4 line 7).
    DecideBroadcast {
        /// Round of the commit.
        round: Round,
        /// Committed value.
        value: V,
    },
    /// This process decided (Figure 4 line 9: `DECIDE(value)` RB-delivered
    /// from `t + 1` distinct processes).
    Decided {
        /// Decided value.
        value: V,
    },
}

impl<V> ConsensusEvent<V> {
    /// Returns the decided value if this is a decision event.
    pub fn as_decision(&self) -> Option<&V> {
        match self {
            ConsensusEvent::Decided { value } => Some(value),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_decision_filters() {
        let d: ConsensusEvent<u64> = ConsensusEvent::Decided { value: 5 };
        assert_eq!(d.as_decision(), Some(&5));
        let r: ConsensusEvent<u64> = ConsensusEvent::RoundStarted {
            round: Round::FIRST,
        };
        assert_eq!(r.as_decision(), None);
    }

    #[test]
    fn ac_tag_is_copy_eq() {
        let a = AcTag::Commit;
        let b = a;
        assert_eq!(a, b);
        assert_ne!(AcTag::Commit, AcTag::Adopt);
    }
}
