//! Timeout policies for the eventual-agreement object.
//!
//! Figure 3 line 5 sets `timer_i[r_i] ← r_i`: the timeout value *is* the
//! round number, so it grows without bound — which is all Lemma 3 needs
//! (eventually `r > 2δ`, so the coordinator's `EA_COORD` beats the timer).
//! Footnote 3 generalizes to any increasing function `f_i(r)`; experiments
//! E8 sweep this family.

use minsync_types::Round;

/// An increasing timeout function `f(r) = offset + slope·r` in ticks.
///
/// The paper's choice is `slope = 1`, `offset = 0`. Larger slopes reach the
/// `f(r) > 2δ` threshold of Lemma 3 in fewer rounds (at the cost of waiting
/// longer in rounds with a faulty or unstable coordinator).
///
/// ```rust
/// use minsync_core::TimeoutPolicy;
/// use minsync_types::Round;
///
/// let paper = TimeoutPolicy::paper();
/// assert_eq!(paper.timeout(Round::new(7)), 7);
///
/// let steep = TimeoutPolicy::linear(10, 5);
/// assert_eq!(steep.timeout(Round::new(7)), 75);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TimeoutPolicy {
    slope: u64,
    offset: u64,
}

impl TimeoutPolicy {
    /// The paper's policy: `timer[r] = r`.
    pub const fn paper() -> Self {
        TimeoutPolicy {
            slope: 1,
            offset: 0,
        }
    }

    /// `f(r) = offset + slope·r`.
    ///
    /// # Panics
    ///
    /// Panics if `slope == 0`: the policy must be increasing, otherwise the
    /// Lemma 3 argument (timeouts eventually exceed `2δ`) fails and the EA
    /// object loses liveness.
    pub const fn linear(slope: u64, offset: u64) -> Self {
        assert!(slope > 0, "timeout policy must be strictly increasing");
        TimeoutPolicy { slope, offset }
    }

    /// The timeout, in ticks, to arm for round `r`.
    pub const fn timeout(&self, r: Round) -> u64 {
        self.offset + self.slope * r.get()
    }

    /// First round whose timeout strictly exceeds `2δ` — the `r1` of
    /// Lemma 3's proof. Harness code uses it to predict convergence rounds.
    pub const fn first_round_exceeding(&self, two_delta: u64) -> Round {
        if self.offset > two_delta {
            return Round::FIRST;
        }
        // Smallest r with offset + slope·r > two_delta.
        let need = two_delta - self.offset;
        let r = need / self.slope + 1;
        Round::new(r)
    }
}

impl Default for TimeoutPolicy {
    fn default() -> Self {
        TimeoutPolicy::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_policy_equals_round_number() {
        let p = TimeoutPolicy::paper();
        for r in 1..100 {
            assert_eq!(p.timeout(Round::new(r)), r);
        }
    }

    #[test]
    fn linear_policy() {
        let p = TimeoutPolicy::linear(3, 10);
        assert_eq!(p.timeout(Round::new(1)), 13);
        assert_eq!(p.timeout(Round::new(10)), 40);
    }

    #[test]
    #[should_panic(expected = "increasing")]
    fn zero_slope_rejected() {
        let _ = TimeoutPolicy::linear(0, 5);
    }

    #[test]
    fn first_round_exceeding_is_tight() {
        let p = TimeoutPolicy::paper();
        // 2δ = 10 → first round with timeout > 10 is round 11.
        let r = p.first_round_exceeding(10);
        assert_eq!(r, Round::new(11));
        assert!(p.timeout(r) > 10);
        assert!(p.timeout(Round::new(r.get() - 1)) <= 10);

        let steep = TimeoutPolicy::linear(7, 0);
        let r = steep.first_round_exceeding(10);
        assert_eq!(r, Round::new(2)); // 7·1 = 7 ≤ 10 < 14 = 7·2
    }

    #[test]
    fn big_offset_satisfies_immediately() {
        let p = TimeoutPolicy::linear(1, 1000);
        assert_eq!(p.first_round_exceeding(10), Round::FIRST);
    }
}
