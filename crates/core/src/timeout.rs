//! Timeout policies for the eventual-agreement object.
//!
//! Figure 3 line 5 sets `timer_i[r_i] ← r_i`: the timeout value *is* the
//! round number, so it grows without bound — which is all Lemma 3 needs
//! (eventually `r > 2δ`, so the coordinator's `EA_COORD` beats the timer).
//! Footnote 3 generalizes to any increasing function `f_i(r)`; experiments
//! E8 sweep the linear family and the view synchronizer defaults to the
//! exponential one (the usual choice of production view-synchronization
//! layers: it reaches any fixed `2δ` threshold in `O(log δ)` rounds while
//! keeping early-round timeouts tight).

use minsync_types::Round;

/// An increasing timeout function in ticks.
///
/// Two families:
///
/// * [`TimeoutPolicy::linear`] — `f(r) = offset + slope·r`. The paper's
///   choice is `slope = 1, offset = 0` ([`TimeoutPolicy::paper`]). Larger
///   slopes reach the `f(r) > 2δ` threshold of Lemma 3 in fewer rounds (at
///   the cost of waiting longer in rounds with a faulty or unstable
///   coordinator).
/// * [`TimeoutPolicy::exponential`] — `f(r) = min(base·2^(r−1), cap)`,
///   the classic view-synchronizer backoff. Strictly increasing until the
///   cap; the cap must therefore exceed every `2δ` the deployment can see,
///   which [`TimeoutPolicy::first_round_exceeding`] checks for harness
///   code.
///
/// ```rust
/// use minsync_core::TimeoutPolicy;
/// use minsync_types::Round;
///
/// let paper = TimeoutPolicy::paper();
/// assert_eq!(paper.timeout(Round::new(7)), 7);
///
/// let steep = TimeoutPolicy::linear(10, 5);
/// assert_eq!(steep.timeout(Round::new(7)), 75);
///
/// let backoff = TimeoutPolicy::exponential(4, 1_000);
/// assert_eq!(backoff.timeout(Round::new(1)), 4);
/// assert_eq!(backoff.timeout(Round::new(5)), 64);
/// assert_eq!(backoff.timeout(Round::new(20)), 1_000); // capped
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TimeoutPolicy {
    /// `f(r) = offset + slope·r`.
    Linear {
        /// Per-round growth (must be > 0).
        slope: u64,
        /// Constant floor added to every round.
        offset: u64,
    },
    /// `f(r) = min(base·2^(r−1), cap)` — exponential backoff.
    Exponential {
        /// Round-1 timeout (must be > 0).
        base: u64,
        /// Upper bound the doubling saturates at.
        cap: u64,
    },
}

impl TimeoutPolicy {
    /// The paper's policy: `timer[r] = r`.
    pub const fn paper() -> Self {
        TimeoutPolicy::Linear {
            slope: 1,
            offset: 0,
        }
    }

    /// `f(r) = offset + slope·r`.
    ///
    /// # Panics
    ///
    /// Panics if `slope == 0`: the policy must be increasing, otherwise the
    /// Lemma 3 argument (timeouts eventually exceed `2δ`) fails and the EA
    /// object loses liveness.
    pub const fn linear(slope: u64, offset: u64) -> Self {
        assert!(slope > 0, "timeout policy must be strictly increasing");
        TimeoutPolicy::Linear { slope, offset }
    }

    /// `f(r) = min(base·2^(r−1), cap)` — exponential backoff starting at
    /// `base` ticks and doubling each round until `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `base == 0` (the policy would be constant zero) or
    /// `cap < base` (round 1 would already exceed the cap).
    pub const fn exponential(base: u64, cap: u64) -> Self {
        assert!(base > 0, "exponential timeout needs a positive base");
        assert!(cap >= base, "cap must be at least the round-1 base");
        TimeoutPolicy::Exponential { base, cap }
    }

    /// The timeout, in ticks, to arm for round `r`.
    pub const fn timeout(&self, r: Round) -> u64 {
        match *self {
            TimeoutPolicy::Linear { slope, offset } => offset + slope * r.get(),
            TimeoutPolicy::Exponential { base, cap } => {
                let exp = r.get() - 1;
                if exp >= 64 {
                    return cap;
                }
                match base.checked_mul(1u64 << exp) {
                    Some(v) if v <= cap => v,
                    _ => cap,
                }
            }
        }
    }

    /// First round whose timeout strictly exceeds `2δ` — the `r1` of
    /// Lemma 3's proof. Harness code uses it to predict convergence rounds.
    ///
    /// # Panics
    ///
    /// Panics for an exponential policy whose cap is `≤ two_delta`: such a
    /// policy never crosses the threshold, so no round qualifies (the
    /// deployment's cap is too small for its δ).
    pub const fn first_round_exceeding(&self, two_delta: u64) -> Round {
        match *self {
            TimeoutPolicy::Linear { slope, offset } => {
                if offset > two_delta {
                    return Round::FIRST;
                }
                // Smallest r with offset + slope·r > two_delta.
                let need = two_delta - offset;
                let r = need / slope + 1;
                Round::new(r)
            }
            TimeoutPolicy::Exponential { base, cap } => {
                assert!(
                    cap > two_delta,
                    "exponential cap never exceeds 2δ: the policy cannot satisfy Lemma 3"
                );
                let mut r = 1u64;
                let mut t = base;
                while t <= two_delta {
                    t = t.saturating_mul(2);
                    r += 1;
                }
                Round::new(r)
            }
        }
    }
}

impl Default for TimeoutPolicy {
    fn default() -> Self {
        TimeoutPolicy::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_policy_equals_round_number() {
        let p = TimeoutPolicy::paper();
        for r in 1..100 {
            assert_eq!(p.timeout(Round::new(r)), r);
        }
    }

    #[test]
    fn linear_policy() {
        let p = TimeoutPolicy::linear(3, 10);
        assert_eq!(p.timeout(Round::new(1)), 13);
        assert_eq!(p.timeout(Round::new(10)), 40);
    }

    #[test]
    #[should_panic(expected = "increasing")]
    fn zero_slope_rejected() {
        let _ = TimeoutPolicy::linear(0, 5);
    }

    #[test]
    fn exponential_doubles_then_caps() {
        let p = TimeoutPolicy::exponential(3, 50);
        assert_eq!(p.timeout(Round::new(1)), 3);
        assert_eq!(p.timeout(Round::new(2)), 6);
        assert_eq!(p.timeout(Round::new(3)), 12);
        assert_eq!(p.timeout(Round::new(4)), 24);
        assert_eq!(p.timeout(Round::new(5)), 48);
        assert_eq!(p.timeout(Round::new(6)), 50, "capped");
        assert_eq!(p.timeout(Round::new(100)), 50, "huge rounds stay capped");
    }

    #[test]
    fn exponential_shift_overflow_saturates_to_cap() {
        let p = TimeoutPolicy::exponential(u64::MAX / 2, u64::MAX);
        assert_eq!(p.timeout(Round::new(2)), u64::MAX - 1);
        assert_eq!(p.timeout(Round::new(3)), u64::MAX, "overflow → cap");
        assert_eq!(p.timeout(Round::new(70)), u64::MAX, "shift ≥ 64 → cap");
    }

    #[test]
    #[should_panic(expected = "positive base")]
    fn exponential_zero_base_rejected() {
        let _ = TimeoutPolicy::exponential(0, 10);
    }

    #[test]
    #[should_panic(expected = "at least the round-1 base")]
    fn exponential_cap_below_base_rejected() {
        let _ = TimeoutPolicy::exponential(10, 5);
    }

    #[test]
    fn first_round_exceeding_is_tight() {
        let p = TimeoutPolicy::paper();
        // 2δ = 10 → first round with timeout > 10 is round 11.
        let r = p.first_round_exceeding(10);
        assert_eq!(r, Round::new(11));
        assert!(p.timeout(r) > 10);
        assert!(p.timeout(Round::new(r.get() - 1)) <= 10);

        let steep = TimeoutPolicy::linear(7, 0);
        let r = steep.first_round_exceeding(10);
        assert_eq!(r, Round::new(2)); // 7·1 = 7 ≤ 10 < 14 = 7·2
    }

    #[test]
    fn exponential_first_round_exceeding_is_logarithmic() {
        let p = TimeoutPolicy::exponential(1, 1 << 32);
        // 2δ = 1000 → 2^10 = 1024 > 1000 at round 11.
        let r = p.first_round_exceeding(1000);
        assert_eq!(r, Round::new(11));
        assert!(p.timeout(r) > 1000);
        assert!(p.timeout(Round::new(r.get() - 1)) <= 1000);
    }

    #[test]
    #[should_panic(expected = "cannot satisfy Lemma 3")]
    fn exponential_cap_below_threshold_rejected() {
        let p = TimeoutPolicy::exponential(1, 10);
        let _ = p.first_round_exceeding(10);
    }

    #[test]
    fn big_offset_satisfies_immediately() {
        let p = TimeoutPolicy::linear(1, 1000);
        assert_eq!(p.first_round_exceeding(10), Round::FIRST);
    }
}
