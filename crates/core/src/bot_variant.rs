//! The ⊥-validity variant of Section 7 ("A variant").
//!
//! The paper's main algorithm needs the m-valued feasibility condition
//! `n − t > m·t` so that no value proposed only by Byzantine processes can
//! ever be decided. Section 7 notes that, following [11, 24], the
//! algorithms "can be modified" to drop that requirement by letting correct
//! processes decide a default value `⊥` when they do not propose the same
//! value. The paper gives no construction; this module supplies one and
//! proves it in the comments.
//!
//! # Construction
//!
//! 1. **Certification.** Every process RB-broadcasts `CERT(v_i)`. A value
//!    `v` is *certified* at a process once RB-delivered from strictly more
//!    than `(n + t)/2` distinct processes.
//!    *At most one value can ever be certified system-wide*: two
//!    certification quorums intersect in more than `t` processes, hence in
//!    a correct process, which RB-broadcast a single `CERT` (RB-Unicity).
//!    *If all correct processes propose `v`*, then `n − t > (n + t)/2`
//!    (⇔ `n > 3t`) deliveries of `CERT(v)` eventually occur at every
//!    correct process, so `v` certifies everywhere.
//! 2. **Binary consensus.** Run the paper's consensus (always feasible for
//!    `m = 2`: `⌊(n − t − 1)/t⌋ ≥ 2` whenever `n > 3t`) on the bit
//!    `b_i = 1` iff some value was certified at `p_i` when its certification
//!    watch first resolves — concretely, `b_i = 1` if a value certifies
//!    before `CERT`s from `n − t` distinct processes were delivered without
//!    any value reaching the threshold, else `b_i = 0`.
//! 3. **Decision.** If the binary consensus decides `0`, decide `⊥`.
//!    If it decides `1`, wait until some value certifies locally (if `1`
//!    was decided, a correct process proposed `1`, so a certificate exists;
//!    by RB-Termination-2 its `> (n+t)/2` deliveries eventually occur at
//!    every correct process) and decide that value.
//!
//! # Properties
//!
//! * **⊥-Validity** — a non-`⊥` decision is certified, i.e. RB-delivered
//!   from `> (n+t)/2 ≥ t + 1` processes, at least one correct: it was
//!   proposed by a correct process. Byzantine-only values are never
//!   decided.
//! * **Obligation** — if all correct processes propose `v`: every correct
//!   process certifies `v`. Can a correct process still input `0`? Only if
//!   `n − t` `CERT`s arrive with no value at threshold — impossible, since
//!   any `n − t` senders include `≥ n − 2t` correct ones... but
//!   `n − 2t > (n + t)/2` fails in general, so a fast `0` input *is*
//!   possible when Byzantine `CERT`s pad the count. To close this, the
//!   watch resolves `0` only after `CERT`s from **all** `n − t` first
//!   senders are delivered *and* no value can reach the threshold even
//!   with every not-yet-delivered process voting for it — with all correct
//!   on `v`, `v` can always still reach it, so the watch never resolves
//!   `0`. Hence all correct process propose `1`, the binary consensus
//!   decides `1` (CONS-Validity), and `v` is decided.
//! * **Agreement** — the binary consensus agrees on the bit; if `1`, the
//!   certified value is unique (quorum intersection), so all correct
//!   processes decide it.
//! * **Termination** — the certification watch always resolves (`1` when a
//!   value certifies; `0` once no value can mathematically reach the
//!   threshold); the binary consensus terminates under the
//!   ✸⟨t+1⟩bisource; a decided `1` implies an eventually-visible
//!   certificate.

use std::collections::BTreeMap;

use minsync_broadcast::{RbAction, RbActions, RbEngine};
use minsync_net::{Effect, Env, Node, TimerId};
use minsync_types::{ConfigError, ProcessId, SystemConfig, Value};

use crate::consensus::{ConsensusConfig, ConsensusNode};
use crate::events::ConsensusEvent;
use crate::messages::ProtocolMsg;

/// Wire messages of the ⊥-variant: certification traffic plus the embedded
/// binary consensus.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BotMsg<V> {
    /// RB traffic of the certification exchange (`CERT` values).
    CertRb(minsync_broadcast::RbMsg<(), V>),
    /// The embedded binary consensus (proposals 0/1).
    Inner(ProtocolMsg<u8>),
}

impl<V> BotMsg<V> {
    /// Classifier for metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            BotMsg::CertRb(_) => "CERT",
            BotMsg::Inner(m) => m.kind(),
        }
    }
}

/// Output of the ⊥-variant node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BotEvent<V> {
    /// Decided a real value (proposed by a correct process).
    Decided {
        /// The value.
        value: V,
    },
    /// Decided the default value `⊥` (correct processes disagreed).
    DecidedBottom,
}

/// State of the certification watch (step 1 / step 2 input derivation).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Watch {
    /// Still undetermined.
    Pending,
    /// Resolved with the given binary-consensus input.
    Resolved(u8),
}

/// Byzantine consensus with ⊥-validity (Section 7) — no `m`-feasibility
/// requirement on proposals.
///
/// Internally drives a certification exchange and an embedded
/// [`ConsensusNode`] on one bit; see the module docs for the construction
/// and its proof sketch. The embedded automaton runs on a *child
/// environment*: its queued effects are drained, its messages wrapped in
/// [`BotMsg::Inner`], and its outputs folded into this node's state —
/// sans-io composition with no context shims.
#[derive(Debug)]
pub struct BotConsensusNode<V> {
    system: SystemConfig,
    inner_cfg: ConsensusConfig,
    proposal: V,
    cert_rb: Option<RbEngine<(), V>>,
    /// Who certified what: value → distinct RB-origins delivered.
    cert_support: BTreeMap<V, Vec<ProcessId>>,
    cert_senders: Vec<ProcessId>,
    certified: Option<V>,
    watch: Watch,
    inner: ConsensusNode<u8>,
    /// Child environment the embedded consensus runs on (created lazily on
    /// first drive; seed irrelevant — the inner automaton is deterministic
    /// and never draws randomness).
    inner_env: Option<Env<ProtocolMsg<u8>, ConsensusEvent<u8>>>,
    inner_started: bool,
    /// Inner-consensus messages received before the certification watch
    /// resolved (other processes may start their binary consensus first);
    /// replayed in arrival order once `start_inner` runs.
    pending_inner: Vec<(ProcessId, ProtocolMsg<u8>)>,
    bit_decided: Option<u8>,
    done: bool,
}

type BotCtx<V> = Env<BotMsg<V>, BotEvent<V>>;

impl<V: Value> BotConsensusNode<V> {
    /// Creates a node proposing `proposal`.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the embedded binary consensus.
    pub fn new(cfg: ConsensusConfig, proposal: V) -> Result<Self, ConfigError> {
        Ok(BotConsensusNode {
            system: cfg.system,
            inner_cfg: cfg,
            proposal,
            cert_rb: None,
            cert_support: BTreeMap::new(),
            cert_senders: Vec::new(),
            certified: None,
            watch: Watch::Pending,
            // Placeholder proposal; replaced when the watch resolves.
            inner: ConsensusNode::new(cfg, 0)?,
            inner_env: None,
            inner_started: false,
            pending_inner: Vec::new(),
            bit_decided: None,
            done: false,
        })
    }

    fn apply_cert_rb(&mut self, actions: RbActions<(), V>, env: &mut BotCtx<V>) {
        for action in actions {
            match action {
                RbAction::Broadcast(m) => env.broadcast(BotMsg::CertRb(m)),
                RbAction::Deliver { origin, value, .. } => {
                    self.on_cert_delivered(origin, value, env)
                }
            }
        }
    }

    fn on_cert_delivered(&mut self, origin: ProcessId, value: V, env: &mut BotCtx<V>) {
        if self.cert_senders.contains(&origin) {
            return; // RB-Unicity makes this unreachable; defensive.
        }
        self.cert_senders.push(origin);
        self.cert_support.entry(value).or_default().push(origin);
        self.recheck_certification(env);
    }

    fn recheck_certification(&mut self, env: &mut BotCtx<V>) {
        let threshold = self.system.certification_threshold();
        let n = self.system.n();
        if self.certified.is_none() {
            if let Some((v, _)) = self.cert_support.iter().find(|(_, s)| s.len() >= threshold) {
                self.certified = Some(v.clone());
            }
        }
        if self.watch == Watch::Pending {
            if self.certified.is_some() {
                self.watch = Watch::Resolved(1);
            } else {
                // Resolve 0 only when no value can reach the threshold even
                // if every process not yet heard from supports it.
                let outstanding = n - self.cert_senders.len();
                let best = self.cert_support.values().map(Vec::len).max().unwrap_or(0);
                if best + outstanding < threshold {
                    self.watch = Watch::Resolved(0);
                }
            }
            if let Watch::Resolved(bit) = self.watch {
                self.start_inner(bit, env);
            }
        }
        self.try_finish(env);
    }

    fn start_inner(&mut self, bit: u8, env: &mut BotCtx<V>) {
        debug_assert!(!self.inner_started);
        self.inner_started = true;
        self.inner = ConsensusNode::new(self.inner_cfg, bit).expect("config validated in new()");
        self.drive_inner(env, |inner, ienv| inner.on_start(ienv));
        // Replay buffered inner traffic in arrival order.
        for (from, msg) in std::mem::take(&mut self.pending_inner) {
            self.drive_inner(env, |inner, ienv| inner.on_message(from, msg, ienv));
        }
    }

    /// Runs one embedded-consensus handler on the child environment, then
    /// maps its effect stream into the outer one: messages are wrapped in
    /// [`BotMsg::Inner`], timer effects pass through unchanged (the timer
    /// table is shared, so ids never collide with the outer node's),
    /// outputs are folded into local state, and `Halt` is swallowed (the
    /// embedded consensus never halts the outer node).
    fn drive_inner(
        &mut self,
        env: &mut BotCtx<V>,
        f: impl FnOnce(&mut ConsensusNode<u8>, &mut Env<ProtocolMsg<u8>, ConsensusEvent<u8>>),
    ) {
        let ienv = self.inner_env.get_or_insert_with(|| Env::new(env.n(), 0));
        ienv.prepare(env.me(), env.now());
        env.swap_timers(ienv);
        f(&mut self.inner, ienv);
        env.swap_timers(ienv);
        let mut events = Vec::new();
        for effect in ienv.drain() {
            match effect {
                Effect::Send { to, msg } => env.send(to, BotMsg::Inner(msg)),
                Effect::Broadcast { msg } => env.broadcast(BotMsg::Inner(msg)),
                Effect::SetTimer { id, delay } => env.push(Effect::SetTimer { id, delay }),
                Effect::CancelTimer { id } => env.push(Effect::CancelTimer { id }),
                Effect::Output(event) => events.push(event),
                Effect::Halt => {}
            }
        }
        self.consume_inner_events(events, env);
    }

    fn consume_inner_events(&mut self, events: Vec<ConsensusEvent<u8>>, env: &mut BotCtx<V>) {
        for ev in events {
            if let ConsensusEvent::Decided { value } = ev {
                self.bit_decided = Some(value);
            }
        }
        self.try_finish(env);
    }

    fn try_finish(&mut self, env: &mut BotCtx<V>) {
        if self.done {
            return;
        }
        match self.bit_decided {
            Some(0) => {
                self.done = true;
                env.output(BotEvent::DecidedBottom);
            }
            Some(_) => {
                // Wait until the (unique) certificate is visible locally.
                if let Some(v) = self.certified.clone() {
                    self.done = true;
                    env.output(BotEvent::Decided { value: v });
                }
            }
            None => {}
        }
    }
}

impl<V: Value> Node for BotConsensusNode<V> {
    type Msg = BotMsg<V>;
    type Output = BotEvent<V>;

    fn on_start(&mut self, env: &mut BotCtx<V>) {
        let mut rb = RbEngine::new(self.system, env.me());
        let actions = rb.broadcast((), self.proposal.clone());
        self.cert_rb = Some(rb);
        self.apply_cert_rb(actions, env);
    }

    fn on_message(&mut self, from: ProcessId, msg: BotMsg<V>, env: &mut BotCtx<V>) {
        match msg {
            BotMsg::CertRb(rb_msg) => {
                if let Some(mut rb) = self.cert_rb.take() {
                    let actions = rb.on_message(from, rb_msg);
                    self.cert_rb = Some(rb);
                    self.apply_cert_rb(actions, env);
                }
            }
            BotMsg::Inner(inner_msg) => {
                if self.inner_started {
                    self.drive_inner(env, |inner, ienv| inner.on_message(from, inner_msg, ienv));
                } else {
                    // The sender's watch resolved before ours: buffer until
                    // our binary consensus starts.
                    self.pending_inner.push((from, inner_msg));
                }
            }
        }
    }

    fn on_timer(&mut self, timer: TimerId, env: &mut BotCtx<V>) {
        if self.inner_started {
            self.drive_inner(env, |inner, ienv| inner.on_timer(timer, ienv));
        }
    }

    fn label(&self) -> &'static str {
        "bot-consensus"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consensus::ConsensusConfig;
    use minsync_net::sim::SimBuilder;
    use minsync_net::{NetworkTopology, Node};
    use minsync_types::SystemConfig;

    type Msg = BotMsg<u64>;
    type Out = BotEvent<u64>;

    fn run(proposals: &[u64], seed: u64) -> Vec<Option<u64>> {
        let n = proposals.len();
        let t = (n - 1) / 3;
        let cfg = ConsensusConfig::paper(SystemConfig::new(n, t).unwrap());
        let mut builder = SimBuilder::new(NetworkTopology::all_timely(n, 3))
            .seed(seed)
            .max_events(3_000_000);
        for &p in proposals {
            let node: Box<dyn Node<Msg = Msg, Output = Out>> =
                Box::new(BotConsensusNode::new(cfg, p).unwrap());
            builder = builder.boxed_node(node);
        }
        let mut sim = builder.build();
        let report = sim.run_until(|outs| outs.len() == n);
        report
            .outputs
            .iter()
            .map(|o| match &o.event {
                BotEvent::Decided { value } => Some(*value),
                BotEvent::DecidedBottom => None,
            })
            .collect()
    }

    #[test]
    fn unanimous_decides_value() {
        let d = run(&[5, 5, 5, 5], 1);
        assert_eq!(d.len(), 4);
        assert!(d.iter().all(|v| *v == Some(5)), "{d:?}");
    }

    #[test]
    fn all_distinct_agrees_bottom_or_proposed() {
        for seed in 0..4 {
            let d = run(&[1, 2, 3, 4], seed);
            assert_eq!(d.len(), 4, "seed {seed}");
            assert!(d.windows(2).all(|w| w[0] == w[1]), "seed {seed}: {d:?}");
            if let Some(v) = d[0] {
                assert!((1..=4).contains(&v));
            }
        }
    }

    #[test]
    fn majority_never_loses_to_minority() {
        // 3 of 4 propose 9: 9 certifies (> (n+t)/2 = 2.5 → 3 deliveries);
        // 7 (one proposer) can never certify. Decision ∈ {9, ⊥}.
        for seed in 0..4 {
            let d = run(&[9, 9, 9, 7], seed);
            assert!(d.windows(2).all(|w| w[0] == w[1]), "seed {seed}");
            assert_ne!(d[0], Some(7), "seed {seed}: minority value certified?!");
        }
    }

    #[test]
    fn certification_watch_resolves_zero_only_when_mathematically_final() {
        let cfg = ConsensusConfig::paper(SystemConfig::new(4, 1).unwrap());
        let mut node: BotConsensusNode<u64> = BotConsensusNode::new(cfg, 1).unwrap();
        // Feed deliveries directly: 3 distinct values from 3 origins; the
        // 4th origin could still push any of them to the threshold (3), so
        // the watch must stay pending.
        node.cert_senders.push(minsync_types::ProcessId::new(0));
        node.cert_support
            .entry(10)
            .or_default()
            .push(minsync_types::ProcessId::new(0));
        node.cert_senders.push(minsync_types::ProcessId::new(1));
        node.cert_support
            .entry(20)
            .or_default()
            .push(minsync_types::ProcessId::new(1));
        // best = 1, outstanding = 2, threshold = 3: 1 + 2 = 3 ≥ 3 → pending.
        assert_eq!(node.watch, Watch::Pending);
        let outstanding = 4 - node.cert_senders.len();
        let best = node.cert_support.values().map(Vec::len).max().unwrap_or(0);
        assert!(best + outstanding >= cfg.system.certification_threshold());
    }

    #[test]
    fn kind_labels() {
        let m: BotMsg<u64> = BotMsg::Inner(ProtocolMsg::EaProp2 {
            round: minsync_types::Round::FIRST,
            value: 0,
        });
        assert_eq!(m.kind(), "EA_PROP2");
    }
}
