//! The ⊥-validity variant of Section 7 ("A variant").
//!
//! The paper's main algorithm needs the m-valued feasibility condition
//! `n − t > m·t` so that no value proposed only by Byzantine processes can
//! ever be decided. Section 7 notes that, following [11, 24], the
//! algorithms "can be modified" to drop that requirement by letting correct
//! processes decide a default value `⊥` when they do not propose the same
//! value. The paper gives no construction; this module supplies one and
//! proves it in the comments.
//!
//! # Construction
//!
//! 1. **Certification.** Every process RB-broadcasts `CERT(v_i)`. A value
//!    `v` is *certified* at a process once RB-delivered from strictly more
//!    than `(n + t)/2` distinct processes.
//!    *At most one value can ever be certified system-wide*: two
//!    certification quorums intersect in more than `t` processes, hence in
//!    a correct process, which RB-broadcast a single `CERT` (RB-Unicity).
//!    *If all correct processes propose `v`*, then `n − t > (n + t)/2`
//!    (⇔ `n > 3t`) deliveries of `CERT(v)` eventually occur at every
//!    correct process, so `v` certifies everywhere.
//! 2. **Binary consensus.** Run the paper's consensus (always feasible for
//!    `m = 2`: `⌊(n − t − 1)/t⌋ ≥ 2` whenever `n > 3t`) on the bit
//!    `b_i = 1` iff some value was certified at `p_i` when its certification
//!    watch first resolves — concretely, `b_i = 1` if a value certifies
//!    before `CERT`s from `n − t` distinct processes were delivered without
//!    any value reaching the threshold, else `b_i = 0`.
//! 3. **Decision.** If the binary consensus decides `0`, decide `⊥`.
//!    If it decides `1`, wait until some value certifies locally (if `1`
//!    was decided, a correct process proposed `1`, so a certificate exists;
//!    by RB-Termination-2 its `> (n+t)/2` deliveries eventually occur at
//!    every correct process) and decide that value.
//!
//! # Properties
//!
//! * **⊥-Validity** — a non-`⊥` decision is certified, i.e. RB-delivered
//!   from `> (n+t)/2 ≥ t + 1` processes, at least one correct: it was
//!   proposed by a correct process. Byzantine-only values are never
//!   decided.
//! * **Obligation** — if all correct processes propose `v`: every correct
//!   process certifies `v`. Can a correct process still input `0`? Only if
//!   `n − t` `CERT`s arrive with no value at threshold — impossible, since
//!   any `n − t` senders include `≥ n − 2t` correct ones... but
//!   `n − 2t > (n + t)/2` fails in general, so a fast `0` input *is*
//!   possible when Byzantine `CERT`s pad the count. To close this, the
//!   watch resolves `0` only after `CERT`s from **all** `n − t` first
//!   senders are delivered *and* no value can reach the threshold even
//!   with every not-yet-delivered process voting for it — with all correct
//!   on `v`, `v` can always still reach it, so the watch never resolves
//!   `0`. Hence all correct process propose `1`, the binary consensus
//!   decides `1` (CONS-Validity), and `v` is decided.
//! * **Agreement** — the binary consensus agrees on the bit; if `1`, the
//!   certified value is unique (quorum intersection), so all correct
//!   processes decide it.
//! * **Termination** — the certification watch always resolves (`1` when a
//!   value certifies; `0` once no value can mathematically reach the
//!   threshold); the binary consensus terminates under the
//!   ✸⟨t+1⟩bisource; a decided `1` implies an eventually-visible
//!   certificate.

use std::collections::BTreeMap;

use minsync_broadcast::{RbAction, RbEngine};
use minsync_net::{Context, Node, TimerId};
use minsync_types::{ConfigError, ProcessId, SystemConfig, Value};

use crate::consensus::{ConsensusConfig, ConsensusNode};
use crate::events::ConsensusEvent;
use crate::messages::ProtocolMsg;

/// Wire messages of the ⊥-variant: certification traffic plus the embedded
/// binary consensus.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BotMsg<V> {
    /// RB traffic of the certification exchange (`CERT` values).
    CertRb(minsync_broadcast::RbMsg<(), V>),
    /// The embedded binary consensus (proposals 0/1).
    Inner(ProtocolMsg<u8>),
}

impl<V> BotMsg<V> {
    /// Classifier for metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            BotMsg::CertRb(_) => "CERT",
            BotMsg::Inner(m) => m.kind(),
        }
    }
}

/// Output of the ⊥-variant node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BotEvent<V> {
    /// Decided a real value (proposed by a correct process).
    Decided {
        /// The value.
        value: V,
    },
    /// Decided the default value `⊥` (correct processes disagreed).
    DecidedBottom,
}

/// State of the certification watch (step 1 / step 2 input derivation).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Watch {
    /// Still undetermined.
    Pending,
    /// Resolved with the given binary-consensus input.
    Resolved(u8),
}

/// Byzantine consensus with ⊥-validity (Section 7) — no `m`-feasibility
/// requirement on proposals.
///
/// Internally drives a certification exchange and an embedded
/// [`ConsensusNode`] on one bit; see the module docs for the construction
/// and its proof sketch.
#[derive(Debug)]
pub struct BotConsensusNode<V> {
    system: SystemConfig,
    inner_cfg: ConsensusConfig,
    proposal: V,
    cert_rb: Option<RbEngine<(), V>>,
    /// Who certified what: value → distinct RB-origins delivered.
    cert_support: BTreeMap<V, Vec<ProcessId>>,
    cert_senders: Vec<ProcessId>,
    certified: Option<V>,
    watch: Watch,
    inner: ConsensusNode<u8>,
    inner_started: bool,
    /// Inner-consensus messages received before the certification watch
    /// resolved (other processes may start their binary consensus first);
    /// replayed in arrival order once `start_inner` runs.
    pending_inner: Vec<(ProcessId, ProtocolMsg<u8>)>,
    bit_decided: Option<u8>,
    done: bool,
}

type BotCtx<'a, V> = dyn Context<BotMsg<V>, BotEvent<V>> + 'a;

impl<V: Value> BotConsensusNode<V> {
    /// Creates a node proposing `proposal`.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the embedded binary consensus.
    pub fn new(cfg: ConsensusConfig, proposal: V) -> Result<Self, ConfigError> {
        Ok(BotConsensusNode {
            system: cfg.system,
            inner_cfg: cfg,
            proposal,
            cert_rb: None,
            cert_support: BTreeMap::new(),
            cert_senders: Vec::new(),
            certified: None,
            watch: Watch::Pending,
            // Placeholder proposal; replaced when the watch resolves.
            inner: ConsensusNode::new(cfg, 0)?,
            inner_started: false,
            pending_inner: Vec::new(),
            bit_decided: None,
            done: false,
        })
    }

    fn apply_cert_rb(&mut self, actions: Vec<RbAction<(), V>>, ctx: &mut BotCtx<'_, V>) {
        for action in actions {
            match action {
                RbAction::Broadcast(m) => ctx.broadcast(BotMsg::CertRb(m)),
                RbAction::Deliver { origin, value, .. } => {
                    self.on_cert_delivered(origin, value, ctx)
                }
            }
        }
    }

    fn on_cert_delivered(&mut self, origin: ProcessId, value: V, ctx: &mut BotCtx<'_, V>) {
        if self.cert_senders.contains(&origin) {
            return; // RB-Unicity makes this unreachable; defensive.
        }
        self.cert_senders.push(origin);
        self.cert_support.entry(value).or_default().push(origin);
        self.recheck_certification(ctx);
    }

    fn recheck_certification(&mut self, ctx: &mut BotCtx<'_, V>) {
        let threshold = self.system.certification_threshold();
        let n = self.system.n();
        if self.certified.is_none() {
            if let Some((v, _)) = self.cert_support.iter().find(|(_, s)| s.len() >= threshold) {
                self.certified = Some(v.clone());
            }
        }
        if self.watch == Watch::Pending {
            if self.certified.is_some() {
                self.watch = Watch::Resolved(1);
            } else {
                // Resolve 0 only when no value can reach the threshold even
                // if every process not yet heard from supports it.
                let outstanding = n - self.cert_senders.len();
                let best = self.cert_support.values().map(Vec::len).max().unwrap_or(0);
                if best + outstanding < threshold {
                    self.watch = Watch::Resolved(0);
                }
            }
            if let Watch::Resolved(bit) = self.watch {
                self.start_inner(bit, ctx);
            }
        }
        self.try_finish(ctx);
    }

    fn start_inner(&mut self, bit: u8, ctx: &mut BotCtx<'_, V>) {
        debug_assert!(!self.inner_started);
        self.inner_started = true;
        self.inner = ConsensusNode::new(self.inner_cfg, bit).expect("config validated in new()");
        let mut events = Vec::new();
        {
            let mut shim = InnerCtx {
                outer: ctx,
                events: Vec::new(),
            };
            self.inner.on_start(&mut shim);
            // Replay buffered inner traffic in arrival order.
            for (from, msg) in std::mem::take(&mut self.pending_inner) {
                self.inner.on_message(from, msg, &mut shim);
            }
            events.append(&mut shim.events);
        }
        self.consume_inner_events(events, ctx);
    }

    fn consume_inner_events(&mut self, events: Vec<ConsensusEvent<u8>>, ctx: &mut BotCtx<'_, V>) {
        for ev in events {
            if let ConsensusEvent::Decided { value } = ev {
                self.bit_decided = Some(value);
            }
        }
        self.try_finish(ctx);
    }

    fn try_finish(&mut self, ctx: &mut BotCtx<'_, V>) {
        if self.done {
            return;
        }
        match self.bit_decided {
            Some(0) => {
                self.done = true;
                ctx.output(BotEvent::DecidedBottom);
            }
            Some(_) => {
                // Wait until the (unique) certificate is visible locally.
                if let Some(v) = self.certified.clone() {
                    self.done = true;
                    ctx.output(BotEvent::Decided { value: v });
                }
            }
            None => {}
        }
    }
}

/// Adapter exposing the outer context to the embedded binary consensus:
/// wraps its messages in [`BotMsg::Inner`] and captures its outputs.
struct InnerCtx<'a, 'b, V> {
    outer: &'a mut BotCtx<'b, V>,
    events: Vec<ConsensusEvent<u8>>,
}

impl<V: Value> Context<ProtocolMsg<u8>, ConsensusEvent<u8>> for InnerCtx<'_, '_, V> {
    fn me(&self) -> ProcessId {
        self.outer.me()
    }
    fn n(&self) -> usize {
        self.outer.n()
    }
    fn now(&self) -> minsync_net::VirtualTime {
        self.outer.now()
    }
    fn send(&mut self, to: ProcessId, msg: ProtocolMsg<u8>) {
        self.outer.send(to, BotMsg::Inner(msg));
    }
    fn broadcast(&mut self, msg: ProtocolMsg<u8>) {
        self.outer.broadcast(BotMsg::Inner(msg));
    }
    fn set_timer(&mut self, delay: u64) -> TimerId {
        self.outer.set_timer(delay)
    }
    fn cancel_timer(&mut self, timer: TimerId) {
        self.outer.cancel_timer(timer);
    }
    fn output(&mut self, event: ConsensusEvent<u8>) {
        self.events.push(event);
    }
    fn halt(&mut self) {
        // The embedded consensus never halts the outer node.
    }
    fn random(&mut self) -> u64 {
        self.outer.random()
    }
}

impl<V: Value> Node for BotConsensusNode<V> {
    type Msg = BotMsg<V>;
    type Output = BotEvent<V>;

    fn on_start(&mut self, ctx: &mut BotCtx<'_, V>) {
        let mut rb = RbEngine::new(self.system, ctx.me());
        let actions = rb.broadcast((), self.proposal.clone());
        self.cert_rb = Some(rb);
        self.apply_cert_rb(actions, ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: BotMsg<V>, ctx: &mut BotCtx<'_, V>) {
        match msg {
            BotMsg::CertRb(rb_msg) => {
                if let Some(mut rb) = self.cert_rb.take() {
                    let actions = rb.on_message(from, rb_msg);
                    self.cert_rb = Some(rb);
                    self.apply_cert_rb(actions, ctx);
                }
            }
            BotMsg::Inner(inner_msg) => {
                if self.inner_started {
                    let mut shim = InnerCtx {
                        outer: ctx,
                        events: Vec::new(),
                    };
                    self.inner.on_message(from, inner_msg, &mut shim);
                    let events = shim.events;
                    self.consume_inner_events(events, ctx);
                } else {
                    // The sender's watch resolved before ours: buffer until
                    // our binary consensus starts.
                    self.pending_inner.push((from, inner_msg));
                }
            }
        }
    }

    fn on_timer(&mut self, timer: TimerId, ctx: &mut BotCtx<'_, V>) {
        if self.inner_started {
            let mut shim = InnerCtx {
                outer: ctx,
                events: Vec::new(),
            };
            self.inner.on_timer(timer, &mut shim);
            let events = shim.events;
            self.consume_inner_events(events, ctx);
        }
    }

    fn label(&self) -> &'static str {
        "bot-consensus"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consensus::ConsensusConfig;
    use minsync_net::sim::SimBuilder;
    use minsync_net::{NetworkTopology, Node};
    use minsync_types::SystemConfig;

    type Msg = BotMsg<u64>;
    type Out = BotEvent<u64>;

    fn run(proposals: &[u64], seed: u64) -> Vec<Option<u64>> {
        let n = proposals.len();
        let t = (n - 1) / 3;
        let cfg = ConsensusConfig::paper(SystemConfig::new(n, t).unwrap());
        let mut builder = SimBuilder::new(NetworkTopology::all_timely(n, 3))
            .seed(seed)
            .max_events(3_000_000);
        for &p in proposals {
            let node: Box<dyn Node<Msg = Msg, Output = Out>> =
                Box::new(BotConsensusNode::new(cfg, p).unwrap());
            builder = builder.boxed_node(node);
        }
        let mut sim = builder.build();
        let report = sim.run_until(|outs| outs.len() == n);
        report
            .outputs
            .iter()
            .map(|o| match &o.event {
                BotEvent::Decided { value } => Some(*value),
                BotEvent::DecidedBottom => None,
            })
            .collect()
    }

    #[test]
    fn unanimous_decides_value() {
        let d = run(&[5, 5, 5, 5], 1);
        assert_eq!(d.len(), 4);
        assert!(d.iter().all(|v| *v == Some(5)), "{d:?}");
    }

    #[test]
    fn all_distinct_agrees_bottom_or_proposed() {
        for seed in 0..4 {
            let d = run(&[1, 2, 3, 4], seed);
            assert_eq!(d.len(), 4, "seed {seed}");
            assert!(d.windows(2).all(|w| w[0] == w[1]), "seed {seed}: {d:?}");
            if let Some(v) = d[0] {
                assert!((1..=4).contains(&v));
            }
        }
    }

    #[test]
    fn majority_never_loses_to_minority() {
        // 3 of 4 propose 9: 9 certifies (> (n+t)/2 = 2.5 → 3 deliveries);
        // 7 (one proposer) can never certify. Decision ∈ {9, ⊥}.
        for seed in 0..4 {
            let d = run(&[9, 9, 9, 7], seed);
            assert!(d.windows(2).all(|w| w[0] == w[1]), "seed {seed}");
            assert_ne!(d[0], Some(7), "seed {seed}: minority value certified?!");
        }
    }

    #[test]
    fn certification_watch_resolves_zero_only_when_mathematically_final() {
        let cfg = ConsensusConfig::paper(SystemConfig::new(4, 1).unwrap());
        let mut node: BotConsensusNode<u64> = BotConsensusNode::new(cfg, 1).unwrap();
        // Feed deliveries directly: 3 distinct values from 3 origins; the
        // 4th origin could still push any of them to the threshold (3), so
        // the watch must stay pending.
        node.cert_senders.push(minsync_types::ProcessId::new(0));
        node.cert_support
            .entry(10)
            .or_default()
            .push(minsync_types::ProcessId::new(0));
        node.cert_senders.push(minsync_types::ProcessId::new(1));
        node.cert_support
            .entry(20)
            .or_default()
            .push(minsync_types::ProcessId::new(1));
        // best = 1, outstanding = 2, threshold = 3: 1 + 2 = 3 ≥ 3 → pending.
        assert_eq!(node.watch, Watch::Pending);
        let outstanding = 4 - node.cert_senders.len();
        let best = node.cert_support.values().map(Vec::len).max().unwrap_or(0);
        assert!(best + outstanding >= cfg.system.certification_threshold());
    }

    #[test]
    fn kind_labels() {
        let m: BotMsg<u64> = BotMsg::Inner(ProtocolMsg::EaProp2 {
            round: minsync_types::Round::FIRST,
            value: 0,
        });
        assert_eq!(m.kind(), "EA_PROP2");
    }
}
