//! The m-valued Byzantine consensus algorithm — Section 6, Figure 4.
//!
//! Each process: (line 1) runs `CB[0]` on its proposal to obtain an initial
//! estimate proposed by a correct process, then loops: (line 4) `EA_propose`
//! the estimate — liveness; (line 5) adopt the returned value if `CB[0]`
//! certifies it as a correct process's proposal — validity; (line 6) run the
//! round's adopt-commit object — agreement; (line 7) on `commit`,
//! RB-broadcast `DECIDE`. A when-clause (line 9) decides as soon as
//! `DECIDE(v)` is RB-delivered from `t + 1` distinct processes.
//!
//! # Departures from the listing (all documented in DESIGN.md)
//!
//! * A process RB-broadcasts `DECIDE` at most once: after a first commit its
//!   estimate can never change (CONS-Agreement proof), so re-broadcasting in
//!   later committing rounds would be a duplicate RB instance with identical
//!   content.
//! * "Decides and stops" (line 9) stops the round loop but keeps servicing
//!   the RB layer (echo/ready): RB-Termination-2 — which carries the
//!   remaining correct processes to their own decisions — requires correct
//!   processes to keep participating in reliable broadcast.

use std::collections::BTreeMap;

use minsync_broadcast::{CbInstance, RbAction, RbActions, RbEngine};
use minsync_net::{Env, Node, TimerId};
use minsync_types::{ConfigError, ProcessId, Round, RoundSchedule, SystemConfig, Value};

use crate::adopt_commit::AcRound;
use crate::events::{AcTag, ConsensusEvent};
use crate::eventual_agreement::{EaAction, EaObject};
use crate::messages::{CbId, ProtocolMsg, RbTag};
use crate::timeout::TimeoutPolicy;
use crate::view_sync::ViewSynchronizer;

/// A deliberately seeded protocol bug, used only by the conformance
/// suite's mutation smoke: the schedule explorer must be able to find the
/// violation the mutation introduces, or the explorer itself is broken.
///
/// Runtime-selected (a field on [`ConsensusConfig`]) rather than
/// feature-gated so a single workspace build carries both the sound and
/// the broken automaton without cargo feature unification poisoning every
/// other crate's artifacts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SeededMutation {
    /// Adopt-commit waits for a witness of `n − t − 1` estimates instead of
    /// `n − t` (Figure 2 line 3 off by one). With `n = 4, t = 1` two
    /// partitioned halves can each assemble a unanimous 2-witness and
    /// commit different values — an agreement violation.
    AcQuorumOffByOne,
}

/// Static parameters of one consensus instance.
#[derive(Clone, Copy, Debug)]
pub struct ConsensusConfig {
    /// System size and fault tolerance.
    pub system: SystemConfig,
    /// Tuning parameter `k` of Section 5.4 (`0` = the paper's basic
    /// algorithm; `k` requires a ⟨t+1+k⟩bisource but shrinks the helper-set
    /// schedule from `C(n, n−t)` to `C(n, n−t+k)` sets).
    pub k: usize,
    /// Timeout growth policy for the EA object (Figure 3 line 5 /
    /// footnote 3).
    pub timeout: TimeoutPolicy,
    /// Stop proposing after this many rounds (the process keeps servicing
    /// RB so others stay live, but initiates nothing new). `None` =
    /// unbounded, the paper's semantics.
    pub max_rounds: Option<u64>,
    /// Seeded bug for mutation testing. `None` (every production
    /// constructor) runs the paper's algorithm unmodified.
    pub mutation: Option<SeededMutation>,
}

impl ConsensusConfig {
    /// The paper's defaults: `k = 0`, `timer[r] = r`, unbounded rounds.
    pub fn paper(system: SystemConfig) -> Self {
        ConsensusConfig {
            system,
            k: 0,
            timeout: TimeoutPolicy::paper(),
            max_rounds: None,
            mutation: None,
        }
    }

    /// Builds the round schedule implied by `system` and `k`.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] from [`RoundSchedule::new`] (invalid `k`
    /// or combinatorial overflow).
    pub fn schedule(&self) -> Result<RoundSchedule, ConfigError> {
        RoundSchedule::new(&self.system, self.k)
    }
}

/// Where the round loop of Figure 4 currently blocks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    /// Line 1: waiting for `CB[0]` to return.
    AwaitValid,
    /// Line 4: inside `EA_propose` for the current round.
    InEa,
    /// Line 6, first half (Figure 2 line 1): waiting for the AC round's CB.
    AwaitAcCb,
    /// Line 6, second half (Figure 2 line 3): waiting for the AC witness.
    AwaitAcEst,
    /// Stopped: decided, or `max_rounds` exhausted.
    Stopped,
}

/// The consensus automaton for one process — Figure 4 runnable on any
/// [`minsync_net`] substrate.
///
/// ```rust
/// use minsync_core::{ConsensusNode, ConsensusConfig, ConsensusEvent};
/// use minsync_net::{sim::SimBuilder, NetworkTopology};
/// use minsync_types::SystemConfig;
///
/// # fn main() -> Result<(), minsync_types::ConfigError> {
/// let system = SystemConfig::new(4, 1)?;
/// let cfg = ConsensusConfig::paper(system);
/// let topo = NetworkTopology::all_timely(4, 5);
/// let mut builder = SimBuilder::new(topo).seed(42);
/// for value in [10u64, 20, 10, 20] {
///     builder = builder.node(ConsensusNode::new(cfg, value)?);
/// }
/// let mut sim = builder.build();
/// let report = sim.run_until(|outs| {
///     outs.iter().filter(|o| matches!(o.event, ConsensusEvent::Decided { .. })).count() == 4
/// });
/// let decisions: Vec<u64> = report
///     .outputs
///     .iter()
///     .filter_map(|o| o.event.as_decision().copied())
///     .collect();
/// assert_eq!(decisions.len(), 4);
/// assert!(decisions.windows(2).all(|w| w[0] == w[1]), "agreement");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ConsensusNode<V> {
    cfg: ConsensusConfig,
    proposal: V,
    me: Option<ProcessId>,
    rb: Option<RbEngine<RbTag, V>>,
    /// `CB[0]` of line 1.
    cb0: CbInstance<V>,
    ea: EaObject<V>,
    ac_rounds: BTreeMap<Round, AcRound<V>>,
    /// Counts RB-delivered `DECIDE(v)` per value; `t + 1` triggers decision.
    decide_votes: CbInstance<V>,
    est: V,
    phase: Phase,
    /// Round advancement + round-timer ownership (see [`ViewSynchronizer`]).
    sync: ViewSynchronizer,
    decide_broadcast: bool,
    decided: Option<V>,
}

type Ctx<V> = Env<ProtocolMsg<V>, ConsensusEvent<V>>;

impl<V: Value> ConsensusNode<V> {
    /// Creates a node that will propose `proposal`.
    ///
    /// The process id is taken from the substrate at `on_start`; one node
    /// value works for any slot.
    ///
    /// # Errors
    ///
    /// Propagates schedule construction errors (invalid `k`, combinatorial
    /// overflow).
    pub fn new(cfg: ConsensusConfig, proposal: V) -> Result<Self, ConfigError> {
        let schedule = cfg.schedule()?;
        Ok(ConsensusNode {
            cfg,
            proposal: proposal.clone(),
            me: None,
            rb: None,
            cb0: CbInstance::new(cfg.system),
            // `me` is patched in on_start; placeholder id 0 is fine because
            // the EA object is rebuilt there.
            ea: EaObject::new(cfg.system, schedule, ProcessId::new(0), cfg.timeout),
            ac_rounds: BTreeMap::new(),
            decide_votes: CbInstance::new(cfg.system),
            est: proposal,
            phase: Phase::AwaitValid,
            sync: ViewSynchronizer::new(cfg.timeout),
            decide_broadcast: false,
            decided: None,
        })
    }

    /// The decided value, if this process has decided.
    pub fn decision(&self) -> Option<&V> {
        self.decided.as_ref()
    }

    /// The round the loop is currently in.
    pub fn current_round(&self) -> Round {
        self.sync.current()
    }

    /// The view synchronizer (round position + live round timers) — exposed
    /// for harness/telemetry inspection.
    pub fn synchronizer(&self) -> &ViewSynchronizer {
        &self.sync
    }

    /// The current estimate `est_i`.
    pub fn estimate(&self) -> &V {
        &self.est
    }

    // ------------------------------------------------------------------
    // Effect plumbing
    // ------------------------------------------------------------------

    fn rb_broadcast(&mut self, tag: RbTag, value: V, env: &mut Ctx<V>) {
        let mut rb = self.rb.take().expect("rb engine initialized at start");
        let actions = rb.broadcast(tag, value);
        self.rb = Some(rb);
        self.apply_rb(actions, env);
    }

    fn apply_rb(&mut self, actions: RbActions<RbTag, V>, env: &mut Ctx<V>) {
        for action in actions {
            match action {
                RbAction::Broadcast(m) => env.broadcast(ProtocolMsg::Rb(m)),
                RbAction::Deliver { origin, tag, value } => {
                    self.on_rb_delivered(origin, tag, value, env)
                }
            }
        }
    }

    fn apply_ea(&mut self, actions: Vec<EaAction<V>>, env: &mut Ctx<V>) {
        for action in actions {
            match action {
                EaAction::RbBroadcast { tag, value } => self.rb_broadcast(tag, value, env),
                EaAction::Broadcast(msg) => env.broadcast(msg),
                EaAction::SetTimer { round, delay } => {
                    self.sync.arm_with(round, delay, env);
                }
                EaAction::CancelTimer { round } => {
                    self.sync.cancel(round, env);
                }
                EaAction::Returned { round, value, fast } => {
                    self.on_ea_returned(round, value, fast, env)
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Protocol steps
    // ------------------------------------------------------------------

    fn on_rb_delivered(&mut self, origin: ProcessId, tag: RbTag, value: V, env: &mut Ctx<V>) {
        match tag {
            RbTag::CbVal(CbId::ConsValid) => {
                self.cb0.on_rb_delivered(origin, value);
                if self.phase == Phase::AwaitValid {
                    self.try_leave_line1(env);
                }
            }
            RbTag::CbVal(CbId::EaProp(r)) => {
                if self.decided.is_none() {
                    let acts = self.ea.on_cb_val_delivered(origin, r, value);
                    self.apply_ea(acts, env);
                }
            }
            RbTag::CbVal(CbId::AcProp(r)) => {
                self.ac_round(r).on_cb_val_delivered(origin, value);
                self.try_advance_ac(r, env);
            }
            RbTag::AcEst(r) => {
                self.ac_round(r).on_est_delivered(origin, value);
                self.try_advance_ac(r, env);
            }
            RbTag::Decide => {
                if let Some(v) = self.decide_votes.on_rb_delivered(origin, value) {
                    self.on_decided(v, env);
                }
            }
        }
    }

    fn ac_round(&mut self, r: Round) -> &mut AcRound<V> {
        let system = self.cfg.system;
        let mutation = self.cfg.mutation;
        self.ac_rounds.entry(r).or_insert_with(|| {
            let ac = AcRound::new(system);
            match mutation {
                Some(SeededMutation::AcQuorumOffByOne) => {
                    ac.with_quorum_override(system.quorum().saturating_sub(1))
                }
                None => ac,
            }
        })
    }

    /// Line 1 completion: `CB[0]` returned → enter round 1.
    fn try_leave_line1(&mut self, env: &mut Ctx<V>) {
        debug_assert_eq!(self.phase, Phase::AwaitValid);
        let Some(v) = self.cb0.returnable().cloned() else {
            return;
        };
        self.est = v;
        self.enter_round(Round::FIRST, env);
    }

    /// Lines 3–4: start round `r` and `EA_propose(r, est)`.
    fn enter_round(&mut self, r: Round, env: &mut Ctx<V>) {
        if let Some(max) = self.cfg.max_rounds {
            if r.get() > max {
                self.phase = Phase::Stopped;
                return;
            }
        }
        self.sync.advance_to(r);
        self.phase = Phase::InEa;
        env.output(ConsensusEvent::RoundStarted { round: r });
        let acts = self.ea.propose(r, self.est.clone());
        self.apply_ea(acts, env);
    }

    /// Line 5 plus entry into line 6.
    fn on_ea_returned(&mut self, round: Round, value: V, fast: bool, env: &mut Ctx<V>) {
        if self.decided.is_some() || self.phase != Phase::InEa || round != self.sync.current() {
            return;
        }
        // Line 5: adopt only values CB[0] certifies as coming from a
        // correct process.
        if self.cb0.is_valid(&value) {
            self.est = value.clone();
        }
        env.output(ConsensusEvent::EaReturned { round, value, fast });
        // Line 6, Figure 2 line 1: CB-broadcast AC_PROP(est).
        self.phase = Phase::AwaitAcCb;
        self.ac_round(round); // materialize
        self.rb_broadcast(RbTag::CbVal(CbId::AcProp(round)), self.est.clone(), env);
        self.try_advance_ac(round, env);
    }

    fn try_advance_ac(&mut self, r: Round, env: &mut Ctx<V>) {
        if self.decided.is_some() || r != self.sync.current() {
            return;
        }
        if self.phase == Phase::AwaitAcCb {
            let Some(est2) = self.ac_round(r).cb_returnable().cloned() else {
                return;
            };
            // Figure 2 lines 1–2: the CB-returned value becomes the
            // estimate RB-broadcast as AC_EST.
            self.ac_round(r).mark_est_sent();
            self.phase = Phase::AwaitAcEst;
            self.rb_broadcast(RbTag::AcEst(r), est2, env);
            // rb_broadcast may have recursed into try_advance_ac and
            // completed the round; re-check the phase before continuing.
            if self.phase != Phase::AwaitAcEst || self.sync.current() != r {
                return;
            }
        }
        if self.phase == Phase::AwaitAcEst {
            let Some((tag, mfa)) = self.ac_round(r).try_complete() else {
                return;
            };
            // Figure 4 line 6: adopt the AC outcome as the new estimate.
            self.est = mfa.clone();
            env.output(ConsensusEvent::AcReturned {
                round: r,
                tag,
                value: mfa.clone(),
            });
            // Line 7.
            if tag == AcTag::Commit && !self.decide_broadcast {
                self.decide_broadcast = true;
                env.output(ConsensusEvent::DecideBroadcast {
                    round: r,
                    value: mfa.clone(),
                });
                self.rb_broadcast(RbTag::Decide, mfa, env);
                if self.decided.is_some() {
                    return;
                }
            }
            // Line 8: next round.
            self.enter_round(r.next(), env);
        }
    }

    /// Line 9: `DECIDE(v)` RB-delivered from `t + 1` distinct processes.
    fn on_decided(&mut self, value: V, env: &mut Ctx<V>) {
        if self.decided.is_some() {
            return;
        }
        self.decided = Some(value.clone());
        self.phase = Phase::Stopped;
        // Cancel every pending timer: the round loop is over. The RB layer
        // stays live (see module docs).
        self.sync.cancel_all(env);
        // Release per-round state: a decided process ignores EA/AC traffic,
        // so the accumulated round maps are dead weight. (The RB engine is
        // kept: other correct processes still need its echoes/readies.)
        self.ac_rounds.clear();
        self.ea.prune_below(Round::new(u64::MAX));
        env.output(ConsensusEvent::Decided { value });
    }
}

impl<V: Value> Node for ConsensusNode<V> {
    type Msg = ProtocolMsg<V>;
    type Output = ConsensusEvent<V>;

    fn on_start(&mut self, env: &mut Ctx<V>) {
        let me = env.me();
        self.me = Some(me);
        self.rb = Some(RbEngine::new(self.cfg.system, me));
        self.ea = EaObject::new(
            self.cfg.system,
            self.cfg.schedule().expect("validated in new()"),
            me,
            self.cfg.timeout,
        );
        // Line 1: CB[0].CB_broadcast VALID(v_i).
        self.rb_broadcast(RbTag::CbVal(CbId::ConsValid), self.proposal.clone(), env);
    }

    fn on_message(&mut self, from: ProcessId, msg: ProtocolMsg<V>, env: &mut Ctx<V>) {
        match msg {
            ProtocolMsg::Rb(rb_msg) => {
                // The RB layer is serviced forever — even after deciding —
                // so other correct processes retain RB-Termination-2.
                if let Some(mut rb) = self.rb.take() {
                    let actions = rb.on_message(from, rb_msg);
                    self.rb = Some(rb);
                    self.apply_rb(actions, env);
                }
            }
            ProtocolMsg::EaProp2 { round, value } => {
                if self.decided.is_none() {
                    let acts = self.ea.on_prop2(from, round, value);
                    self.apply_ea(acts, env);
                }
            }
            ProtocolMsg::EaCoord { round, value } => {
                if self.decided.is_none() {
                    let acts = self.ea.on_coord(from, round, value);
                    self.apply_ea(acts, env);
                }
            }
            ProtocolMsg::EaRelay { round, value } => {
                if self.decided.is_none() {
                    let acts = self.ea.on_relay(from, round, value);
                    self.apply_ea(acts, env);
                }
            }
        }
    }

    fn on_timer(&mut self, timer: TimerId, env: &mut Ctx<V>) {
        if let Some(round) = self.sync.expire(timer) {
            if self.decided.is_none() {
                let acts = self.ea.on_timer_expired(round);
                self.apply_ea(acts, env);
            }
        }
    }

    fn label(&self) -> &'static str {
        "consensus"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minsync_net::sim::{SimBuilder, Simulation};
    use minsync_net::{ChannelTiming, DelayLaw, NetworkTopology};

    fn build_sim(
        n: usize,
        t: usize,
        proposals: &[u64],
        topo: NetworkTopology,
        seed: u64,
    ) -> Simulation<ProtocolMsg<u64>, ConsensusEvent<u64>> {
        let system = SystemConfig::new(n, t).unwrap();
        let cfg = ConsensusConfig::paper(system);
        let mut builder = SimBuilder::new(topo).seed(seed).max_events(5_000_000);
        for &p in proposals {
            builder = builder.node(ConsensusNode::new(cfg, p).unwrap());
        }
        builder.build()
    }

    fn decisions(report: &minsync_net::sim::RunReport<ConsensusEvent<u64>>) -> Vec<(usize, u64)> {
        report
            .outputs
            .iter()
            .filter_map(|o| o.event.as_decision().map(|v| (o.process.index(), *v)))
            .collect()
    }

    #[test]
    fn all_correct_same_proposal_decides_it() {
        let mut sim = build_sim(4, 1, &[9, 9, 9, 9], NetworkTopology::all_timely(4, 3), 1);
        let report = sim.run_until(|outs| {
            outs.iter()
                .filter(|o| o.event.as_decision().is_some())
                .count()
                == 4
        });
        let d = decisions(&report);
        assert_eq!(d.len(), 4, "stop reason {:?}", report.reason);
        assert!(
            d.iter().all(|&(_, v)| v == 9),
            "validity: only 9 was proposed"
        );
    }

    #[test]
    fn split_proposals_agree_on_a_proposed_value() {
        let mut sim = build_sim(4, 1, &[1, 2, 1, 2], NetworkTopology::all_timely(4, 3), 7);
        let report = sim.run_until(|outs| {
            outs.iter()
                .filter(|o| o.event.as_decision().is_some())
                .count()
                == 4
        });
        let d = decisions(&report);
        assert_eq!(d.len(), 4);
        let v = d[0].1;
        assert!(d.iter().all(|&(_, x)| x == v), "agreement violated: {d:?}");
        assert!(v == 1 || v == 2, "decided value must be proposed: {v}");
    }

    #[test]
    fn decides_under_random_asynchrony() {
        let topo = NetworkTopology::uniform(
            4,
            ChannelTiming::asynchronous(DelayLaw::Uniform { min: 1, max: 25 }),
        );
        for seed in 0..5 {
            let mut sim = build_sim(4, 1, &[3, 3, 5, 5], topo.clone(), seed);
            let report = sim.run_until(|outs| {
                outs.iter()
                    .filter(|o| o.event.as_decision().is_some())
                    .count()
                    == 4
            });
            let d = decisions(&report);
            assert_eq!(
                d.len(),
                4,
                "seed {seed}: no termination ({:?})",
                report.reason
            );
            assert!(d.windows(2).all(|w| w[0].1 == w[1].1), "seed {seed}: {d:?}");
        }
    }

    #[test]
    fn seven_processes_two_fault_slots_all_correct() {
        let mut sim = build_sim(
            7,
            2,
            &[1, 1, 1, 2, 2, 2, 1],
            NetworkTopology::all_timely(7, 2),
            3,
        );
        let report = sim.run_until(|outs| {
            outs.iter()
                .filter(|o| o.event.as_decision().is_some())
                .count()
                == 7
        });
        let d = decisions(&report);
        assert_eq!(d.len(), 7);
        assert!(d.windows(2).all(|w| w[0].1 == w[1].1));
    }

    #[test]
    fn round_telemetry_is_emitted() {
        let mut sim = build_sim(4, 1, &[4, 4, 4, 4], NetworkTopology::all_timely(4, 3), 1);
        let report = sim.run_until(|outs| {
            outs.iter()
                .filter(|o| o.event.as_decision().is_some())
                .count()
                == 4
        });
        assert!(report
            .outputs
            .iter()
            .any(|o| matches!(o.event, ConsensusEvent::RoundStarted { .. })));
        assert!(report
            .outputs
            .iter()
            .any(|o| matches!(o.event, ConsensusEvent::EaReturned { fast: true, .. })));
        assert!(report.outputs.iter().any(|o| matches!(
            o.event,
            ConsensusEvent::AcReturned {
                tag: AcTag::Commit,
                ..
            }
        )));
        assert!(report
            .outputs
            .iter()
            .any(|o| matches!(o.event, ConsensusEvent::DecideBroadcast { .. })));
    }

    #[test]
    fn max_rounds_stops_the_loop() {
        // One process alone cannot decide; with max_rounds it must stop
        // cleanly instead of spinning. Use 4 correct processes but a cap of
        // 0 rounds: everyone stops right after line 1.
        let system = SystemConfig::new(4, 1).unwrap();
        let cfg = ConsensusConfig {
            max_rounds: Some(0),
            ..ConsensusConfig::paper(system)
        };
        let mut builder = SimBuilder::new(NetworkTopology::all_timely(4, 3)).seed(1);
        for _ in 0..4 {
            builder = builder.node(ConsensusNode::new(cfg, 1u64).unwrap());
        }
        let mut sim = builder.build();
        let report = sim.run();
        assert!(decisions(&report).is_empty());
        assert!(!report
            .outputs
            .iter()
            .any(|o| matches!(o.event, ConsensusEvent::RoundStarted { .. })));
    }
}
