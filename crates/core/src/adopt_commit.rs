//! The Byzantine adopt-commit object — Section 3, Figure 2.
//!
//! Adopt-commit encapsulates the *safety* half of agreement: it never lets
//! two correct processes leave with contradictory commitments
//! (AC-Quasi-agreement), forces a committed value whenever the correct
//! processes already agree (AC-Obligation), and never emits a value only
//! Byzantine processes proposed (AC-Output domain). One AC object guards
//! each consensus round.
//!
//! Figure 2, for process `p_i`:
//!
//! 1. `est_i ← CB_broadcast AC_PROP(v_i)` — run a CB instance; the value it
//!    returns (a value proposed by a *correct* process) becomes the
//!    estimate;
//! 2. `RB_broadcast AC_EST(est_i)`;
//! 3. wait until `AC_EST` messages were RB-delivered from `n − t` different
//!    processes **and** their values belong to `cb_valid_i` (both sides of
//!    the predicate are monotone: deliveries accumulate and `cb_valid` only
//!    grows, so the wait is re-evaluated on each event);
//! 4. `MFA_i ←` most frequent value among that witness set;
//! 5. return `⟨commit, MFA_i⟩` if the witness is unanimous, else
//!    `⟨adopt, MFA_i⟩`.
//!
//! [`AcRound`] holds the per-round state inside the consensus automaton;
//! [`AcNode`] wraps a single AC object as a standalone network node for the
//! E2 experiments.

use std::collections::{BTreeMap, BTreeSet};

use minsync_broadcast::{CbInstance, RbAction, RbActions, RbEngine};
use minsync_net::{Env, Node};
use minsync_types::{ProcessId, Round, SystemConfig, Value};

use crate::events::AcTag;
use crate::messages::{CbId, ProtocolMsg, RbTag};

/// Result of an adopt-commit invocation: the tag and the (most frequent)
/// value.
pub type AcOutcome<V> = (AcTag, V);

/// Per-round adopt-commit state hosted by the consensus automaton.
///
/// The host performs the actual RB broadcasts; `AcRound` is the pure
/// bookkeeping: the embedded CB instance (line 1), the RB-delivered
/// estimates (line 3's wait), and the witness/MFA computation (lines 4–7).
#[derive(Clone, Debug)]
pub struct AcRound<V> {
    cfg: SystemConfig,
    /// CB instance of line 1 (`AC_PROP` values).
    cb: CbInstance<V>,
    /// RB-delivered `AC_EST` values in delivery order (first per origin —
    /// RB-Unicity makes later ones impossible anyway).
    ests: Vec<(ProcessId, V)>,
    est_senders: BTreeSet<ProcessId>,
    /// Set once the host executed lines 1–2 (CB returned, `AC_EST` sent).
    est_sent: bool,
    /// Witness size used by line 3 instead of `cfg.quorum()`, when set.
    ///
    /// This exists solely so the conformance suite can seed a deliberately
    /// broken adopt-commit (witness of `n − t − 1`) and prove the schedule
    /// explorer catches the resulting agreement violation. Production
    /// constructors never set it.
    quorum_override: Option<usize>,
    outcome: Option<AcOutcome<V>>,
}

impl<V: Value> AcRound<V> {
    /// Fresh state for one AC object.
    pub fn new(cfg: SystemConfig) -> Self {
        AcRound {
            cfg,
            cb: CbInstance::new(cfg),
            ests: Vec::new(),
            est_senders: BTreeSet::new(),
            est_sent: false,
            quorum_override: None,
            outcome: None,
        }
    }

    /// Replaces the line-3 witness size with `quorum` — a deliberately
    /// *unsound* knob for mutation testing (see the field docs). Passing
    /// anything below `cfg.quorum()` breaks AC-Quasi-agreement.
    #[must_use]
    pub fn with_quorum_override(mut self, quorum: usize) -> Self {
        self.quorum_override = Some(quorum);
        self
    }

    /// Feeds an RB delivery of `CB_VAL` for this AC's CB instance
    /// (Figure 1 line 4 applied to the `AC_PROP` exchange).
    pub fn on_cb_val_delivered(&mut self, from: ProcessId, value: V) {
        self.cb.on_rb_delivered(from, value);
    }

    /// The CB instance's pending return value: `Some` once `cb_valid ≠ ∅`
    /// (Figure 2 line 1 can complete).
    pub fn cb_returnable(&self) -> Option<&V> {
        self.cb.returnable()
    }

    /// The CB instance's current valid set (diagnostics).
    pub fn cb_valid(&self) -> BTreeSet<V> {
        self.cb.cb_valid()
    }

    /// Marks lines 1–2 done (the host RB-broadcast `AC_EST`).
    pub fn mark_est_sent(&mut self) {
        self.est_sent = true;
    }

    /// Whether lines 1–2 are done.
    pub fn est_sent(&self) -> bool {
        self.est_sent
    }

    /// Feeds an RB delivery of `AC_EST(value)` from `from` (line 3).
    pub fn on_est_delivered(&mut self, from: ProcessId, value: V) {
        if self.est_senders.insert(from) {
            self.ests.push((from, value));
        }
    }

    /// Evaluates the wait of line 3 and, if satisfied, computes lines 4–7.
    ///
    /// The witness set is the first `n − t` RB-delivered estimates (in
    /// delivery order) whose values are in `cb_valid` — a deterministic
    /// refinement of the paper's "the previous `(n−t)` messages". Returns
    /// the cached outcome on later calls (AC objects are one-shot).
    pub fn try_complete(&mut self) -> Option<AcOutcome<V>> {
        if let Some(out) = &self.outcome {
            return Some(out.clone());
        }
        if !self.est_sent {
            // The host has not executed lines 1–2; the paper's process
            // cannot be waiting at line 3 yet.
            return None;
        }
        let quorum = self.quorum_override.unwrap_or_else(|| self.cfg.quorum());
        let witness: Vec<&V> = self
            .ests
            .iter()
            .filter(|(_, v)| self.cb.is_valid(v))
            .map(|(_, v)| v)
            .take(quorum)
            .collect();
        if witness.len() < quorum {
            return None;
        }
        // Line 4: most frequent value; ties broken by smallest value so the
        // choice is deterministic ("if several, pi takes any of them").
        let mut counts: BTreeMap<&V, usize> = BTreeMap::new();
        for v in &witness {
            *counts.entry(v).or_insert(0) += 1;
        }
        let (mfa, count) = counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(v, c)| ((*v).clone(), *c))
            .expect("witness is non-empty");
        let tag = if count == quorum {
            AcTag::Commit
        } else {
            AcTag::Adopt
        };
        let outcome = (tag, mfa);
        self.outcome = Some(outcome.clone());
        Some(outcome)
    }

    /// The cached outcome, if the object already returned.
    pub fn outcome(&self) -> Option<&AcOutcome<V>> {
        self.outcome.as_ref()
    }

    /// Number of distinct `AC_EST` origins delivered so far.
    pub fn est_count(&self) -> usize {
        self.ests.len()
    }
}

/// Telemetry emitted by the standalone [`AcNode`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AcNodeEvent<V> {
    /// The AC object returned.
    Returned {
        /// Commit or adopt.
        tag: AcTag,
        /// The value.
        value: V,
    },
}

/// A standalone network node running a single `AC_propose(value)` call —
/// the paper's Figure 2 executed in isolation (experiment E2).
///
/// Message type is the full [`ProtocolMsg`] (EA messages are ignored), so
/// the same Byzantine behavior library applies.
#[derive(Debug)]
pub struct AcNode<V> {
    cfg: SystemConfig,
    proposal: V,
    rb: Option<RbEngine<RbTag, V>>,
    ac: AcRound<V>,
}

impl<V: Value> AcNode<V> {
    /// A node that will propose `proposal` at start.
    pub fn new(cfg: SystemConfig, proposal: V) -> Self {
        AcNode {
            cfg,
            proposal,
            rb: None,
            ac: AcRound::new(cfg),
        }
    }

    fn rb_actions(
        &mut self,
        actions: RbActions<RbTag, V>,
        env: &mut Env<ProtocolMsg<V>, AcNodeEvent<V>>,
    ) {
        for action in actions {
            match action {
                RbAction::Broadcast(m) => env.broadcast(ProtocolMsg::Rb(m)),
                RbAction::Deliver { origin, tag, value } => match tag {
                    RbTag::CbVal(CbId::AcProp(r)) if r == Round::FIRST => {
                        self.ac.on_cb_val_delivered(origin, value);
                    }
                    RbTag::AcEst(r) if r == Round::FIRST => {
                        self.ac.on_est_delivered(origin, value);
                    }
                    _ => {}
                },
            }
        }
        self.advance(env);
    }

    fn advance(&mut self, env: &mut Env<ProtocolMsg<V>, AcNodeEvent<V>>) {
        // Line 1 completion → line 2.
        if !self.ac.est_sent() {
            if let Some(est) = self.ac.cb_returnable().cloned() {
                self.ac.mark_est_sent();
                let rb = self.rb.as_mut().expect("started");
                let actions = rb.broadcast(RbTag::AcEst(Round::FIRST), est);
                self.rb_actions(actions, env);
                return; // rb_actions recursed into advance already
            }
        }
        // Line 3 wait → lines 4–7.
        if self.ac.outcome().is_none() {
            if let Some((tag, value)) = self.ac.try_complete() {
                env.output(AcNodeEvent::Returned { tag, value });
            }
        }
    }
}

impl<V: Value> Node for AcNode<V> {
    type Msg = ProtocolMsg<V>;
    type Output = AcNodeEvent<V>;

    fn on_start(&mut self, env: &mut Env<ProtocolMsg<V>, AcNodeEvent<V>>) {
        let mut rb = RbEngine::new(self.cfg, env.me());
        let actions = rb.broadcast(
            RbTag::CbVal(CbId::AcProp(Round::FIRST)),
            self.proposal.clone(),
        );
        self.rb = Some(rb);
        self.rb_actions(actions, env);
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: ProtocolMsg<V>,
        env: &mut Env<ProtocolMsg<V>, AcNodeEvent<V>>,
    ) {
        if let ProtocolMsg::Rb(rb_msg) = msg {
            if let Some(mut rb) = self.rb.take() {
                let actions = rb.on_message(from, rb_msg);
                self.rb = Some(rb);
                self.rb_actions(actions, env);
            }
        }
    }

    fn label(&self) -> &'static str {
        "adopt-commit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::new(4, 1).unwrap()
    }

    fn round_with_cb(values: &[(usize, u64)]) -> AcRound<u64> {
        let mut ac = AcRound::new(cfg());
        // Make every mentioned value CB-valid via t+1 = 2 supporters; a CB
        // instance accepts one value per origin, so each distinct value
        // gets its own pair of senders.
        let mut seen = BTreeSet::new();
        let mut next_sender = 0usize;
        for &(_, v) in values {
            if seen.insert(v) {
                ac.on_cb_val_delivered(ProcessId::new(next_sender), v);
                ac.on_cb_val_delivered(ProcessId::new(next_sender + 1), v);
                next_sender += 2;
            }
        }
        ac
    }

    #[test]
    fn cb_valid_gates_line1() {
        let mut ac: AcRound<u64> = AcRound::new(cfg());
        assert!(ac.cb_returnable().is_none());
        ac.on_cb_val_delivered(ProcessId::new(0), 9);
        assert!(ac.cb_returnable().is_none());
        ac.on_cb_val_delivered(ProcessId::new(1), 9);
        assert_eq!(ac.cb_returnable(), Some(&9));
    }

    #[test]
    fn unanimous_witness_commits() {
        let mut ac = round_with_cb(&[(0, 5), (1, 5), (2, 5)]);
        ac.mark_est_sent();
        for p in 0..3 {
            ac.on_est_delivered(ProcessId::new(p), 5);
        }
        assert_eq!(ac.try_complete(), Some((AcTag::Commit, 5)));
    }

    #[test]
    fn mixed_witness_adopts_most_frequent() {
        let mut ac = round_with_cb(&[(0, 5), (1, 5), (2, 7)]);
        ac.mark_est_sent();
        ac.on_est_delivered(ProcessId::new(0), 5);
        ac.on_est_delivered(ProcessId::new(1), 7);
        ac.on_est_delivered(ProcessId::new(2), 5);
        assert_eq!(ac.try_complete(), Some((AcTag::Adopt, 5)));
    }

    #[test]
    fn tie_breaks_deterministically_to_smallest() {
        // n = 13, t = 3 → quorum 10, plurality 4, m_max = 3: three values
        // can be valid simultaneously (each needs 4 distinct CB origins).
        let cfg13 = SystemConfig::new(13, 3).unwrap();
        let mut ac: AcRound<u64> = AcRound::new(cfg13);
        for (i, v) in [1u64, 2, 3].into_iter().enumerate() {
            for p in 0..4 {
                ac.on_cb_val_delivered(ProcessId::new(4 * i + p), v);
            }
        }
        ac.mark_est_sent();
        // Witness of 10: four 2s, four 1s, two 3s → tie between 1 and 2.
        for (p, v) in [
            (0, 2u64),
            (1, 2),
            (2, 2),
            (3, 2),
            (4, 1),
            (5, 1),
            (6, 1),
            (7, 1),
            (8, 3),
            (9, 3),
        ] {
            ac.on_est_delivered(ProcessId::new(p), v);
        }
        // Tie between 1 and 2 → smallest (1) wins.
        assert_eq!(ac.try_complete(), Some((AcTag::Adopt, 1)));
    }

    #[test]
    fn invalid_values_do_not_qualify() {
        let mut ac = round_with_cb(&[(0, 5)]);
        ac.mark_est_sent();
        // 99 is not CB-valid: these deliveries never qualify.
        ac.on_est_delivered(ProcessId::new(0), 99);
        ac.on_est_delivered(ProcessId::new(1), 99);
        ac.on_est_delivered(ProcessId::new(2), 99);
        assert_eq!(ac.try_complete(), None);
        // Valid ones eventually arrive.
        ac.on_est_delivered(ProcessId::new(3), 5);
        assert_eq!(ac.try_complete(), None, "only 1 valid est");
        let mut ac2 = round_with_cb(&[(0, 5)]);
        ac2.mark_est_sent();
        for p in 0..3 {
            ac2.on_est_delivered(ProcessId::new(p), 5);
        }
        assert_eq!(ac2.try_complete(), Some((AcTag::Commit, 5)));
    }

    #[test]
    fn late_cb_growth_unblocks_pending_ests() {
        // Estimates arrive before their value becomes valid: the wait
        // completes only after cb_valid catches up (monotone predicate).
        let mut ac: AcRound<u64> = AcRound::new(cfg());
        ac.mark_est_sent();
        for p in 0..3 {
            ac.on_est_delivered(ProcessId::new(p), 4);
        }
        assert_eq!(ac.try_complete(), None);
        ac.on_cb_val_delivered(ProcessId::new(0), 4);
        ac.on_cb_val_delivered(ProcessId::new(1), 4);
        assert_eq!(ac.try_complete(), Some((AcTag::Commit, 4)));
    }

    #[test]
    fn witness_is_first_quorum_in_delivery_order() {
        // 4 deliveries, quorum 3: the 4th must not affect the outcome.
        let mut ac = round_with_cb(&[(0, 5), (1, 6)]);
        ac.mark_est_sent();
        ac.on_est_delivered(ProcessId::new(0), 5);
        ac.on_est_delivered(ProcessId::new(1), 5);
        ac.on_est_delivered(ProcessId::new(2), 5);
        ac.on_est_delivered(ProcessId::new(3), 6);
        assert_eq!(ac.try_complete(), Some((AcTag::Commit, 5)));
    }

    #[test]
    fn outcome_is_cached_and_stable() {
        let mut ac = round_with_cb(&[(0, 5), (1, 6)]);
        ac.mark_est_sent();
        for p in 0..3 {
            ac.on_est_delivered(ProcessId::new(p), 5);
        }
        let first = ac.try_complete();
        // More deliveries cannot change a returned outcome.
        ac.on_est_delivered(ProcessId::new(3), 6);
        assert_eq!(ac.try_complete(), first);
    }

    #[test]
    fn duplicate_est_senders_ignored() {
        let mut ac = round_with_cb(&[(0, 5)]);
        ac.mark_est_sent();
        ac.on_est_delivered(ProcessId::new(0), 5);
        ac.on_est_delivered(ProcessId::new(0), 5);
        ac.on_est_delivered(ProcessId::new(0), 5);
        assert_eq!(ac.est_count(), 1);
        assert_eq!(ac.try_complete(), None);
    }

    #[test]
    fn quorum_override_shrinks_the_witness() {
        // n = 4, t = 1 → sound quorum 3. With the override at 2 the object
        // commits on a 2-unanimous witness — the seeded bug the conformance
        // explorer must catch.
        let mut ac = round_with_cb(&[(0, 5)]).with_quorum_override(2);
        ac.mark_est_sent();
        ac.on_est_delivered(ProcessId::new(0), 5);
        assert_eq!(ac.try_complete(), None);
        ac.on_est_delivered(ProcessId::new(1), 5);
        assert_eq!(ac.try_complete(), Some((AcTag::Commit, 5)));
    }

    #[test]
    fn no_outcome_before_est_sent() {
        // A process cannot be waiting at line 3 before executing lines 1–2.
        let mut ac = round_with_cb(&[(0, 5)]);
        for p in 0..3 {
            ac.on_est_delivered(ProcessId::new(p), 5);
        }
        assert_eq!(ac.try_complete(), None);
        ac.mark_est_sent();
        assert_eq!(ac.try_complete(), Some((AcTag::Commit, 5)));
    }
}
