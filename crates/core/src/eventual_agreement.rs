//! The round-based eventual agreement (EA) object — Section 5, Figure 3.
//!
//! EA provides `EA_propose(r, v)`, invoked once per round by every correct
//! process with consecutive round numbers. Its guarantees are deliberately
//! weak (EA-Validity only constrains all-same-input rounds), but under the
//! ✸⟨t+1⟩bisource assumption there are infinitely many rounds in which all
//! correct processes return one value ea-proposed by a correct process
//! (EA-Eventual agreement, Lemma 3) — which is exactly what the consensus
//! layer needs to terminate.
//!
//! Per round `r` (Figure 3):
//!
//! * lines 1–3: CB-broadcast the proposal (`EA_PROP1` over RB); once the
//!   CB instance returns `aux_i`, plain-broadcast `EA_PROP2[r](aux_i)`;
//!   wait for `n − t` `EA_PROP2` whose values are CB-valid;
//! * line 4: if that witness is unanimous, return its value (fast path);
//! * line 5: otherwise arm `timer[r]` with a growing timeout;
//! * lines 11–14 (coordinator): on the first `EA_PROP2[r]` from a member
//!   of `F(r)`, champion its value by broadcasting `EA_COORD[r]`;
//! * lines 15–19 (everyone): on `EA_COORD[r]` from the coordinator — or on
//!   timer expiry — broadcast `EA_RELAY[r]` carrying the championed value,
//!   or `⊥` if the timer fired first;
//! * lines 6–10: wait for `n − t` relays; return the first non-`⊥` relay
//!   value from an `F(r)` member, else the original proposal.
//!
//! # Implementation note (line-4 fast path and liveness)
//!
//! As printed, a process returning at line 4 never executes line 5, so its
//! `timer[r]` is never armed and — with a silent (Byzantine) coordinator —
//! it never broadcasts `EA_RELAY[r]`. Rounds mixing fast and slow returns
//! could then leave slow processes short of the `n − t` relays line 6 waits
//! for. We therefore treat lines 5 and 15–19 as unconditional round
//! infrastructure: a fast-returning process still arms its timer and still
//! relays; only its return value is produced early. This changes nothing
//! for processes following the paper's main path and restores
//! EA-Termination in mixed rounds (see DESIGN.md §4).

use std::collections::{BTreeMap, BTreeSet};

use minsync_broadcast::{CbInstance, RbAction, RbActions, RbEngine};
use minsync_net::{Env, Node, TimerId};
use minsync_types::{ProcessId, Round, RoundSchedule, SystemConfig, Value};

use crate::messages::{CbId, ProtocolMsg, RbTag};
use crate::timeout::TimeoutPolicy;
use crate::view_sync::ViewSynchronizer;

/// Effects the host must apply after feeding the EA object.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EaAction<V> {
    /// RB-broadcast `value` under `tag` through the host's RB engine
    /// (Figure 3 line 1: `tag` is always `CbVal(EaProp(r))`).
    RbBroadcast {
        /// RB instance tag.
        tag: RbTag,
        /// Value to broadcast.
        value: V,
    },
    /// Plain best-effort broadcast (`EA_PROP2` / `EA_COORD` / `EA_RELAY`).
    Broadcast(ProtocolMsg<V>),
    /// Arm `timer[round]` with `delay` ticks (Figure 3 line 5).
    SetTimer {
        /// The round whose timer to arm.
        round: Round,
        /// Timeout in ticks.
        delay: u64,
    },
    /// Disable `timer[round]` (Figure 3 line 16).
    CancelTimer {
        /// The round whose timer to cancel.
        round: Round,
    },
    /// `EA_propose(round, ·)` returned `value`; `fast` marks the line-4
    /// unanimity path.
    Returned {
        /// The round.
        round: Round,
        /// The returned value.
        value: V,
        /// True if returned at line 4.
        fast: bool,
    },
}

/// Progress of the proposing path within one round.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Stage {
    /// `EA_propose` not yet invoked for this round.
    NotProposed,
    /// Line 1: waiting for the CB instance to return `aux`.
    AwaitAux,
    /// Line 3: waiting for the `n − t` CB-valid `EA_PROP2` witness.
    AwaitProp2,
    /// Line 6: waiting for `n − t` relays.
    AwaitRelays,
    /// The invocation returned (line 4, 8, or 9).
    Returned,
}

/// Per-round state. When-clause state (coordinator / relay) is independent
/// of the proposing stage: those handlers are live even for rounds this
/// process has not reached.
#[derive(Clone, Debug)]
struct EaRound<V> {
    cb: CbInstance<V>,
    prop2: Vec<(ProcessId, V)>,
    prop2_senders: BTreeSet<ProcessId>,
    relays: Vec<(ProcessId, Option<V>)>,
    relay_senders: BTreeSet<ProcessId>,
    champion_sent: bool,
    coord_seen: bool,
    relay_sent: bool,
    timer_armed: bool,
    timer_expired: bool,
    proposal: Option<V>,
    stage: Stage,
}

impl<V: Value> EaRound<V> {
    fn new(cfg: SystemConfig) -> Self {
        EaRound {
            cb: CbInstance::new(cfg),
            prop2: Vec::new(),
            prop2_senders: BTreeSet::new(),
            relays: Vec::new(),
            relay_senders: BTreeSet::new(),
            champion_sent: false,
            coord_seen: false,
            relay_sent: false,
            timer_armed: false,
            timer_expired: false,
            proposal: None,
            stage: Stage::NotProposed,
        }
    }
}

/// The multi-round EA object state machine, hosted by a network node.
///
/// All methods return the [`EaAction`]s the host must apply; the host owns
/// the RB engine and the timers. Round state is created lazily so messages
/// for future rounds are buffered correctly.
#[derive(Clone, Debug)]
pub struct EaObject<V> {
    cfg: SystemConfig,
    schedule: RoundSchedule,
    me: ProcessId,
    policy: TimeoutPolicy,
    rounds: BTreeMap<Round, EaRound<V>>,
    /// Which block of `n` rounds `f_bitmap` describes (`u64::MAX` = none).
    f_block: u64,
    /// Dense membership bitmap of the cached block's helper set `F(r)`.
    f_bitmap: Vec<bool>,
}

impl<V: Value> EaObject<V> {
    /// Creates the EA object for process `me`.
    pub fn new(
        cfg: SystemConfig,
        schedule: RoundSchedule,
        me: ProcessId,
        policy: TimeoutPolicy,
    ) -> Self {
        EaObject {
            cfg,
            schedule,
            me,
            policy,
            rounds: BTreeMap::new(),
            f_block: u64::MAX,
            f_bitmap: Vec::new(),
        }
    }

    /// Refreshes the cached `F(r)` membership bitmap. The helper set is
    /// constant within each block of `n` rounds, so the combinatorial
    /// unranking (u128 arithmetic plus a fresh tree) runs once per block
    /// instead of once per received message; membership checks become one
    /// indexed load.
    fn refresh_f(&mut self, r: Round) {
        let block = (r.get() - 1) / self.cfg.n() as u64;
        if self.f_block == block {
            return;
        }
        self.f_bitmap.clear();
        self.f_bitmap.resize(self.cfg.n(), false);
        for p in self.schedule.f_set(r) {
            self.f_bitmap[p.index()] = true;
        }
        self.f_block = block;
    }

    /// The round schedule (coordinator and `F(r)` maps).
    pub fn schedule(&self) -> &RoundSchedule {
        &self.schedule
    }

    fn round(&mut self, r: Round) -> &mut EaRound<V> {
        let cfg = self.cfg;
        self.rounds.entry(r).or_insert_with(|| EaRound::new(cfg))
    }

    /// Invokes `EA_propose(r, value)` (Figure 3 line 1).
    ///
    /// # Panics
    ///
    /// Panics if already proposed for `r` — the paper requires one
    /// invocation per round.
    pub fn propose(&mut self, r: Round, value: V) -> Vec<EaAction<V>> {
        let round = self.round(r);
        assert!(
            round.stage == Stage::NotProposed,
            "EA_propose({r}) invoked twice"
        );
        round.proposal = Some(value.clone());
        round.stage = Stage::AwaitAux;
        let mut actions = vec![EaAction::RbBroadcast {
            tag: RbTag::CbVal(CbId::EaProp(r)),
            value,
        }];
        actions.extend(self.advance(r));
        actions
    }

    /// Feeds an RB delivery of `CB_VAL` for round `r`'s CB instance.
    pub fn on_cb_val_delivered(&mut self, from: ProcessId, r: Round, value: V) -> Vec<EaAction<V>> {
        self.round(r).cb.on_rb_delivered(from, value);
        self.advance(r)
    }

    /// Feeds a received `EA_PROP2[r]` (first per sender; §2.1 dedup).
    /// Also runs the coordinator when-clause (lines 11–14).
    pub fn on_prop2(&mut self, from: ProcessId, r: Round, value: V) -> Vec<EaAction<V>> {
        let coord = self.schedule.coordinator(r);
        self.refresh_f(r);
        let in_f = self.f_bitmap.get(from.index()).copied().unwrap_or(false);
        let me = self.me;
        let round = self.round(r);
        if !round.prop2_senders.insert(from) {
            return Vec::new();
        }
        round.prop2.push((from, value.clone()));
        let mut actions = Vec::new();
        // Lines 11–14: the coordinator champions the first EA_PROP2 it
        // receives from an F(r) member — independent of its own stage.
        if me == coord && in_f && !round.champion_sent {
            round.champion_sent = true;
            actions.push(EaAction::Broadcast(ProtocolMsg::EaCoord {
                round: r,
                value,
            }));
        }
        actions.extend(self.advance(r));
        actions
    }

    /// Feeds a received `EA_COORD[r]` (lines 15–19; only the first message
    /// from the round's coordinator counts).
    pub fn on_coord(&mut self, from: ProcessId, r: Round, value: V) -> Vec<EaAction<V>> {
        if from != self.schedule.coordinator(r) {
            return Vec::new(); // not the coordinator: discard
        }
        let round = self.round(r);
        if round.coord_seen {
            return Vec::new();
        }
        round.coord_seen = true;
        let mut actions = Vec::new();
        if !round.relay_sent {
            round.relay_sent = true;
            if round.timer_armed && !round.timer_expired {
                actions.push(EaAction::CancelTimer { round: r });
            }
            let v_coord = if round.timer_expired {
                None
            } else {
                Some(value)
            };
            actions.push(EaAction::Broadcast(ProtocolMsg::EaRelay {
                round: r,
                value: v_coord,
            }));
        }
        actions.extend(self.advance(r));
        actions
    }

    /// Feeds a received `EA_RELAY[r]` (first per sender).
    pub fn on_relay(&mut self, from: ProcessId, r: Round, value: Option<V>) -> Vec<EaAction<V>> {
        let round = self.round(r);
        if !round.relay_senders.insert(from) {
            return Vec::new();
        }
        round.relays.push((from, value));
        self.advance(r)
    }

    /// The host's `timer[r]` fired.
    pub fn on_timer_expired(&mut self, r: Round) -> Vec<EaAction<V>> {
        let round = self.round(r);
        if round.timer_expired {
            return Vec::new();
        }
        round.timer_expired = true;
        let mut actions = Vec::new();
        if !round.relay_sent {
            round.relay_sent = true;
            actions.push(EaAction::Broadcast(ProtocolMsg::EaRelay {
                round: r,
                value: None,
            }));
        }
        actions.extend(self.advance(r));
        actions
    }

    /// Drives the proposing-path state machine of round `r`.
    fn advance(&mut self, r: Round) -> Vec<EaAction<V>> {
        let quorum = self.cfg.quorum();
        let policy = self.policy;
        self.refresh_f(r);
        let f_bitmap = &self.f_bitmap;
        let cfg = self.cfg;
        let round = self.rounds.entry(r).or_insert_with(|| EaRound::new(cfg));
        let mut actions = Vec::new();
        loop {
            match round.stage {
                Stage::NotProposed | Stage::Returned => break,
                Stage::AwaitAux => {
                    // Line 1 completes when cb_valid ≠ ∅; line 2 broadcasts
                    // EA_PROP2(aux).
                    let Some(aux) = round.cb.returnable().cloned() else {
                        break;
                    };
                    round.stage = Stage::AwaitProp2;
                    actions.push(EaAction::Broadcast(ProtocolMsg::EaProp2 {
                        round: r,
                        value: aux,
                    }));
                }
                Stage::AwaitProp2 => {
                    // Line 3: first n−t CB-valid prop2 values, in delivery
                    // order.
                    let witness: Vec<&V> = round
                        .prop2
                        .iter()
                        .filter(|(_, v)| round.cb.is_valid(v))
                        .map(|(_, v)| v)
                        .take(quorum)
                        .collect();
                    if witness.len() < quorum {
                        break;
                    }
                    let first = witness[0].clone();
                    if witness.iter().all(|v| **v == first) {
                        // Line 4 fast path. Per the module-level note we
                        // still arm the timer so this process keeps
                        // participating in lines 15–19.
                        round.stage = Stage::Returned;
                        if !round.relay_sent && !round.timer_armed {
                            round.timer_armed = true;
                            actions.push(EaAction::SetTimer {
                                round: r,
                                delay: policy.timeout(r),
                            });
                        }
                        actions.push(EaAction::Returned {
                            round: r,
                            value: first,
                            fast: true,
                        });
                    } else {
                        // Line 5.
                        round.stage = Stage::AwaitRelays;
                        if !round.timer_armed {
                            round.timer_armed = true;
                            actions.push(EaAction::SetTimer {
                                round: r,
                                delay: policy.timeout(r),
                            });
                        }
                    }
                }
                Stage::AwaitRelays => {
                    // Line 6.
                    if round.relays.len() < quorum {
                        break;
                    }
                    round.stage = Stage::Returned;
                    // Lines 7–9: first non-⊥ relay from an F(r) member, in
                    // delivery order; otherwise the original proposal.
                    let witness_value = round
                        .relays
                        .iter()
                        .find(|(p, v)| {
                            v.is_some() && f_bitmap.get(p.index()).copied().unwrap_or(false)
                        })
                        .and_then(|(_, v)| v.clone());
                    let value = match witness_value {
                        Some(v) => v,
                        None => round
                            .proposal
                            .clone()
                            .expect("stage AwaitRelays implies proposal set"),
                    };
                    actions.push(EaAction::Returned {
                        round: r,
                        value,
                        fast: false,
                    });
                }
            }
        }
        actions
    }

    /// Whether `EA_propose(r, ·)` has returned at this process.
    pub fn has_returned(&self, r: Round) -> bool {
        self.rounds
            .get(&r)
            .is_some_and(|round| round.stage == Stage::Returned)
    }

    /// Releases state of rounds `< before` (long-lived hosts can bound
    /// memory once a round can no longer matter to them). When-clause
    /// participation for pruned rounds stops, which is safe only after this
    /// process decided or will never need those rounds' relays again.
    pub fn prune_below(&mut self, before: Round) {
        self.rounds.retain(|&r, _| r >= before);
    }

    /// Number of live round states (diagnostics).
    pub fn live_rounds(&self) -> usize {
        self.rounds.len()
    }
}

/// Telemetry emitted by the standalone [`EaNode`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EaNodeEvent<V> {
    /// `EA_propose(round, ·)` returned.
    Returned {
        /// The round.
        round: Round,
        /// Returned value.
        value: V,
        /// Line-4 fast path?
        fast: bool,
    },
}

/// A standalone node running the EA object round after round — experiment
/// E3's workhorse.
///
/// Each round it ea-proposes its current estimate and adopts whatever the
/// round returns, mirroring how the consensus layer uses EA (minus the
/// `CB[0]` validation). Halts after `max_rounds`.
#[derive(Debug)]
pub struct EaNode<V> {
    cfg: SystemConfig,
    estimate: V,
    max_rounds: u64,
    rb: Option<RbEngine<RbTag, V>>,
    ea: EaObject<V>,
    /// Round position + round-timer ownership.
    sync: ViewSynchronizer,
}

impl<V: Value> EaNode<V> {
    /// Creates the node with its initial estimate.
    ///
    /// # Panics
    ///
    /// Panics if `max_rounds == 0`.
    pub fn new(
        cfg: SystemConfig,
        schedule: RoundSchedule,
        me: ProcessId,
        policy: TimeoutPolicy,
        estimate: V,
        max_rounds: u64,
    ) -> Self {
        assert!(max_rounds > 0, "need at least one round");
        EaNode {
            cfg,
            estimate,
            max_rounds,
            rb: None,
            ea: EaObject::new(cfg, schedule, me, policy),
            sync: ViewSynchronizer::new(policy),
        }
    }

    fn apply(&mut self, actions: Vec<EaAction<V>>, env: &mut Env<ProtocolMsg<V>, EaNodeEvent<V>>) {
        for action in actions {
            match action {
                EaAction::RbBroadcast { tag, value } => {
                    let mut rb = self.rb.take().expect("started");
                    let rb_actions = rb.broadcast(tag, value);
                    self.rb = Some(rb);
                    self.apply_rb(rb_actions, env);
                }
                EaAction::Broadcast(msg) => env.broadcast(msg),
                EaAction::SetTimer { round, delay } => {
                    self.sync.arm_with(round, delay, env);
                }
                EaAction::CancelTimer { round } => {
                    self.sync.cancel(round, env);
                }
                EaAction::Returned { round, value, fast } => {
                    self.estimate = value.clone();
                    env.output(EaNodeEvent::Returned { round, value, fast });
                    if round.get() >= self.max_rounds {
                        env.halt();
                    } else if round == self.sync.current() {
                        self.sync.advance_to(round.next());
                        let next = self.ea.propose(self.sync.current(), self.estimate.clone());
                        self.apply(next, env);
                    }
                }
            }
        }
    }

    fn apply_rb(
        &mut self,
        actions: RbActions<RbTag, V>,
        env: &mut Env<ProtocolMsg<V>, EaNodeEvent<V>>,
    ) {
        for action in actions {
            match action {
                RbAction::Broadcast(m) => env.broadcast(ProtocolMsg::Rb(m)),
                RbAction::Deliver { origin, tag, value } => {
                    if let RbTag::CbVal(CbId::EaProp(r)) = tag {
                        let ea_actions = self.ea.on_cb_val_delivered(origin, r, value);
                        self.apply(ea_actions, env);
                    }
                }
            }
        }
    }
}

impl<V: Value> Node for EaNode<V> {
    type Msg = ProtocolMsg<V>;
    type Output = EaNodeEvent<V>;

    fn on_start(&mut self, env: &mut Env<ProtocolMsg<V>, EaNodeEvent<V>>) {
        self.rb = Some(RbEngine::new(self.cfg, env.me()));
        let actions = self.ea.propose(Round::FIRST, self.estimate.clone());
        self.apply(actions, env);
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: ProtocolMsg<V>,
        env: &mut Env<ProtocolMsg<V>, EaNodeEvent<V>>,
    ) {
        match msg {
            ProtocolMsg::Rb(rb_msg) => {
                if let Some(mut rb) = self.rb.take() {
                    let actions = rb.on_message(from, rb_msg);
                    self.rb = Some(rb);
                    self.apply_rb(actions, env);
                }
            }
            ProtocolMsg::EaProp2 { round, value } => {
                let actions = self.ea.on_prop2(from, round, value);
                self.apply(actions, env);
            }
            ProtocolMsg::EaCoord { round, value } => {
                let actions = self.ea.on_coord(from, round, value);
                self.apply(actions, env);
            }
            ProtocolMsg::EaRelay { round, value } => {
                let actions = self.ea.on_relay(from, round, value);
                self.apply(actions, env);
            }
        }
    }

    fn on_timer(&mut self, timer: TimerId, env: &mut Env<ProtocolMsg<V>, EaNodeEvent<V>>) {
        if let Some(round) = self.sync.expire(timer) {
            let actions = self.ea.on_timer_expired(round);
            self.apply(actions, env);
        }
    }

    fn label(&self) -> &'static str {
        "eventual-agreement"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::new(4, 1).unwrap()
    }

    fn ea(me: usize) -> EaObject<u64> {
        let c = cfg();
        EaObject::new(
            c,
            RoundSchedule::new(&c, 0).unwrap(),
            ProcessId::new(me),
            TimeoutPolicy::paper(),
        )
    }

    /// Makes `value` CB-valid at round `r` by feeding t+1 RB deliveries
    /// from the two given distinct origins (a CB instance accepts one value
    /// per origin, so different values need different senders).
    fn make_valid_from(
        obj: &mut EaObject<u64>,
        r: Round,
        value: u64,
        senders: [usize; 2],
    ) -> Vec<EaAction<u64>> {
        let mut acts = obj.on_cb_val_delivered(ProcessId::new(senders[0]), r, value);
        acts.extend(obj.on_cb_val_delivered(ProcessId::new(senders[1]), r, value));
        acts
    }

    fn make_valid(obj: &mut EaObject<u64>, r: Round, value: u64) -> Vec<EaAction<u64>> {
        make_valid_from(obj, r, value, [0, 1])
    }

    #[test]
    fn propose_emits_rb_broadcast() {
        let mut obj = ea(0);
        let acts = obj.propose(Round::FIRST, 5);
        assert_eq!(
            acts,
            vec![EaAction::RbBroadcast {
                tag: RbTag::CbVal(CbId::EaProp(Round::FIRST)),
                value: 5
            }]
        );
    }

    #[test]
    #[should_panic(expected = "invoked twice")]
    fn double_propose_rejected() {
        let mut obj = ea(0);
        let _ = obj.propose(Round::FIRST, 5);
        let _ = obj.propose(Round::FIRST, 5);
    }

    #[test]
    fn aux_then_prop2_broadcast() {
        let mut obj = ea(0);
        let r = Round::FIRST;
        let _ = obj.propose(r, 5);
        let acts = make_valid(&mut obj, r, 5);
        assert!(
            acts.contains(&EaAction::Broadcast(ProtocolMsg::EaProp2 {
                round: r,
                value: 5
            })),
            "line 2 must fire once aux is available: {acts:?}"
        );
    }

    #[test]
    fn unanimous_witness_returns_fast_and_still_arms_timer() {
        let mut obj = ea(0);
        let r = Round::FIRST;
        let _ = obj.propose(r, 5);
        let _ = make_valid(&mut obj, r, 5);
        let mut acts = Vec::new();
        for p in 0..3 {
            acts.extend(obj.on_prop2(ProcessId::new(p), r, 5));
        }
        assert!(acts.iter().any(|a| matches!(
            a,
            EaAction::Returned {
                value: 5,
                fast: true,
                ..
            }
        )));
        // Liveness bridge: the timer is armed anyway.
        assert!(acts.iter().any(|a| matches!(a, EaAction::SetTimer { .. })));
    }

    #[test]
    fn mixed_witness_arms_timer_no_return() {
        let mut obj = ea(0);
        let r = Round::FIRST;
        let _ = obj.propose(r, 5);
        let _ = make_valid(&mut obj, r, 5);
        let _ = make_valid_from(&mut obj, r, 9, [2, 3]);
        let mut acts = Vec::new();
        acts.extend(obj.on_prop2(ProcessId::new(0), r, 5));
        acts.extend(obj.on_prop2(ProcessId::new(1), r, 9));
        acts.extend(obj.on_prop2(ProcessId::new(2), r, 5));
        assert!(acts
            .iter()
            .any(|a| matches!(a, EaAction::SetTimer { delay: 1, .. })));
        assert!(!acts.iter().any(|a| matches!(a, EaAction::Returned { .. })));
    }

    #[test]
    fn invalid_prop2_values_never_qualify() {
        let mut obj = ea(1); // p2: not round 1's coordinator
        let r = Round::FIRST;
        let _ = obj.propose(r, 5);
        let _ = make_valid(&mut obj, r, 5);
        let mut acts = Vec::new();
        // 99 never becomes valid: three junk prop2s don't complete line 3.
        for p in 0..3 {
            acts.extend(obj.on_prop2(ProcessId::new(p), r, 99));
        }
        assert!(acts.is_empty());
    }

    #[test]
    fn coordinator_champions_first_f_member_prop2() {
        // Round 1 of n=4: coordinator p1 (index 0), F = {p1,p2,p3}.
        let mut obj = ea(0);
        let r = Round::FIRST;
        // No propose needed: lines 11–14 are a when-clause.
        let acts = obj.on_prop2(ProcessId::new(2), r, 7);
        assert!(acts.contains(&EaAction::Broadcast(ProtocolMsg::EaCoord {
            round: r,
            value: 7
        })));
        // Second F-member prop2 must not re-champion.
        let acts = obj.on_prop2(ProcessId::new(1), r, 8);
        assert!(!acts
            .iter()
            .any(|a| matches!(a, EaAction::Broadcast(ProtocolMsg::EaCoord { .. }))));
    }

    #[test]
    fn non_coordinator_never_champions() {
        let mut obj = ea(1); // p2 is not coordinator of round 1
        let acts = obj.on_prop2(ProcessId::new(2), Round::FIRST, 7);
        assert!(acts.is_empty());
    }

    #[test]
    fn prop2_from_outside_f_does_not_trigger_champion() {
        // Round 1, n=4: F(1) = {p1,p2,p3}; p4 (index 3) is outside.
        let mut obj = ea(0);
        let acts = obj.on_prop2(ProcessId::new(3), Round::FIRST, 7);
        assert!(acts.is_empty());
    }

    #[test]
    fn coord_message_triggers_relay_and_cancels_timer() {
        let mut obj = ea(1);
        let r = Round::FIRST;
        let _ = obj.propose(r, 5);
        let _ = make_valid(&mut obj, r, 5);
        let _ = make_valid_from(&mut obj, r, 9, [2, 3]);
        let mut acts = Vec::new();
        acts.extend(obj.on_prop2(ProcessId::new(0), r, 5));
        acts.extend(obj.on_prop2(ProcessId::new(1), r, 9));
        acts.extend(obj.on_prop2(ProcessId::new(2), r, 5));
        assert!(acts.iter().any(|a| matches!(a, EaAction::SetTimer { .. })));
        // Coordinator of round 1 is p1 (index 0).
        let acts = obj.on_coord(ProcessId::new(0), r, 9);
        assert!(acts.contains(&EaAction::CancelTimer { round: r }));
        assert!(acts.contains(&EaAction::Broadcast(ProtocolMsg::EaRelay {
            round: r,
            value: Some(9)
        })));
    }

    #[test]
    fn coord_from_wrong_sender_ignored() {
        let mut obj = ea(1);
        let acts = obj.on_coord(ProcessId::new(2), Round::FIRST, 9);
        assert!(acts.is_empty(), "only coord(r) may champion");
    }

    #[test]
    fn timer_expiry_relays_bottom() {
        let mut obj = ea(1);
        let r = Round::FIRST;
        let acts = obj.on_timer_expired(r);
        assert!(acts.contains(&EaAction::Broadcast(ProtocolMsg::EaRelay {
            round: r,
            value: None
        })));
        // EA_COORD arriving after expiry changes nothing (relay already out).
        let acts = obj.on_coord(ProcessId::new(0), r, 9);
        assert!(acts.is_empty());
    }

    #[test]
    fn relay_quorum_returns_f_member_value() {
        let mut obj = ea(1);
        let r = Round::FIRST;
        let _ = obj.propose(r, 5);
        let _ = make_valid(&mut obj, r, 5);
        let _ = make_valid_from(&mut obj, r, 9, [2, 3]);
        let _ = obj.on_prop2(ProcessId::new(0), r, 5);
        let _ = obj.on_prop2(ProcessId::new(1), r, 9);
        let _ = obj.on_prop2(ProcessId::new(2), r, 5);
        // Three relays; the non-⊥ one from F(1) = {p1,p2,p3} wins.
        let mut acts = Vec::new();
        acts.extend(obj.on_relay(ProcessId::new(3), r, None));
        acts.extend(obj.on_relay(ProcessId::new(0), r, Some(9)));
        acts.extend(obj.on_relay(ProcessId::new(2), r, None));
        assert!(
            acts.iter().any(|a| matches!(
                a,
                EaAction::Returned {
                    value: 9,
                    fast: false,
                    ..
                }
            )),
            "{acts:?}"
        );
    }

    #[test]
    fn all_bottom_relays_return_own_proposal() {
        let mut obj = ea(1);
        let r = Round::FIRST;
        let _ = obj.propose(r, 5);
        let _ = make_valid(&mut obj, r, 5);
        let _ = make_valid_from(&mut obj, r, 9, [2, 3]);
        let _ = obj.on_prop2(ProcessId::new(0), r, 5);
        let _ = obj.on_prop2(ProcessId::new(1), r, 9);
        let _ = obj.on_prop2(ProcessId::new(2), r, 5);
        let mut acts = Vec::new();
        for p in 0..3 {
            acts.extend(obj.on_relay(ProcessId::new(p), r, None));
        }
        assert!(
            acts.iter().any(|a| matches!(
                a,
                EaAction::Returned {
                    value: 5,
                    fast: false,
                    ..
                }
            )),
            "line 9 must return the ea-proposed value: {acts:?}"
        );
    }

    #[test]
    fn non_f_member_relay_value_is_ignored_for_line7() {
        let mut obj = ea(1);
        let r = Round::FIRST;
        let _ = obj.propose(r, 5);
        let _ = make_valid(&mut obj, r, 5);
        let _ = make_valid_from(&mut obj, r, 9, [2, 3]);
        let _ = obj.on_prop2(ProcessId::new(0), r, 5);
        let _ = obj.on_prop2(ProcessId::new(1), r, 9);
        let _ = obj.on_prop2(ProcessId::new(2), r, 5);
        // p4 ∉ F(1): its non-⊥ relay must not be selected.
        let mut acts = Vec::new();
        acts.extend(obj.on_relay(ProcessId::new(3), r, Some(77)));
        acts.extend(obj.on_relay(ProcessId::new(0), r, None));
        acts.extend(obj.on_relay(ProcessId::new(1), r, None));
        assert!(
            acts.iter().any(|a| matches!(
                a,
                EaAction::Returned {
                    value: 5,
                    fast: false,
                    ..
                }
            )),
            "{acts:?}"
        );
    }

    #[test]
    fn duplicate_prop2_and_relay_senders_discarded() {
        let mut obj = ea(1);
        let r = Round::FIRST;
        let _ = obj.on_prop2(ProcessId::new(2), r, 7);
        let acts = obj.on_prop2(ProcessId::new(2), r, 8);
        assert!(acts.is_empty());
        let _ = obj.on_relay(ProcessId::new(2), r, Some(1));
        let acts = obj.on_relay(ProcessId::new(2), r, Some(2));
        assert!(acts.is_empty());
    }

    #[test]
    fn prune_below_drops_old_rounds() {
        let mut obj = ea(0);
        for r in 1..=5u64 {
            let _ = obj.on_prop2(ProcessId::new(1), Round::new(r), 1);
        }
        assert_eq!(obj.live_rounds(), 5);
        obj.prune_below(Round::new(4));
        assert_eq!(obj.live_rounds(), 2);
    }

    #[test]
    fn messages_for_future_rounds_buffer() {
        let mut obj = ea(0);
        let future = Round::new(10);
        let _ = obj.on_prop2(ProcessId::new(1), future, 5);
        let _ = make_valid(&mut obj, future, 5);
        let _ = obj.on_prop2(ProcessId::new(2), future, 5);
        // Now propose: the buffered state counts immediately; one more
        // prop2 completes the witness.
        let acts = obj.propose(future, 5);
        assert!(acts
            .iter()
            .any(|a| matches!(a, EaAction::Broadcast(ProtocolMsg::EaProp2 { .. }))));
        let acts = obj.on_prop2(ProcessId::new(3), future, 5);
        assert!(
            acts.iter().any(|a| matches!(
                a,
                EaAction::Returned {
                    value: 5,
                    fast: true,
                    ..
                }
            )),
            "{acts:?}"
        );
    }
}
