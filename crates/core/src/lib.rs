//! Core algorithms of *Minimal Synchrony for Asynchronous Byzantine
//! Consensus* (Bouzid, Mostéfaoui, Raynal — PODC 2015).
//!
//! This crate implements the paper's primary contribution on top of the
//! `minsync-broadcast` and `minsync-net` substrates:
//!
//! * [`adopt_commit`] — the Byzantine adopt-commit object (Figure 2), the
//!   safety guard of every round;
//! * [`eventual_agreement`] — the round-based EA object (Figure 3) whose
//!   liveness rests solely on the ✸⟨t+1⟩bisource assumption, including the
//!   parameterized `k` variant of Section 5.4 (via
//!   [`RoundSchedule`](minsync_types::RoundSchedule));
//! * [`consensus`] — the complete algorithm (Figure 4): signature-free
//!   m-valued Byzantine consensus with `t < n/3`, optimal in its synchrony
//!   assumption;
//! * [`bot_variant`] — the ⊥-validity variant sketched in Section 7
//!   ("never decide a Byzantine value; decide ⊥ on disagreement").
//!
//! The protocols are event-driven automata implementing
//! [`Node`](minsync_net::Node); they run identically on the deterministic
//! simulator and the threaded runtime.
//!
//! # Quickstart
//!
//! ```rust
//! use minsync_core::{ConsensusNode, ConsensusConfig, ConsensusEvent};
//! use minsync_net::{sim::SimBuilder, NetworkTopology};
//! use minsync_types::SystemConfig;
//!
//! # fn main() -> Result<(), minsync_types::ConfigError> {
//! let system = SystemConfig::new(4, 1)?;
//! let cfg = ConsensusConfig::paper(system);
//! let mut builder = SimBuilder::new(NetworkTopology::all_timely(4, 5)).seed(7);
//! for v in [1u64, 2, 1, 2] {
//!     builder = builder.node(ConsensusNode::new(cfg, v)?);
//! }
//! let report = builder.build().run_until(|outs| {
//!     outs.iter().filter(|o| o.event.as_decision().is_some()).count() == 4
//! });
//! let first = report.outputs.iter().find_map(|o| o.event.as_decision()).unwrap();
//! assert!(*first == 1 || *first == 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adopt_commit;
pub mod bot_variant;
pub mod consensus;
mod events;
pub mod eventual_agreement;
mod messages;
mod timeout;
pub mod view_sync;

pub use adopt_commit::{AcNode, AcNodeEvent, AcOutcome, AcRound};
pub use bot_variant::{BotConsensusNode, BotEvent, BotMsg};
pub use consensus::{ConsensusConfig, ConsensusNode, SeededMutation};
pub use events::{AcTag, ConsensusEvent};
pub use eventual_agreement::{EaAction, EaNode, EaNodeEvent, EaObject};
pub use messages::{CbId, ProtocolMsg, RbTag};
pub use timeout::TimeoutPolicy;
pub use view_sync::ViewSynchronizer;
