//! Property tests driving the [`EaObject`] state machine directly with
//! arbitrary (including Byzantine-shaped) input sequences.

use minsync_core::{EaAction, EaObject, TimeoutPolicy};
use minsync_types::{ProcessId, Round, RoundSchedule, SystemConfig};
use proptest::prelude::*;

fn ea(me: usize, n: usize, t: usize) -> EaObject<u64> {
    let cfg = SystemConfig::new(n, t).unwrap();
    EaObject::new(
        cfg,
        RoundSchedule::new(&cfg, 0).unwrap(),
        ProcessId::new(me),
        TimeoutPolicy::paper(),
    )
}

/// One adversarial stimulus to the object.
#[derive(Clone, Debug)]
enum Stim {
    CbVal { from: usize, value: u64 },
    Prop2 { from: usize, value: u64 },
    Coord { from: usize, value: u64 },
    Relay { from: usize, value: Option<u64> },
    Timer,
}

fn stim_strategy(n: usize) -> impl Strategy<Value = Stim> {
    prop_oneof![
        (0..n, 0u64..3).prop_map(|(from, value)| Stim::CbVal { from, value }),
        (0..n, 0u64..3).prop_map(|(from, value)| Stim::Prop2 { from, value }),
        (0..n, 0u64..3).prop_map(|(from, value)| Stim::Coord { from, value }),
        (0..n, proptest::option::of(0u64..3)).prop_map(|(from, value)| Stim::Relay { from, value }),
        Just(Stim::Timer),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever arrives, in whatever order: no panics, at most one
    /// `Returned` per round, at most one relay broadcast per round, at most
    /// one champion per round, and any returned value with an all-correct
    /// F(r) witness chain is sane.
    #[test]
    fn ea_object_invariants_under_arbitrary_inputs(
        me in 0usize..4,
        propose_at in 0usize..20,
        stims in proptest::collection::vec(stim_strategy(4), 1..60),
    ) {
        let mut obj = ea(me, 4, 1);
        let r = Round::FIRST;
        let mut returned = 0usize;
        let mut relays = 0usize;
        let mut champions = 0usize;
        let mut count_actions = |actions: Vec<EaAction<u64>>| {
            for a in actions {
                match a {
                    EaAction::Returned { .. } => returned += 1,
                    EaAction::Broadcast(minsync_core::ProtocolMsg::EaRelay { .. }) => relays += 1,
                    EaAction::Broadcast(minsync_core::ProtocolMsg::EaCoord { .. }) => {
                        champions += 1
                    }
                    _ => {}
                }
            }
        };
        for (i, stim) in stims.iter().enumerate() {
            if i == propose_at {
                count_actions(obj.propose(r, 1));
            }
            let actions = match *stim {
                Stim::CbVal { from, value } => {
                    obj.on_cb_val_delivered(ProcessId::new(from), r, value)
                }
                Stim::Prop2 { from, value } => obj.on_prop2(ProcessId::new(from), r, value),
                Stim::Coord { from, value } => obj.on_coord(ProcessId::new(from), r, value),
                Stim::Relay { from, value } => obj.on_relay(ProcessId::new(from), r, value),
                Stim::Timer => obj.on_timer_expired(r),
            };
            count_actions(actions);
        }
        prop_assert!(returned <= 1, "EA_propose returned {returned} times");
        prop_assert!(relays <= 1, "EA_RELAY broadcast {relays} times");
        prop_assert!(champions <= 1, "EA_COORD broadcast {champions} times");
        if returned == 1 {
            prop_assert!(obj.has_returned(r));
        }
    }

    /// EA-Validity (Lemma 1): if every correct process ea-proposes `v` and
    /// only `v` is CB-valid, the object can only return `v` — under any
    /// message schedule, including Byzantine prop2 junk (whose values never
    /// validate) and arbitrary coordinator messages for *other* values.
    #[test]
    fn ea_validity_under_unanimous_proposals(
        me in 0usize..4,
        order in proptest::collection::vec(0usize..4, 4..12),
        junk_from in 0usize..4,
    ) {
        let v = 7u64;
        let mut obj = ea(me, 4, 1);
        let r = Round::FIRST;
        let mut actions = obj.propose(r, v);
        // Byzantine junk prop2 first: never validates, never qualifies.
        actions.extend(obj.on_prop2(ProcessId::new(junk_from), r, 99));
        // CB validation of v from t+1 = 2 origins.
        actions.extend(obj.on_cb_val_delivered(ProcessId::new(0), r, v));
        actions.extend(obj.on_cb_val_delivered(ProcessId::new(1), r, v));
        // Correct prop2s (first per sender counts) in arbitrary order.
        for &p in &order {
            actions.extend(obj.on_prop2(ProcessId::new(p), r, v));
        }
        let returns: Vec<&EaAction<u64>> = actions
            .iter()
            .filter(|a| matches!(a, EaAction::Returned { .. }))
            .collect();
        for a in returns {
            if let EaAction::Returned { value, .. } = a {
                prop_assert_eq!(*value, v, "EA-Validity violated");
            }
        }
    }
}
