//! A documented edge of Figure 3 (see DESIGN.md §4): within one round, a
//! process can return via the line-4 fast path while another returns the
//! coordinator's champion — and the two values may differ.
//!
//! This does **not** violate the EA specification: EA-Validity only
//! constrains rounds where all correct processes propose the same value,
//! and EA-Eventual-agreement only promises infinitely many *good* rounds —
//! which Lemma 3 supplies through the bisource. The test pins down the
//! behavior so the subtlety stays visible, and checks the liveness bridge
//! (fast-returners still arm their timer and relay).

use minsync_core::{EaAction, EaObject, ProtocolMsg, TimeoutPolicy};
use minsync_types::{ProcessId, Round, RoundSchedule, SystemConfig};

fn ea(me: usize) -> EaObject<u64> {
    let cfg = SystemConfig::new(4, 1).unwrap();
    EaObject::new(
        cfg,
        RoundSchedule::new(&cfg, 0).unwrap(),
        ProcessId::new(me),
        TimeoutPolicy::paper(),
    )
}

/// Validates `value` at round `r` via two distinct RB origins.
fn validate(obj: &mut EaObject<u64>, r: Round, value: u64, origins: [usize; 2]) {
    let _ = obj.on_cb_val_delivered(ProcessId::new(origins[0]), r, value);
    let _ = obj.on_cb_val_delivered(ProcessId::new(origins[1]), r, value);
}

#[test]
fn fast_path_and_champion_can_disagree_within_a_round() {
    let r = Round::FIRST;

    // Process A (p2): sees a unanimous 0-witness → fast-returns 0.
    let mut a = ea(1);
    let _ = a.propose(r, 0);
    validate(&mut a, r, 0, [0, 1]);
    validate(&mut a, r, 9, [2, 3]);
    let mut acts_a = Vec::new();
    for p in 0..3 {
        acts_a.extend(a.on_prop2(ProcessId::new(p), r, 0));
    }
    let fast_a = acts_a.iter().find_map(|x| match x {
        EaAction::Returned { value, fast, .. } => Some((*value, *fast)),
        _ => None,
    });
    assert_eq!(fast_a, Some((0, true)), "A fast-returns 0: {acts_a:?}");
    // Liveness bridge: despite returning, A armed its round timer so it
    // will still relay (⊥ on expiry, or the champion).
    assert!(
        acts_a
            .iter()
            .any(|x| matches!(x, EaAction::SetTimer { .. })),
        "bridge: fast path must still arm the timer: {acts_a:?}"
    );

    // Process B (p4): sees a mixed witness → timer path; the round-1
    // coordinator (p1 ∈ F(1)) champions 9; B relays and returns it.
    let mut b = ea(3);
    let _ = b.propose(r, 9);
    validate(&mut b, r, 0, [0, 1]);
    validate(&mut b, r, 9, [2, 3]);
    let _ = b.on_prop2(ProcessId::new(0), r, 0);
    let _ = b.on_prop2(ProcessId::new(1), r, 9);
    let _ = b.on_prop2(ProcessId::new(2), r, 0);
    // Coordinator's champion arrives before B's timer expires.
    let acts = b.on_coord(ProcessId::new(0), r, 9);
    assert!(
        acts.contains(&EaAction::Broadcast(ProtocolMsg::EaRelay {
            round: r,
            value: Some(9)
        })),
        "B relays the champion: {acts:?}"
    );
    // Relay quorum: the coordinator's own relay (9, from F(1)) plus ⊥s.
    let mut acts_b = Vec::new();
    acts_b.extend(b.on_relay(ProcessId::new(0), r, Some(9)));
    acts_b.extend(b.on_relay(ProcessId::new(2), r, None));
    acts_b.extend(b.on_relay(ProcessId::new(3), r, Some(9)));
    let slow_b = acts_b.iter().find_map(|x| match x {
        EaAction::Returned { value, fast, .. } => Some((*value, *fast)),
        _ => None,
    });
    assert_eq!(
        slow_b,
        Some((9, false)),
        "B returns the champion: {acts_b:?}"
    );

    // The documented tension: same round, two correct processes, two
    // different returns (0 fast at A, 9 slow at B). EA tolerates this —
    // the consensus layer's adopt-commit absorbs it, and Lemma 3's rounds
    // (bisource-coordinated, X⁺ ⊆ F(r), timeout > 2δ) are the ones that
    // actually unify the system.
    assert_ne!(fast_a.unwrap().0, slow_b.unwrap().0);
}

#[test]
fn mixed_round_does_not_break_consensus_safety() {
    // End-to-end: engineered proposals that maximize fast/slow mixing must
    // still satisfy agreement + validity (the AC layer's job).
    use minsync_core::{ConsensusConfig, ConsensusEvent, ConsensusNode};
    use minsync_net::sim::SimBuilder;
    use minsync_net::{ChannelTiming, DelayLaw, NetworkTopology};

    let system = SystemConfig::new(4, 1).unwrap();
    let cfg = ConsensusConfig::paper(system);
    for seed in 0..10 {
        let topo = NetworkTopology::uniform(
            4,
            ChannelTiming::asynchronous(DelayLaw::Uniform { min: 1, max: 35 }),
        );
        let mut builder = SimBuilder::new(topo).seed(seed).max_events(3_000_000);
        for v in [0u64, 9, 0, 9] {
            builder = builder.node(ConsensusNode::new(cfg, v).unwrap());
        }
        let mut sim = builder.build();
        let report = sim.run_until(|outs| {
            outs.iter()
                .filter(|o| o.event.as_decision().is_some())
                .count()
                == 4
        });
        let decisions: Vec<u64> = report
            .outputs
            .iter()
            .filter_map(|o| o.event.as_decision().copied())
            .collect();
        assert_eq!(decisions.len(), 4, "seed {seed}");
        assert!(
            decisions.windows(2).all(|w| w[0] == w[1]),
            "seed {seed}: {decisions:?}"
        );
        assert!(decisions[0] == 0 || decisions[0] == 9);
        let _ = ConsensusEvent::Decided { value: 0u64 };
    }
}
