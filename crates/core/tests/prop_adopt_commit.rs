//! Property tests of the adopt-commit state machine (Figure 2) under
//! arbitrary delivery orders and Byzantine-shaped inputs.

use minsync_core::{AcRound, AcTag};
use minsync_types::{ProcessId, SystemConfig};
use proptest::prelude::*;

/// Replays a run of one AC object at one process: CB validations and
/// AC_EST deliveries interleaved in an arbitrary order.
#[derive(Clone, Debug)]
enum Input {
    CbVal { from: usize, value: u64 },
    Est { from: usize, value: u64 },
}

fn input_strategy(n: usize, values: u64) -> impl Strategy<Value = Input> {
    prop_oneof![
        (0..n, 0..values).prop_map(|(from, value)| Input::CbVal { from, value }),
        (0..n, 0..values).prop_map(|(from, value)| Input::Est { from, value }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Whatever the interleaving: the outcome (if any) is stable once
    /// produced, carries a CB-valid value, and an outcome only exists after
    /// `n − t` qualifying estimates.
    #[test]
    fn outcome_is_stable_and_cb_valid(
        inputs in proptest::collection::vec(input_strategy(4, 3), 0..40),
        est_sent_at in 0usize..40,
    ) {
        let cfg = SystemConfig::new(4, 1).unwrap();
        let mut ac: AcRound<u64> = AcRound::new(cfg);
        let mut first_outcome: Option<(AcTag, u64)> = None;
        for (i, input) in inputs.iter().enumerate() {
            if i == est_sent_at {
                ac.mark_est_sent();
            }
            match *input {
                Input::CbVal { from, value } => {
                    ac.on_cb_val_delivered(ProcessId::new(from), value)
                }
                Input::Est { from, value } => ac.on_est_delivered(ProcessId::new(from), value),
            }
            if let Some(out) = ac.try_complete() {
                match &first_outcome {
                    None => {
                        // The value must be CB-valid at this point.
                        prop_assert!(
                            ac.cb_valid().contains(&out.1),
                            "outcome value {} not CB-valid", out.1
                        );
                        first_outcome = Some(out);
                    }
                    Some(first) => prop_assert_eq!(&out, first, "outcome changed"),
                }
            }
        }
        if first_outcome.is_some() {
            prop_assert!(ac.est_count() >= 1);
        }
    }

    /// AC-Quasi-agreement across two processes of the *same* execution: if
    /// the RB layer delivers the same (origin, value) pairs — as
    /// RB-Unicity + RB-Termination-2 guarantee — then a commit at one
    /// process forces the same value at the other, whatever the per-process
    /// delivery orders.
    #[test]
    fn quasi_agreement_across_delivery_orders(
        // One global assignment: what each origin RB-broadcast (0/1),
        // with per-origin CB support baked in.
        assignment in proptest::collection::vec(0u64..2, 7),
        order_a in Just(()).prop_perturb(|_, mut rng| {
            let mut v: Vec<usize> = (0..7).collect();
            for i in (1..v.len()).rev() {
                let j = (rng.next_u32() as usize) % (i + 1);
                v.swap(i, j);
            }
            v
        }),
        order_b in Just(()).prop_perturb(|_, mut rng| {
            let mut v: Vec<usize> = (0..7).collect();
            for i in (1..v.len()).rev() {
                let j = (rng.next_u32() as usize) % (i + 1);
                v.swap(i, j);
            }
            v
        }),
    ) {
        let cfg = SystemConfig::new(7, 2).unwrap();
        let run = |order: &[usize]| {
            let mut ac: AcRound<u64> = AcRound::new(cfg);
            // CB validation: every proposed value is supported by its
            // proposers (same at both processes — CB-Set Agreement).
            for (origin, &v) in assignment.iter().enumerate() {
                ac.on_cb_val_delivered(ProcessId::new(origin), v);
            }
            ac.mark_est_sent();
            for &origin in order {
                ac.on_est_delivered(ProcessId::new(origin), assignment[origin]);
            }
            ac.try_complete()
        };
        let a = run(&order_a);
        let b = run(&order_b);
        if let (Some((tag_a, va)), Some((tag_b, vb))) = (a, b) {
            if tag_a == AcTag::Commit {
                prop_assert_eq!(va, vb, "commit at A, different value at B");
            }
            if tag_b == AcTag::Commit {
                prop_assert_eq!(va, vb, "commit at B, different value at A");
            }
        }
    }

    /// AC-Obligation: unanimous CB-valid estimates always commit.
    #[test]
    fn unanimous_always_commits(
        order in Just(()).prop_perturb(|_, mut rng| {
            let mut v: Vec<usize> = (0..7).collect();
            for i in (1..v.len()).rev() {
                let j = (rng.next_u32() as usize) % (i + 1);
                v.swap(i, j);
            }
            v
        }),
        value in 0u64..100,
    ) {
        let cfg = SystemConfig::new(7, 2).unwrap();
        let mut ac: AcRound<u64> = AcRound::new(cfg);
        for origin in 0..7 {
            ac.on_cb_val_delivered(ProcessId::new(origin), value);
        }
        ac.mark_est_sent();
        let mut outcome = None;
        for &origin in &order {
            ac.on_est_delivered(ProcessId::new(origin), value);
            outcome = ac.try_complete();
        }
        prop_assert_eq!(outcome, Some((AcTag::Commit, value)));
    }
}
