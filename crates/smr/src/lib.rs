//! State-machine replication on top of the paper's consensus: a pipeline of
//! independent consensus instances, one per log slot.
//!
//! This is the application the paper's introduction motivates — and the
//! standard way a single-shot consensus object is consumed downstream. Each
//! [`ReplicaNode`] runs one [`ConsensusNode`] per slot behind a
//! slot-stamping adapter:
//!
//! * slot `s + 1` starts locally once slot `s` commits (pipelined, not
//!   lock-stepped: different replicas may be several slots apart);
//! * messages for slots a replica has not reached yet are buffered and
//!   replayed on entry;
//! * decided instances keep servicing reliable broadcast, so laggards
//!   always catch up (RB-Termination-2 per slot).
//!
//! Proposals come from a [`ProposalSource`]: the application-supplied rule
//! for what a replica proposes in each slot. **Feasibility caveat** — the
//! paper's consensus is m-valued: across the *correct* replicas, each slot
//! may see at most `⌊(n − t − 1)/t⌋` distinct proposals. Sources that draw
//! from a small shared command pool (e.g. the per-client queues of
//! [`TwoClientSource`]) satisfy this by construction.
//!
//! ```rust
//! use minsync_net::{sim::SimBuilder, NetworkTopology};
//! use minsync_smr::{collect_logs, ReplicaNode, SmrEvent, TwoClientSource};
//! use minsync_types::SystemConfig;
//! use minsync_core::ConsensusConfig;
//!
//! # fn main() -> Result<(), minsync_types::ConfigError> {
//! let system = SystemConfig::new(4, 1)?;
//! let cfg = ConsensusConfig::paper(system);
//! let mut builder = SimBuilder::new(NetworkTopology::all_timely(4, 3)).seed(7);
//! for i in 0..4 {
//!     builder = builder.node(ReplicaNode::new(cfg, TwoClientSource::new(1 + (i as u64 % 2)), 4));
//! }
//! let mut sim = builder.build();
//! let report = sim.run_until(|outs| {
//!     (0..4).all(|p| outs.iter().filter(|o| o.process.index() == p).count() >= 4)
//! });
//! let logs = collect_logs(&report.outputs);
//! let reference = logs.values().next().unwrap().clone();
//! assert!(logs.values().all(|l| *l == reference), "replicated logs agree");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};

use minsync_core::{ConsensusConfig, ConsensusEvent, ConsensusNode, ProtocolMsg};
use minsync_net::sim::OutputRecord;
use minsync_net::{Effect, Env, Node, TimerId};
use minsync_types::{ProcessId, Value};

/// Consensus traffic stamped with its log slot (1-based).
pub type SlotMsg<V> = (u64, ProtocolMsg<V>);

/// Observable output of a replica.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SmrEvent<V> {
    /// Slot `slot` committed `command` at this replica.
    Committed {
        /// 1-based log slot.
        slot: u64,
        /// The decided command.
        command: V,
    },
}

/// Application rule deciding what a replica proposes for each slot.
///
/// `log` is the replica's committed prefix (slots `1..=log.len()`).
/// Implementations must keep the per-slot proposal diversity across correct
/// replicas within the m-valued feasibility bound (see crate docs).
pub trait ProposalSource<V>: Send {
    /// The proposal for `slot` (1-based), given the committed prefix.
    fn propose(&mut self, slot: u64, log: &[V]) -> V;
}

impl<V, F> ProposalSource<V> for F
where
    F: FnMut(u64, &[V]) -> V + Send,
{
    fn propose(&mut self, slot: u64, log: &[V]) -> V {
        self(slot, log)
    }
}

/// A canonical feasibility-safe source: two client command streams
/// (commands encoded `client·1000 + seq`), each replica pushing one
/// client's next command — at most two distinct proposals per slot.
#[derive(Clone, Debug)]
pub struct TwoClientSource {
    preferred_client: u64,
}

impl TwoClientSource {
    /// Creates a source pushing `preferred_client`'s stream (1 or 2).
    ///
    /// # Panics
    ///
    /// Panics unless `preferred_client` is 1 or 2.
    pub fn new(preferred_client: u64) -> Self {
        assert!(
            preferred_client == 1 || preferred_client == 2,
            "two-client source serves clients 1 and 2"
        );
        TwoClientSource { preferred_client }
    }

    /// Encodes a command.
    pub fn command(client: u64, seq: u64) -> u64 {
        client * 1000 + seq
    }

    /// The client of an encoded command.
    pub fn client_of(cmd: u64) -> u64 {
        cmd / 1000
    }
}

impl ProposalSource<u64> for TwoClientSource {
    fn propose(&mut self, _slot: u64, log: &[u64]) -> u64 {
        // Next unused sequence number of the preferred client = how many of
        // its commands committed already.
        let seq = log
            .iter()
            .filter(|c| Self::client_of(**c) == self.preferred_client)
            .count() as u64;
        Self::command(self.preferred_client, seq)
    }
}

/// One replica: a pipeline of consensus instances, one per log slot.
///
/// Slot instances run on a shared *child environment*: the replica drains
/// each instance's effect stream, stamps outgoing messages with the slot,
/// and maps freshly armed timers back to their slot — sans-io composition
/// with no context shims.
pub struct ReplicaNode<V, P> {
    cfg: ConsensusConfig,
    source: P,
    target_slots: u64,
    instances: BTreeMap<u64, ConsensusNode<V>>,
    started: BTreeSet<u64>,
    log: BTreeMap<u64, V>,
    pending: BTreeMap<u64, Vec<(ProcessId, ProtocolMsg<V>)>>,
    timer_slots: BTreeMap<TimerId, u64>,
    /// Child environment all slot instances run on (created lazily on
    /// first drive; seed irrelevant — slot instances are deterministic and
    /// never draw randomness).
    slot_env: Option<Env<ProtocolMsg<V>, ConsensusEvent<V>>>,
}

impl<V: Value, P: ProposalSource<V>> ReplicaNode<V, P> {
    /// Creates a replica that fills `target_slots` log slots.
    ///
    /// # Panics
    ///
    /// Panics if `target_slots == 0`.
    pub fn new(cfg: ConsensusConfig, source: P, target_slots: u64) -> Self {
        assert!(target_slots > 0, "need at least one slot");
        ReplicaNode {
            cfg,
            source,
            target_slots,
            instances: BTreeMap::new(),
            started: BTreeSet::new(),
            log: BTreeMap::new(),
            pending: BTreeMap::new(),
            timer_slots: BTreeMap::new(),
            slot_env: None,
        }
    }

    /// The committed prefix as a dense vector (slots `1..=k` for the
    /// longest committed prefix `k`).
    pub fn committed_prefix(&self) -> Vec<V> {
        let mut out = Vec::new();
        for slot in 1.. {
            match self.log.get(&slot) {
                Some(v) => out.push(v.clone()),
                None => break,
            }
        }
        out
    }

    fn start_slot(&mut self, slot: u64, env: &mut Env<SlotMsg<V>, SmrEvent<V>>) {
        if self.started.contains(&slot) || slot > self.target_slots {
            return;
        }
        self.started.insert(slot);
        let prefix = self.committed_prefix();
        let proposal = self.source.propose(slot, &prefix);
        let node = ConsensusNode::new(self.cfg, proposal).expect("config validated");
        self.instances.insert(slot, node);
        self.drive(slot, env, |node, ienv| node.on_start(ienv));
        for (from, msg) in self.pending.remove(&slot).unwrap_or_default() {
            self.drive(slot, env, |node, ienv| node.on_message(from, msg, ienv));
        }
    }

    /// Runs one slot instance's handler on the child environment, then
    /// rewrites its effect stream into the outer one: messages are stamped
    /// with the slot, fresh timers are mapped to the slot, outputs are
    /// folded into replica state, and `Halt` is swallowed (slot instances
    /// never halt the replica).
    fn drive(
        &mut self,
        slot: u64,
        env: &mut Env<SlotMsg<V>, SmrEvent<V>>,
        f: impl FnOnce(&mut ConsensusNode<V>, &mut Env<ProtocolMsg<V>, ConsensusEvent<V>>),
    ) {
        let Some(node) = self.instances.get_mut(&slot) else {
            return;
        };
        let ienv = self.slot_env.get_or_insert_with(|| Env::new(env.n(), 0));
        ienv.prepare(env.me(), env.now());
        env.swap_timers(ienv);
        f(node, ienv);
        env.swap_timers(ienv);
        let mut events = Vec::new();
        for effect in ienv.drain() {
            match effect {
                Effect::Send { to, msg } => env.send(to, (slot, msg)),
                Effect::Broadcast { msg } => env.broadcast((slot, msg)),
                Effect::SetTimer { id, delay } => {
                    self.timer_slots.insert(id, slot);
                    env.push(Effect::SetTimer { id, delay });
                }
                Effect::CancelTimer { id } => env.push(Effect::CancelTimer { id }),
                Effect::Output(event) => events.push(event),
                Effect::Halt => {}
            }
        }
        for event in events {
            if let ConsensusEvent::Decided { value } = event {
                self.commit(slot, value, env);
            }
        }
    }

    fn commit(&mut self, slot: u64, cmd: V, env: &mut Env<SlotMsg<V>, SmrEvent<V>>) {
        if self.log.contains_key(&slot) {
            return;
        }
        self.log.insert(slot, cmd.clone());
        env.output(SmrEvent::Committed { slot, command: cmd });
        self.start_slot(slot + 1, env);
    }
}

impl<V: Value, P: ProposalSource<V> + core::fmt::Debug> core::fmt::Debug for ReplicaNode<V, P> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ReplicaNode")
            .field("source", &self.source)
            .field("committed", &self.log.len())
            .finish()
    }
}

impl<V: Value, P: ProposalSource<V>> Node for ReplicaNode<V, P> {
    type Msg = SlotMsg<V>;
    type Output = SmrEvent<V>;

    fn on_start(&mut self, env: &mut Env<SlotMsg<V>, SmrEvent<V>>) {
        self.start_slot(1, env);
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: SlotMsg<V>,
        env: &mut Env<SlotMsg<V>, SmrEvent<V>>,
    ) {
        let (slot, inner) = msg;
        if slot == 0 || slot > self.target_slots {
            return; // out-of-range slot: Byzantine garbage
        }
        if self.started.contains(&slot) {
            self.drive(slot, env, |node, ienv| node.on_message(from, inner, ienv));
        } else {
            // Another replica is ahead: buffer until we start the slot.
            self.pending.entry(slot).or_default().push((from, inner));
        }
    }

    fn on_timer(&mut self, timer: TimerId, env: &mut Env<SlotMsg<V>, SmrEvent<V>>) {
        if let Some(slot) = self.timer_slots.remove(&timer) {
            self.drive(slot, env, |node, ienv| node.on_timer(timer, ienv));
        }
    }

    fn label(&self) -> &'static str {
        "smr-replica"
    }
}

/// Reconstructs each replica's committed log from simulation outputs.
pub fn collect_logs<V: Value>(
    outputs: &[OutputRecord<SmrEvent<V>>],
) -> BTreeMap<usize, BTreeMap<u64, V>> {
    let mut logs: BTreeMap<usize, BTreeMap<u64, V>> = BTreeMap::new();
    for rec in outputs {
        let SmrEvent::Committed { slot, command } = &rec.event;
        logs.entry(rec.process.index())
            .or_default()
            .insert(*slot, command.clone());
    }
    logs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_client_source_advances_with_the_log() {
        let mut s = TwoClientSource::new(1);
        assert_eq!(s.propose(1, &[]), 1000);
        // One of client 1's commands committed → next seq.
        assert_eq!(s.propose(2, &[1000]), 1001);
        // Client 2's commits don't advance client 1's stream.
        assert_eq!(s.propose(3, &[1000, 2000]), 1001);
    }

    #[test]
    #[should_panic(expected = "clients 1 and 2")]
    fn bad_client_rejected() {
        let _ = TwoClientSource::new(3);
    }

    #[test]
    fn closures_are_proposal_sources() {
        let mut f = |slot: u64, _log: &[u64]| slot * 10;
        assert_eq!(ProposalSource::propose(&mut f, 3, &[]), 30);
    }

    #[test]
    fn committed_prefix_is_dense() {
        let cfg = ConsensusConfig::paper(minsync_types::SystemConfig::new(4, 1).unwrap());
        let mut r: ReplicaNode<u64, TwoClientSource> =
            ReplicaNode::new(cfg, TwoClientSource::new(1), 5);
        r.log.insert(1, 10);
        r.log.insert(2, 20);
        r.log.insert(4, 40); // gap at 3
        assert_eq!(r.committed_prefix(), vec![10, 20]);
    }
}
