//! State-machine replication on top of the paper's consensus: a pipeline of
//! independent consensus instances, one per log slot, with commit
//! acknowledgements, log garbage collection, and quorum-certified catch-up.
//!
//! This is the application the paper's introduction motivates — and the
//! standard way a single-shot consensus object is consumed downstream. Each
//! [`ReplicaNode`] runs one [`ConsensusNode`] per slot behind a
//! slot-stamping adapter:
//!
//! * slot `s + 1` starts locally once slot `s` commits (pipelined, not
//!   lock-stepped: different replicas may be several slots apart), subject
//!   to the flow-control window of [`SmrLimits`];
//! * messages for slots a replica has not reached yet are buffered and
//!   replayed on entry — up to the caps of [`SmrLimits`], so a Byzantine
//!   flooder cannot grow memory without bound (overflow is counted in
//!   [`ReplicaNode::future_drops`]);
//! * on commit a replica broadcasts [`SmrMsg::Ack`] — acks are
//!   **cumulative** (one floor per peer, O(n) ack state; a lost ack is
//!   repaired by any later one). Decided consensus instances are dropped
//!   as soon as an `n − t` quorum acked past them; once **all** `n`
//!   replicas acked a slot it is fully *retired* — its committed value and
//!   bookkeeping are dropped too and traffic for it is refused
//!   ([`ReplicaNode::retired_drops`]), announced via [`SmrEvent::Retired`].
//!   On all-correct runs live state therefore stays flat indefinitely. A
//!   replica that never acks (crashed, or Byzantine-silent) holds *value*
//!   retirement back — `recent` values then grow one per slot (instances
//!   and buffers stay bounded regardless) — which is inherent to "retire
//!   only what no correct replica can still need";
//! * laggards catch up in two ways: instances not yet past the quorum-ack
//!   floor still service reliable broadcast (RB-Termination-2 per slot),
//!   and committed replicas answer a laggard's slot traffic with
//!   [`SmrMsg::Checkpoint`] — `t + 1` matching checkpoints carry at least
//!   one correct sender, so the laggard may commit the certified value
//!   directly even if its buffers dropped the original protocol traffic
//!   (checkpoints double as acks from their sender);
//! * with [`ReplicaNode::with_certs`] the catch-up evidence becomes a
//!   **quorum certificate** (`minsync-auth`): commit acks carry a signature
//!   over the commit statement ([`SmrMsg::SigAck`]), committed replicas
//!   collect `n − t` of them into a [`QuorumCert`], and a single
//!   [`SmrMsg::CertCheckpoint`] then convinces a laggard — one message where
//!   the echo path needs `t + 1` matching [`SmrMsg::Checkpoint`]s (the
//!   receiver verifies signatures instead of counting independent arrivals).
//!   The certificate path is opportunistic: a replica that committed before
//!   its peers' sig-acks arrived simply falls back to the echo path, so no
//!   liveness rests on certificate availability.
//!
//! Proposals come from a [`ProposalSource`]: the application-supplied rule
//! for what a replica proposes in each slot. Sources are *batching* by
//! design: a value `V` may be a whole batch of client commands (see the
//! `minsync-workload` crate), amortizing one consensus instance over many
//! commands. **Feasibility caveat** — the paper's consensus is m-valued:
//! across the *correct* replicas, each slot may see at most
//! `⌊(n − t − 1)/t⌋` distinct proposals. Sources must derive their proposal
//! deterministically from the commit stream (which [`ProposalSource`]'s
//! contract makes natural), so that replicas sharing a command partition
//! propose identical values.
//!
//! ```rust
//! use minsync_net::{sim::SimBuilder, NetworkTopology};
//! use minsync_smr::{collect_logs, committed_count, ReplicaNode, TwoClientSource};
//! use minsync_types::{ProcessId, SystemConfig};
//! use minsync_core::ConsensusConfig;
//!
//! # fn main() -> Result<(), minsync_types::ConfigError> {
//! let system = SystemConfig::new(4, 1)?;
//! let cfg = ConsensusConfig::paper(system);
//! let mut builder = SimBuilder::new(NetworkTopology::all_timely(4, 3)).seed(7);
//! for i in 0..4 {
//!     builder = builder.node(ReplicaNode::new(cfg, TwoClientSource::new(1 + (i as u64 % 2)), 4));
//! }
//! let mut sim = builder.build();
//! let report = sim.run_until(|outs| {
//!     (0..4).all(|p| committed_count(outs, ProcessId::new(p)) >= 4)
//! });
//! let logs = collect_logs(&report.outputs);
//! let reference = logs.values().next().unwrap().clone();
//! assert!(logs.values().all(|l| *l == reference), "replicated logs agree");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::Arc;

use minsync_auth::{debug_digest, Authenticator, QuorumCert, Sig};
use minsync_core::{ConsensusConfig, ConsensusEvent, ConsensusNode, ProtocolMsg};
use minsync_net::sim::OutputRecord;
use minsync_net::{Effect, Env, Node, TimerId};
use minsync_telemetry::trace::{TraceKind, TraceRecorder};
use minsync_telemetry::{watch_name, Counter, Gauge, Registry};
use minsync_types::{ProcessId, Value};

/// The statement a replica signs when it commits `slot = value`: a domain
/// prefix, the slot, and a digest of the value's canonical (`Debug`)
/// rendering. Receivers reconstruct this from the `(slot, value)` they were
/// handed, so a certificate transplanted onto a different slot or value
/// fails verification.
pub fn commit_statement<V: Value>(slot: u64, value: &V) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + 8 + 32);
    out.extend_from_slice(b"MSYN-SMR-COMMIT");
    out.extend_from_slice(&slot.to_le_bytes());
    out.extend_from_slice(&debug_digest(value));
    out
}

/// Live health gauges exported under the `watch.p<id>.*` naming contract
/// consumed by [`minsync_telemetry::watchdog`] (see
/// [`ReplicaNode::with_watch`]), plus the running commit-prefix digest
/// behind the `ckpt_digest` gauge.
struct WatchGauges {
    commit_floor: Gauge,
    ack_floor: Gauge,
    committed_cmds: Gauge,
    ckpt_slot: Gauge,
    ckpt_digest: Gauge,
    /// FNV-1a fold of every committed `(slot, debug_digest(value))`, in
    /// commit order — two replicas expose equal digests at equal floors
    /// iff their committed prefixes are identical.
    digest: u64,
}

impl WatchGauges {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Folds one commit into the digest and publishes the new floor.
    fn on_commit<V: Value>(&mut self, slot: u64, value: &V) {
        for byte in slot.to_le_bytes().into_iter().chain(debug_digest(value)) {
            self.digest ^= u64::from(byte);
            self.digest = self.digest.wrapping_mul(Self::PRIME);
        }
        self.commit_floor.set(slot);
        self.committed_cmds.set(slot);
        self.ckpt_slot.set(slot);
        self.ckpt_digest.set(self.digest);
    }
}

/// Replica-to-replica traffic: slot-stamped consensus messages plus the GC
/// and catch-up control plane.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SmrMsg<V> {
    /// Consensus traffic for log slot `slot` (1-based).
    Slot {
        /// The slot the wrapped message belongs to.
        slot: u64,
        /// The wrapped consensus-protocol message.
        msg: ProtocolMsg<V>,
    },
    /// "I committed every slot up to and including `slot`": broadcast by
    /// every replica on commit. Acks are **cumulative** (commits are in
    /// slot order), so receivers keep one floor per peer and any later ack
    /// repairs earlier lost ones. Once the minimum floor over **all** `n`
    /// replicas passes a slot (everyone committed — no correct process can
    /// ever need its traffic again) the slot is retired.
    Ack {
        /// The highest committed slot.
        slot: u64,
    },
    /// Catch-up state transfer: "slot `slot` decided `value`". Sent by a
    /// committed replica when it sees slot traffic from a peer that has not
    /// acked the slot. `t + 1` matching checkpoints contain at least one
    /// correct sender, so the receiver may commit `value` directly.
    Checkpoint {
        /// The decided slot.
        slot: u64,
        /// Its decided value.
        value: V,
    },
    /// An [`SmrMsg::Ack`] carrying the sender's signature over the commit
    /// statement of `slot` (certificate mode only, see
    /// [`ReplicaNode::with_certs`]). The ack floor is still cumulative;
    /// the signature is specific to `slot`.
    SigAck {
        /// The highest committed slot (and the signed slot).
        slot: u64,
        /// Signature over [`commit_statement`]`(slot, value)`.
        sig: Sig,
    },
    /// A checkpoint whose value is backed by an `n − t` quorum certificate:
    /// **one** valid message commits the laggard, where the echo path needs
    /// `t + 1` matching [`SmrMsg::Checkpoint`]s.
    CertCheckpoint {
        /// The decided slot.
        slot: u64,
        /// Its decided value.
        value: V,
        /// `n − t` distinct-signer signatures over the commit statement.
        cert: QuorumCert,
    },
}

impl<V> SmrMsg<V> {
    /// Classifier for [`minsync_net::sim::SimBuilder::classify`]: the
    /// wrapped protocol kind for slot traffic, `"SMR_ACK"` / `"SMR_CKPT"` /
    /// `"SMR_SIGACK"` / `"SMR_CERT_CKPT"` for the control plane.
    pub fn classify(msg: &SmrMsg<V>) -> &'static str {
        match msg {
            SmrMsg::Slot { msg, .. } => msg.kind(),
            SmrMsg::Ack { .. } => "SMR_ACK",
            SmrMsg::Checkpoint { .. } => "SMR_CKPT",
            SmrMsg::SigAck { .. } => "SMR_SIGACK",
            SmrMsg::CertCheckpoint { .. } => "SMR_CERT_CKPT",
        }
    }
}

/// Observable output of a replica.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SmrEvent<V> {
    /// Slot `slot` committed `command` at this replica.
    Committed {
        /// 1-based log slot.
        slot: u64,
        /// The decided value (a whole batch of client commands under a
        /// batching source).
        command: V,
    },
    /// Garbage collection progressed: slots `1..=through` are retired at
    /// this replica (instances, ack sets, and values dropped; traffic for
    /// them refused).
    Retired {
        /// New retirement floor.
        through: u64,
    },
}

impl<V> SmrEvent<V> {
    /// The committed `(slot, value)` if this is a commit event.
    pub fn as_committed(&self) -> Option<(u64, &V)> {
        match self {
            SmrEvent::Committed { slot, command } => Some((*slot, command)),
            SmrEvent::Retired { .. } => None,
        }
    }
}

/// Application rule deciding what a replica proposes for each slot.
///
/// The contract is commit-driven, which is what makes **batching** sources
/// natural and lets the replica garbage-collect its log:
///
/// * [`ProposalSource::on_commit`] is called exactly once per slot, in slot
///   order, with the decided value — the source folds the commit stream
///   into whatever state it needs (cursors into command queues, per-client
///   sequence numbers, …). The replica does **not** retain the committed
///   prefix for the source, so sources cannot re-read old slots.
/// * [`ProposalSource::propose`] is called exactly once per slot, in slot
///   order, after every earlier slot's `on_commit`. The returned value may
///   be a batch of many pending commands.
///
/// Implementations must keep the per-slot proposal diversity across correct
/// replicas within the m-valued feasibility bound (see crate docs): a
/// source's proposal should be a deterministic function of the commit
/// stream shared by every replica serving the same command partition.
pub trait ProposalSource<V>: Send {
    /// The proposal for `slot` (1-based).
    fn propose(&mut self, slot: u64) -> V;

    /// Notification that `slot` committed `value` (called in slot order,
    /// before any later [`ProposalSource::propose`]).
    fn on_commit(&mut self, slot: u64, value: &V);
}

/// Stateless closures are proposal sources that ignore the commit stream.
impl<V, F> ProposalSource<V> for F
where
    F: FnMut(u64) -> V + Send,
{
    fn propose(&mut self, slot: u64) -> V {
        self(slot)
    }

    fn on_commit(&mut self, _slot: u64, _value: &V) {}
}

/// A canonical feasibility-safe source: two client command streams
/// (commands encoded `client·1000 + seq`), each replica pushing one
/// client's next command — at most two distinct proposals per slot.
#[derive(Clone, Debug)]
pub struct TwoClientSource {
    preferred_client: u64,
    next_seq: u64,
}

impl TwoClientSource {
    /// Creates a source pushing `preferred_client`'s stream (1 or 2).
    ///
    /// # Panics
    ///
    /// Panics unless `preferred_client` is 1 or 2.
    pub fn new(preferred_client: u64) -> Self {
        assert!(
            preferred_client == 1 || preferred_client == 2,
            "two-client source serves clients 1 and 2"
        );
        TwoClientSource {
            preferred_client,
            next_seq: 0,
        }
    }

    /// Encodes a command.
    pub fn command(client: u64, seq: u64) -> u64 {
        client * 1000 + seq
    }

    /// The client of an encoded command.
    pub fn client_of(cmd: u64) -> u64 {
        cmd / 1000
    }
}

impl ProposalSource<u64> for TwoClientSource {
    fn propose(&mut self, _slot: u64) -> u64 {
        Self::command(self.preferred_client, self.next_seq)
    }

    fn on_commit(&mut self, _slot: u64, value: &u64) {
        // A commit of the preferred client's pending command advances its
        // stream; other clients' commits don't.
        if Self::client_of(*value) == self.preferred_client {
            self.next_seq += 1;
        }
    }
}

/// Resource bounds of one [`ReplicaNode`]: how far the pipeline may run
/// ahead and how much future-slot traffic may be buffered.
///
/// The defaults are generous enough that honest traffic is never dropped in
/// practice; shrink them in tests to exercise the drop paths. Even when a
/// bound is hit and honest traffic is discarded, liveness is preserved by
/// the [`SmrMsg::Checkpoint`] catch-up path.
#[derive(Clone, Copy, Debug)]
pub struct SmrLimits {
    /// Flow control: a replica does not start slot `s` until
    /// `s ≤ quorum_floor + window`, where `quorum_floor` is the highest
    /// in-order slot acked by `n − t` replicas. Bounds how far a fast
    /// replica can outrun the slowest quorum (and hence how much the
    /// others must buffer for it).
    pub window: u64,
    /// Messages for slots beyond `committed + 1 + horizon` are dropped —
    /// a flooder cannot reserve buffer space arbitrarily far in the
    /// future. Should comfortably exceed `window`.
    pub future_horizon: u64,
    /// Total cap on buffered future-slot messages across all slots.
    pub max_buffered: usize,
    /// Checkpoint-retry period in ticks; `0` (the default) disables it.
    ///
    /// Checkpoint replies are rate-limited to once per peer per slot
    /// (`ckpt_sent`) so Byzantine slot-traffic cannot amplify into reply
    /// storms — but on a lossy link that single reply can be dropped,
    /// permanently wedging a laggard the rate limit now refuses to serve
    /// again. With a nonzero period the replica arms a recurring timer
    /// that clears the served-checkpoint marks, re-broadcasts its own
    /// cumulative ack floor, *pushes* one checkpoint per period to every
    /// peer whose floor trails (a quiescent rejoiner cannot be relied on
    /// to ask), and re-broadcasts every message its head-of-line
    /// consensus instance has sent so far (loss can wedge the next slot
    /// at **all** replicas at once — no one committed it, so there is no
    /// checkpoint to push; sub-protocol state is keyed by sender, so the
    /// duplicates are no-ops). Amplification stays bounded: at most one
    /// reply per peer per slot per period, and one head-of-line replay
    /// per period. Enable this on lossy substrates (real sockets under
    /// fault injection, drop-oracle simulations); the default stays off
    /// so loss-free runs keep their recorded golden traces.
    pub ckpt_retry: u64,
}

impl Default for SmrLimits {
    fn default() -> Self {
        SmrLimits {
            window: 64,
            future_horizon: 128,
            max_buffered: 65_536,
            ckpt_retry: 0,
        }
    }
}

/// A set of process indices as a bitmap (`n ≤ 128` is asserted at replica
/// construction; the simulator tops out well below that).
#[derive(Clone, Copy, Default, Debug)]
struct ProcSet(u128);

impl ProcSet {
    /// Inserts `i`; true if it was absent.
    fn insert(&mut self, i: usize) -> bool {
        let bit = 1u128 << i;
        let fresh = self.0 & bit == 0;
        self.0 |= bit;
        fresh
    }
}

/// A write-ahead hook invoked synchronously on every commit (see
/// [`ReplicaNode::with_commit_log`]).
type CommitLog<V> = Box<dyn FnMut(u64, &V) + Send>;

/// One replica: a pipeline of consensus instances, one per log slot, plus
/// the ack/retire/checkpoint control plane described in the crate docs.
///
/// Slot instances run on a shared *child environment*: the replica drains
/// each instance's effect stream, stamps outgoing messages with the slot,
/// and maps freshly armed timers back to their slot — sans-io composition
/// with no context shims.
pub struct ReplicaNode<V, P> {
    cfg: ConsensusConfig,
    source: P,
    target_slots: u64,
    limits: SmrLimits,
    /// Highest started slot (slots start in order; the active, undecided
    /// instance is always slot `committed + 1` when `started > committed`).
    started: u64,
    /// Slots `1..=committed` are committed (commits are in slot order).
    committed: u64,
    /// Slots `1..=low_water` are retired (fully garbage-collected).
    low_water: u64,
    /// Highest slot acked by an `n − t` quorum — the `(n − t)`-th largest
    /// ack floor (flow control, and the instance-drop threshold).
    quorum_floor: u64,
    /// Live instances: the active slot plus decided slots not yet past the
    /// quorum-ack floor. Decided instances keep servicing reliable
    /// broadcast until an `n − t` quorum acked them; beyond that laggards
    /// are caught up via checkpoints, so the instances are dropped.
    instances: BTreeMap<u64, ConsensusNode<V>>,
    /// Committed-but-unretired values, kept for checkpoint replies.
    recent: BTreeMap<u64, V>,
    /// Buffered messages for not-yet-started slots.
    pending: BTreeMap<u64, Vec<(ProcessId, ProtocolMsg<V>)>>,
    /// Total buffered message count (the `max_buffered` gauge).
    buffered: usize,
    /// Per-peer **cumulative** ack floors: `ack_floors[p] = f` means `p`
    /// announced it committed every slot `≤ f`. O(n) total ack state, and
    /// a lost ack is repaired by any later one.
    ack_floors: Vec<u64>,
    /// Decided instances for slots `≤ min(quorum_floor, committed)` are
    /// dropped (laggards catch up via checkpoints); this floor tracks how
    /// far that has progressed.
    instance_floor: u64,
    /// Scratch buffer for the quorum-floor order statistic (no per-ack
    /// allocation).
    floor_scratch: Vec<u64>,
    /// Checkpoint-reply rate limit: peers already served, per slot.
    ckpt_sent: BTreeMap<u64, ProcSet>,
    /// Checkpoint voting for slot `committed + 1`: senders counted once.
    ckpt_seen: ProcSet,
    /// Vote tally per claimed value for slot `committed + 1`.
    ckpt_votes: Vec<(V, usize)>,
    /// Future-slot traffic dropped by the horizon/buffer caps.
    future_drops: u64,
    /// Traffic for retired slots refused.
    retired_drops: u64,
    /// Certificate mode (None = the classic echo path): signer/verifier for
    /// commit statements, shared with whatever substrate runs the replica.
    certs: Option<Arc<dyn Authenticator>>,
    /// Per-slot commit signatures collected from [`SmrMsg::SigAck`]s (plus
    /// our own, added on commit). A certificate is usable once it reaches
    /// `n − t` distinct signers.
    cert_sigs: BTreeMap<u64, QuorumCert>,
    /// Invalid signatures and certificates refused.
    cert_rejects: u64,
    /// Telemetry mirrors of the drop counters, for substrates that consume
    /// the node by value (the TCP mesh moves it into its run loop, so
    /// `minsync-node` can no longer ask the replica itself after the run).
    /// Detached no-op handles until [`ReplicaNode::with_registry`] interns
    /// them in a shared registry.
    ctr_future_drops: Counter,
    ctr_retired_drops: Counter,
    ctr_cert_rejects: Counter,
    /// Live health gauges (see [`ReplicaNode::with_watch`]); `None` keeps
    /// the hot path untouched.
    watch: Option<WatchGauges>,
    /// Stage-trace hook (see [`ReplicaNode::with_trace`]): records when
    /// slots are proposed, committed, and covered by an ack quorum.
    trace: Option<Arc<TraceRecorder>>,
    /// Crash-recovered committed prefix (slots `1..=len`), replayed into
    /// replica state and the output stream on start.
    recovered: Vec<V>,
    /// Write-ahead hook invoked synchronously on every commit, before the
    /// ack leaves the replica (see [`ReplicaNode::with_commit_log`]).
    commit_log: Option<CommitLog<V>>,
    /// The recurring lossy-link catch-up timer ([`SmrLimits::ckpt_retry`]);
    /// `None` when disabled.
    ckpt_retry_timer: Option<TimerId>,
    /// Every broadcast each in-flight slot instance has made, recorded
    /// only while `ckpt_retry` is enabled: the retry timer re-broadcasts
    /// the head-of-line slot's messages so a consensus instance wedged by
    /// message loss (the paper assumes reliable channels; dropped frames
    /// are a stronger adversary) eventually re-offers every peer its
    /// missing pieces. An entry is dropped when its slot commits, so the
    /// memory held is bounded by the instances still in flight.
    outbox: BTreeMap<u64, Vec<ProtocolMsg<V>>>,
    timer_slots: BTreeMap<TimerId, u64>,
    /// Child environment all slot instances run on (created lazily on
    /// first drive; seed irrelevant — slot instances are deterministic and
    /// never draw randomness).
    slot_env: Option<Env<ProtocolMsg<V>, ConsensusEvent<V>>>,
}

impl<V: Value, P: ProposalSource<V>> ReplicaNode<V, P> {
    /// Creates a replica that fills `target_slots` log slots, with default
    /// [`SmrLimits`].
    ///
    /// # Panics
    ///
    /// Panics if `target_slots == 0` or `n > 128`.
    pub fn new(cfg: ConsensusConfig, source: P, target_slots: u64) -> Self {
        assert!(target_slots > 0, "need at least one slot");
        assert!(
            cfg.system.n() <= 128,
            "checkpoint bitmaps hold at most 128 processes"
        );
        let n = cfg.system.n();
        ReplicaNode {
            cfg,
            source,
            target_slots,
            limits: SmrLimits::default(),
            started: 0,
            committed: 0,
            low_water: 0,
            quorum_floor: 0,
            instances: BTreeMap::new(),
            recent: BTreeMap::new(),
            pending: BTreeMap::new(),
            buffered: 0,
            ack_floors: vec![0; n],
            instance_floor: 0,
            floor_scratch: Vec::with_capacity(n),
            ckpt_sent: BTreeMap::new(),
            ckpt_seen: ProcSet::default(),
            ckpt_votes: Vec::new(),
            future_drops: 0,
            retired_drops: 0,
            certs: None,
            cert_sigs: BTreeMap::new(),
            cert_rejects: 0,
            ctr_future_drops: Counter::detached(),
            ctr_retired_drops: Counter::detached(),
            ctr_cert_rejects: Counter::detached(),
            watch: None,
            trace: None,
            recovered: Vec::new(),
            commit_log: None,
            ckpt_retry_timer: None,
            outbox: BTreeMap::new(),
            timer_slots: BTreeMap::new(),
            slot_env: None,
        }
    }

    /// Switches the replica to **certificate mode**: commit acks become
    /// [`SmrMsg::SigAck`]s carrying a signature over [`commit_statement`],
    /// and laggard catch-up prefers a single quorum-certified
    /// [`SmrMsg::CertCheckpoint`] over `t + 1` independent echoes. `auth`
    /// must belong to the same process the replica runs as.
    pub fn with_certs(mut self, auth: Arc<dyn Authenticator>) -> Self {
        self.certs = Some(auth);
        self
    }

    /// Interns the replica's drop counters in a shared telemetry
    /// [`Registry`] — `smr.future_drops`, `smr.retired_drops`, and
    /// `smr.cert_rejects` — for substrates that consume the node by value:
    /// any snapshot of the registry reads them, any time.
    pub fn with_registry(mut self, registry: &Registry) -> Self {
        self.ctr_future_drops = registry.counter("smr.future_drops");
        self.ctr_retired_drops = registry.counter("smr.retired_drops");
        self.ctr_cert_rejects = registry.counter("smr.cert_rejects");
        self
    }

    /// Exports the replica's live health gauges into `registry` under the
    /// `watch.p<id>.*` naming contract that
    /// [`minsync_telemetry::watchdog::Watchdog`] consumes:
    /// `commit_floor` (contiguous committed-slot floor), `ack_floor` (the
    /// `n − t` quorum-ack floor), `submitted` (the slot target, so a
    /// watcher can tell an idle replica from a stalled one) with
    /// `committed_cmds` (slots committed so far), and
    /// `ckpt_slot`/`ckpt_digest` — a running FNV-1a fold of the committed
    /// prefix, the online cross-replica divergence signal. Pure
    /// observation: replica behaviour is byte-identical with and without
    /// it.
    pub fn with_watch(mut self, registry: &Registry, id: usize) -> Self {
        registry
            .gauge(&watch_name(id, "submitted"))
            .set(self.target_slots);
        self.watch = Some(WatchGauges {
            commit_floor: registry.gauge(&watch_name(id, "commit_floor")),
            ack_floor: registry.gauge(&watch_name(id, "ack_floor")),
            committed_cmds: registry.gauge(&watch_name(id, "committed_cmds")),
            ckpt_slot: registry.gauge(&watch_name(id, "ckpt_slot")),
            ckpt_digest: registry.gauge(&watch_name(id, "ckpt_digest")),
            digest: WatchGauges::OFFSET,
        });
        self
    }

    /// Installs a stage-trace hook: the replica records
    /// [`TraceKind::Proposed`] when it starts a slot's consensus instance,
    /// [`TraceKind::Committed`] when the slot commits, and
    /// [`TraceKind::AckQuorum`] when an `n − t` quorum has acked it. The
    /// hook only appends to the bounded ring — replica behaviour is
    /// byte-identical with and without it.
    pub fn with_trace(mut self, trace: Arc<TraceRecorder>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Crash recovery: seeds the replica with the committed prefix it
    /// persisted before crashing — `log[i]` is the value of slot `i + 1`.
    ///
    /// On start the prefix is replayed (in slot order) into the proposal
    /// source, the `recent` checkpoint store, and the output stream, so a
    /// recovered replica's observable log is byte-identical to one that
    /// never crashed; one cumulative ack then announces the recovered
    /// floor, and everything past the prefix is caught up through the
    /// ordinary [`SmrMsg::Checkpoint`] / [`SmrMsg::CertCheckpoint`] path.
    /// That path is guaranteed to still have the tail: full retirement
    /// ([`SmrMsg::Ack`] floors) tracks the **minimum** floor across all
    /// replicas, and the crashed replica's floor froze at its last ack —
    /// no correct peer can have retired a slot the rejoiner is missing.
    ///
    /// The prefix itself comes from the replica's own stable storage (the
    /// standard crash-recovery assumption); it is trusted exactly as far
    /// as the replica trusts itself.
    ///
    /// # Panics
    ///
    /// Panics if the prefix exceeds `target_slots`.
    pub fn with_recovered_prefix(mut self, log: Vec<V>) -> Self {
        assert!(
            log.len() as u64 <= self.target_slots,
            "recovered prefix longer than the target log"
        );
        self.recovered = log;
        self
    }

    /// Installs a **write-ahead commit hook**, called synchronously for
    /// every fresh commit *before* the commit's ack effect is queued —
    /// i.e. strictly before any substrate can put the ack on a wire.
    ///
    /// This ordering is what makes [`Self::with_recovered_prefix`] sound
    /// against crash faults: ack floors are cumulative and never regress,
    /// so once a peer has seen `Ack { slot }` it will refuse to serve
    /// `slot` back via checkpoints. Persisting the slot first guarantees a
    /// replica never acks a commit its stable storage could lose.
    /// Replayed prefix slots do not re-invoke the hook (they are already
    /// persisted — that is where the prefix came from).
    pub fn with_commit_log(mut self, log: impl FnMut(u64, &V) + Send + 'static) -> Self {
        self.commit_log = Some(Box::new(log));
        self
    }

    /// Overrides the resource bounds.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `max_buffered == 0`.
    pub fn with_limits(mut self, limits: SmrLimits) -> Self {
        assert!(limits.window > 0, "a zero window never starts slot 1");
        assert!(limits.max_buffered > 0, "need some buffer space");
        self.limits = limits;
        self
    }

    /// Slots committed so far (commits are in slot order, so this is the
    /// committed prefix length).
    pub fn committed_count(&self) -> u64 {
        self.committed
    }

    /// Retirement floor: slots `1..=low_water` are garbage-collected.
    pub fn low_water(&self) -> u64 {
        self.low_water
    }

    /// Live consensus instances held right now (the active slot plus
    /// decided slots not yet past the quorum-ack floor).
    pub fn live_instances(&self) -> usize {
        self.instances.len()
    }

    /// Highest slot acked by an `n − t` quorum (the flow-control floor).
    pub fn quorum_floor(&self) -> u64 {
        self.quorum_floor
    }

    /// Future-slot messages currently buffered.
    pub fn buffered_len(&self) -> usize {
        self.buffered
    }

    /// Future-slot messages dropped by the horizon/buffer caps.
    pub fn future_drops(&self) -> u64 {
        self.future_drops
    }

    /// Messages refused because their slot was already retired.
    pub fn retired_drops(&self) -> u64 {
        self.retired_drops
    }

    /// Invalid commit signatures / quorum certificates refused
    /// (certificate mode only).
    pub fn cert_rejects(&self) -> u64 {
        self.cert_rejects
    }

    fn count_future_drop(&mut self) {
        self.future_drops += 1;
        self.ctr_future_drops.inc();
    }

    fn count_retired_drop(&mut self) {
        self.retired_drops += 1;
        self.ctr_retired_drops.inc();
    }

    fn count_cert_reject(&mut self) {
        self.cert_rejects += 1;
        self.ctr_cert_rejects.inc();
    }

    /// Records a stage event stamped with the environment's clock and
    /// identity; a no-op when tracing is off.
    fn trace_stage(&self, env: &Env<SmrMsg<V>, SmrEvent<V>>, kind: TraceKind) {
        if let Some(trace) = &self.trace {
            trace.record_at(env.now().ticks(), env.me().index() as u32, kind);
        }
    }

    /// Starts every slot the pipeline and flow-control window allow.
    fn try_start(&mut self, env: &mut Env<SmrMsg<V>, SmrEvent<V>>) {
        while self.started < self.target_slots
            && self.started == self.committed
            && self.started < self.quorum_floor + self.limits.window
        {
            let slot = self.started + 1;
            self.started = slot;
            self.trace_stage(env, TraceKind::Proposed { slot });
            let proposal = self.source.propose(slot);
            let node = ConsensusNode::new(self.cfg, proposal).expect("config validated");
            self.instances.insert(slot, node);
            self.drive(slot, env, |node, ienv| node.on_start(ienv));
            for (from, msg) in self.pending.remove(&slot).unwrap_or_default() {
                self.buffered -= 1;
                self.drive(slot, env, |node, ienv| node.on_message(from, msg, ienv));
            }
        }
    }

    /// Runs one slot instance's handler on the child environment, then
    /// rewrites its effect stream into the outer one: messages are stamped
    /// with the slot, fresh timers are mapped to the slot, outputs are
    /// folded into replica state, and `Halt` is swallowed (slot instances
    /// never halt the replica).
    fn drive(
        &mut self,
        slot: u64,
        env: &mut Env<SmrMsg<V>, SmrEvent<V>>,
        f: impl FnOnce(&mut ConsensusNode<V>, &mut Env<ProtocolMsg<V>, ConsensusEvent<V>>),
    ) {
        let Some(node) = self.instances.get_mut(&slot) else {
            return;
        };
        let ienv = self.slot_env.get_or_insert_with(|| Env::new(env.n(), 0));
        ienv.prepare(env.me(), env.now());
        env.swap_timers(ienv);
        f(node, ienv);
        env.swap_timers(ienv);
        let mut events = Vec::new();
        for effect in ienv.drain() {
            match effect {
                Effect::Send { to, msg } => env.send(to, SmrMsg::Slot { slot, msg }),
                Effect::Broadcast { msg } => {
                    if self.limits.ckpt_retry > 0 {
                        self.outbox.entry(slot).or_default().push(msg.clone());
                    }
                    env.broadcast(SmrMsg::Slot { slot, msg });
                }
                Effect::SetTimer { id, delay } => {
                    self.timer_slots.insert(id, slot);
                    env.push(Effect::SetTimer { id, delay });
                }
                Effect::CancelTimer { id } => {
                    self.timer_slots.remove(&id);
                    env.push(Effect::CancelTimer { id });
                }
                Effect::Output(event) => events.push(event),
                Effect::Halt => {}
            }
        }
        for event in events {
            if let ConsensusEvent::Decided { value } = event {
                self.commit(slot, value, env);
            }
        }
    }

    /// Commits `slot` (in order only — duplicates and out-of-order calls
    /// are ignored): notifies the source, announces the commit, broadcasts
    /// the GC ack, and advances the pipeline.
    fn commit(&mut self, slot: u64, value: V, env: &mut Env<SmrMsg<V>, SmrEvent<V>>) {
        if slot != self.committed + 1 {
            return;
        }
        if let Some(log) = &mut self.commit_log {
            log(slot, &value); // write-ahead: persist before the ack exists
        }
        self.committed = slot;
        self.trace_stage(env, TraceKind::Committed { slot });
        if let Some(watch) = &mut self.watch {
            watch.on_commit(slot, &value);
        }
        self.ckpt_seen = ProcSet::default();
        self.ckpt_votes.clear();
        self.outbox.remove(&slot);
        self.source.on_commit(slot, &value);
        env.output(SmrEvent::Committed {
            slot,
            command: value.clone(),
        });
        match &self.certs {
            Some(auth) => {
                // The ack doubles as our contribution to the slot's quorum
                // certificate: sign the commit statement and keep a copy.
                let sig = auth.sign(&commit_statement(slot, &value));
                self.cert_sigs.entry(slot).or_default().add(auth.me(), sig);
                self.recent.insert(slot, value);
                env.broadcast(SmrMsg::SigAck { slot, sig });
            }
            None => {
                self.recent.insert(slot, value);
                env.broadcast(SmrMsg::Ack { slot });
            }
        }
        self.note_ack(slot, env.me(), env);
        self.try_retire(env);
        self.try_start(env);
    }

    /// Raises one peer's cumulative ack floor and re-derives the quorum
    /// floor (the `(n − t)`-th largest floor), then drops instances the
    /// quorum has moved past. `env` is read-only here — only its clock and
    /// identity, for the ack-quorum stage trace.
    fn note_ack(&mut self, slot: u64, from: ProcessId, env: &Env<SmrMsg<V>, SmrEvent<V>>) {
        let floor = &mut self.ack_floors[from.index()];
        if slot <= *floor {
            return; // stale: acks are cumulative
        }
        *floor = slot;
        self.floor_scratch.clear();
        self.floor_scratch.extend_from_slice(&self.ack_floors);
        let k = self.cfg.system.quorum() - 1;
        let (_, kth, _) = self
            .floor_scratch
            .select_nth_unstable_by(k, |a, b| b.cmp(a));
        let prev = self.quorum_floor;
        self.quorum_floor = *kth;
        if let Some(watch) = &self.watch {
            watch.ack_floor.set(self.quorum_floor);
        }
        if self.trace.is_some() {
            // The floor is an order statistic of monotone per-peer floors,
            // so it never regresses: each newly covered slot is traced once.
            for covered in prev + 1..=self.quorum_floor {
                self.trace_stage(env, TraceKind::AckQuorum { slot: covered });
            }
        }
        // Decided instances behind the quorum floor are no longer needed
        // for catch-up (committed peers answer stragglers with
        // checkpoints), so their memory is reclaimed even while slower or
        // faulty replicas hold full retirement back.
        let settled = self.quorum_floor.min(self.committed);
        while self.instance_floor < settled {
            self.instance_floor += 1;
            self.instances.remove(&self.instance_floor);
        }
    }

    /// Retires every slot acked by **all** replicas (the minimum ack
    /// floor), dropping its remaining state — value, checkpoint-reply
    /// bookkeeping, and instance if still present. Only then is traffic
    /// for the slot refused: no correct replica can ever need it again.
    fn try_retire(&mut self, env: &mut Env<SmrMsg<V>, SmrEvent<V>>) {
        let all_floor = self.ack_floors.iter().copied().min().unwrap_or(0);
        let new_floor = all_floor.min(self.committed);
        if new_floor <= self.low_water {
            return;
        }
        for slot in self.low_water + 1..=new_floor {
            self.instances.remove(&slot);
            self.recent.remove(&slot);
            self.ckpt_sent.remove(&slot);
            self.cert_sigs.remove(&slot);
        }
        self.low_water = new_floor;
        env.output(SmrEvent::Retired { through: new_floor });
    }

    /// Answers a laggard's slot traffic with the committed value — once per
    /// peer per slot, and only for peers whose ack floor shows they have
    /// not committed the slot.
    fn checkpoint_reply(
        &mut self,
        slot: u64,
        to: ProcessId,
        env: &mut Env<SmrMsg<V>, SmrEvent<V>>,
    ) {
        if self.ack_floors[to.index()] >= slot {
            return; // the peer already committed this slot
        }
        let Some(value) = self.recent.get(&slot) else {
            return;
        };
        if !self.ckpt_sent.entry(slot).or_default().insert(to.index()) {
            return; // already served
        }
        // Certificate mode, with a complete certificate in hand: one
        // self-contained message replaces the peer's need for `t + 1`
        // matching echoes. An incomplete certificate (we committed before
        // our peers' sig-acks arrived) falls back to the echo path.
        if self.certs.is_some() {
            if let Some(cert) = self.cert_sigs.get(&slot) {
                if cert.len() >= self.cfg.system.quorum() {
                    env.send(
                        to,
                        SmrMsg::CertCheckpoint {
                            slot,
                            value: value.clone(),
                            cert: cert.clone(),
                        },
                    );
                    return;
                }
            }
        }
        env.send(
            to,
            SmrMsg::Checkpoint {
                slot,
                value: value.clone(),
            },
        );
    }

    /// Counts a checkpoint vote for slot `committed + 1`; with `t + 1`
    /// matching votes (one of them necessarily correct) the certified value
    /// is committed directly — the laggard catch-up path.
    fn on_checkpoint(
        &mut self,
        from: ProcessId,
        slot: u64,
        value: V,
        env: &mut Env<SmrMsg<V>, SmrEvent<V>>,
    ) {
        if slot == 0 || slot > self.target_slots {
            return;
        }
        // A correct sender only checkpoints slots it committed, so the
        // message doubles as a cumulative ack — this also repairs acks a
        // far-behind replica dropped before catching up.
        if slot > self.ack_floors[from.index()] {
            self.note_ack(slot, from, env);
            self.try_retire(env);
            self.try_start(env);
        }
        if slot != self.committed + 1 {
            return; // stale, or unsolicited for a slot we cannot use yet
        }
        if !self.ckpt_seen.insert(from.index()) {
            return; // one vote per sender
        }
        let votes = match self.ckpt_votes.iter_mut().find(|(v, _)| *v == value) {
            Some((_, count)) => {
                *count += 1;
                *count
            }
            None => {
                self.ckpt_votes.push((value.clone(), 1));
                1
            }
        };
        if votes >= self.cfg.system.plurality() {
            // Drop the local instance (its protocol run is moot) and any
            // buffered traffic for the slot, then adopt the decision.
            self.instances.remove(&slot);
            if let Some(msgs) = self.pending.remove(&slot) {
                self.buffered -= msgs.len();
            }
            self.commit(slot, value, env);
        }
    }
}

impl<V: Value, P: ProposalSource<V> + core::fmt::Debug> core::fmt::Debug for ReplicaNode<V, P> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ReplicaNode")
            .field("source", &self.source)
            .field("committed", &self.committed)
            .field("low_water", &self.low_water)
            .field("buffered", &self.buffered)
            .finish()
    }
}

impl<V: Value, P: ProposalSource<V>> Node for ReplicaNode<V, P> {
    type Msg = SmrMsg<V>;
    type Output = SmrEvent<V>;

    fn on_start(&mut self, env: &mut Env<SmrMsg<V>, SmrEvent<V>>) {
        if !self.recovered.is_empty() {
            // Replay the crash-recovered prefix (see
            // [`ReplicaNode::with_recovered_prefix`]): state first, then
            // one cumulative ack instead of per-slot broadcasts.
            let prefix = std::mem::take(&mut self.recovered);
            for (i, value) in prefix.into_iter().enumerate() {
                let slot = i as u64 + 1;
                self.committed = slot;
                self.trace_stage(env, TraceKind::Committed { slot });
                if let Some(watch) = &mut self.watch {
                    watch.on_commit(slot, &value);
                }
                self.source.on_commit(slot, &value);
                env.output(SmrEvent::Committed {
                    slot,
                    command: value.clone(),
                });
                if let Some(auth) = &self.certs {
                    let sig = auth.sign(&commit_statement(slot, &value));
                    self.cert_sigs.entry(slot).or_default().add(auth.me(), sig);
                }
                self.recent.insert(slot, value);
            }
            self.started = self.committed;
            match &self.certs {
                Some(auth) => {
                    let slot = self.committed;
                    let value = self.recent.get(&slot).expect("prefix is non-empty");
                    let sig = auth.sign(&commit_statement(slot, value));
                    env.broadcast(SmrMsg::SigAck { slot, sig });
                }
                None => env.broadcast(SmrMsg::Ack {
                    slot: self.committed,
                }),
            }
            self.note_ack(self.committed, env.me(), env);
        }
        if self.limits.ckpt_retry > 0 {
            self.ckpt_retry_timer = Some(env.set_timer(self.limits.ckpt_retry));
        }
        self.try_start(env);
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: SmrMsg<V>,
        env: &mut Env<SmrMsg<V>, SmrEvent<V>>,
    ) {
        match msg {
            SmrMsg::Slot { slot, msg } => {
                if slot == 0 || slot > self.target_slots {
                    return; // out-of-range slot: Byzantine garbage
                }
                if slot <= self.low_water {
                    self.count_retired_drop();
                    return;
                }
                if self.instances.contains_key(&slot) {
                    self.drive(slot, env, |node, ienv| node.on_message(from, msg, ienv));
                } else if slot <= self.committed {
                    // Committed here but the sender is still working on it:
                    // hand it the certified decision instead.
                    self.checkpoint_reply(slot, from, env);
                } else if slot > self.started {
                    // A replica ahead of us (or a flooder): buffer within
                    // the caps, drop beyond them.
                    if slot > self.committed + 1 + self.limits.future_horizon
                        || self.buffered >= self.limits.max_buffered
                    {
                        self.count_future_drop();
                    } else {
                        self.buffered += 1;
                        self.pending.entry(slot).or_default().push((from, msg));
                    }
                }
                // Started slots whose instance is gone were checkpoint-
                // committed; their late traffic needs no reply until we
                // commit them (handled by the `slot <= committed` arm).
            }
            SmrMsg::Ack { slot } => {
                // Acks are cumulative (a peer acks its whole committed
                // prefix), so one floor per peer is the entire ack state —
                // no horizon cap needed, and stale acks are free to ignore.
                if slot == 0 || slot > self.target_slots || slot <= self.ack_floors[from.index()] {
                    return;
                }
                self.note_ack(slot, from, env);
                self.try_retire(env);
                self.try_start(env);
            }
            SmrMsg::Checkpoint { slot, value } => {
                self.on_checkpoint(from, slot, value, env);
            }
            SmrMsg::SigAck { slot, sig } => {
                if slot == 0 || slot > self.target_slots {
                    return;
                }
                // Collect the signature if we committed the slot and still
                // hold its value (a signature for a slot we have not
                // committed is unverifiable — the certificate path is
                // opportunistic, see the crate docs).
                if let Some(auth) = self.certs.clone() {
                    if slot > self.low_water {
                        if let Some(value) = self.recent.get(&slot) {
                            if auth.verify_sig(from, &commit_statement(slot, value), &sig) {
                                self.cert_sigs.entry(slot).or_default().add(from, sig);
                            } else {
                                self.count_cert_reject();
                                return; // a forged ack raises no floors
                            }
                        }
                    }
                }
                // Ack semantics, identical to SmrMsg::Ack.
                if slot <= self.ack_floors[from.index()] {
                    return;
                }
                self.note_ack(slot, from, env);
                self.try_retire(env);
                self.try_start(env);
            }
            SmrMsg::CertCheckpoint { slot, value, cert } => {
                let Some(auth) = self.certs.clone() else {
                    // Certificate mode off: grade it down to one ordinary
                    // checkpoint vote from its sender.
                    self.on_checkpoint(from, slot, value, env);
                    return;
                };
                if slot == 0 || slot > self.target_slots {
                    return;
                }
                let n = self.cfg.system.n();
                let quorum = self.cfg.system.quorum();
                if !cert.verify(auth.as_ref(), &commit_statement(slot, &value), n, quorum) {
                    self.count_cert_reject();
                    return;
                }
                // A correct sender only serves slots it committed, so the
                // message doubles as a cumulative ack — as with Checkpoint.
                if slot > self.ack_floors[from.index()] {
                    self.note_ack(slot, from, env);
                    self.try_retire(env);
                    self.try_start(env);
                }
                if slot != self.committed + 1 {
                    return; // stale, or a slot we cannot use yet
                }
                // One valid certificate commits directly: n − t signers
                // include a correct majority vouching for the value.
                self.instances.remove(&slot);
                if let Some(msgs) = self.pending.remove(&slot) {
                    self.buffered -= msgs.len();
                }
                self.commit(slot, value, env);
            }
        }
    }

    fn on_timer(&mut self, timer: TimerId, env: &mut Env<SmrMsg<V>, SmrEvent<V>>) {
        if self.ckpt_retry_timer == Some(timer) {
            // Lossy-link catch-up (see [`SmrLimits::ckpt_retry`]): forget
            // which checkpoints were already served, re-announce our own
            // floor, and *push* the next slot to every peer whose ack
            // floor trails our committed prefix. The push is what makes
            // recovery unconditional: a replica rejoining after a long
            // partition may have gone fully quiescent (its in-flight
            // instances backed off, every reply to it already marked
            // served and lost), so repair cannot rely on the laggard
            // asking — each period, up to one checkpoint per peer flows
            // from whoever holds the data, and each commit it unlocks
            // raises the floor that gates the next one.
            self.ckpt_sent.clear();
            if self.committed > 0 {
                env.broadcast(SmrMsg::Ack {
                    slot: self.committed,
                });
            }
            for p in 0..self.ack_floors.len() {
                let peer = ProcessId::new(p);
                let floor = self.ack_floors[p];
                if peer != env.me() && floor < self.committed {
                    self.checkpoint_reply(floor + 1, peer, env);
                }
            }
            // Loss can also wedge the *next* slot's consensus at every
            // replica at once — no one committed it, so there is no
            // checkpoint to push. Replay everything our head-of-line
            // instance has said: receivers key sub-protocol state by
            // sender (duplicates are no-ops), and peers already past the
            // slot answer with a checkpoint instead.
            let head = self.committed + 1;
            if let Some(msgs) = self.outbox.get(&head) {
                for msg in msgs {
                    env.broadcast(SmrMsg::Slot {
                        slot: head,
                        msg: msg.clone(),
                    });
                }
            }
            self.ckpt_retry_timer = Some(env.set_timer(self.limits.ckpt_retry));
            return;
        }
        if let Some(slot) = self.timer_slots.remove(&timer) {
            self.drive(slot, env, |node, ienv| node.on_timer(timer, ienv));
        }
    }

    fn label(&self) -> &'static str {
        "smr-replica"
    }
}

/// Commits observed so far at process `p` — the standard stop-predicate
/// helper for replicated-log runs (each [`SmrEvent::Committed`] is one
/// slot; [`SmrEvent::Retired`] markers are not counted).
pub fn committed_count<V: Value>(outputs: &[OutputRecord<SmrEvent<V>>], p: ProcessId) -> u64 {
    outputs
        .iter()
        .filter(|o| o.process == p)
        .filter(|o| matches!(o.event, SmrEvent::Committed { .. }))
        .count() as u64
}

/// Reconstructs each replica's committed log from simulation outputs
/// ([`SmrEvent::Retired`] markers are skipped — retirement drops *replica*
/// state, not the observed history).
///
/// Under a batching source each log entry is a whole batch; flatten with
/// the batch type's accessors to recover the client-command sequence.
pub fn collect_logs<V: Value>(
    outputs: &[OutputRecord<SmrEvent<V>>],
) -> BTreeMap<usize, BTreeMap<u64, V>> {
    let mut logs: BTreeMap<usize, BTreeMap<u64, V>> = BTreeMap::new();
    for rec in outputs {
        if let SmrEvent::Committed { slot, command } = &rec.event {
            logs.entry(rec.process.index())
                .or_default()
                .insert(*slot, command.clone());
        }
    }
    logs
}

#[cfg(test)]
mod tests {
    use super::*;
    use minsync_types::{Round, SystemConfig};

    fn cfg4() -> ConsensusConfig {
        ConsensusConfig::paper(SystemConfig::new(4, 1).unwrap())
    }

    /// A syntactically valid protocol message for drop-path tests (its
    /// content never reaches an instance in those tests).
    fn garbage_msg() -> ProtocolMsg<u64> {
        ProtocolMsg::EaProp2 {
            round: Round::FIRST,
            value: 0,
        }
    }

    #[test]
    fn two_client_source_advances_with_the_commit_stream() {
        let mut s = TwoClientSource::new(1);
        assert_eq!(s.propose(1), 1000);
        // One of client 1's commands committed → next seq.
        s.on_commit(1, &1000);
        assert_eq!(s.propose(2), 1001);
        // Client 2's commits don't advance client 1's stream.
        s.on_commit(2, &2000);
        assert_eq!(s.propose(3), 1001);
    }

    #[test]
    #[should_panic(expected = "clients 1 and 2")]
    fn bad_client_rejected() {
        let _ = TwoClientSource::new(3);
    }

    #[test]
    fn closures_are_proposal_sources() {
        let mut f = |slot: u64| slot * 10;
        assert_eq!(ProposalSource::propose(&mut f, 3), 30);
    }

    #[test]
    fn proc_set_deduplicates_members() {
        let mut s = ProcSet::default();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(0));
        assert!(!s.insert(0));
    }

    #[test]
    fn future_traffic_beyond_horizon_is_dropped_and_counted() {
        let mut r: ReplicaNode<u64, TwoClientSource> =
            ReplicaNode::new(cfg4(), TwoClientSource::new(1), 1000).with_limits(SmrLimits {
                window: 4,
                future_horizon: 8,
                max_buffered: 16,
                ckpt_retry: 0,
            });
        let mut env = Env::new(4, 0);
        env.prepare(ProcessId::new(0), minsync_net::VirtualTime::ZERO);
        r.on_start(&mut env);
        let _ = env.take_buffer();
        // Messages far beyond the horizon are refused outright.
        for i in 0..100u64 {
            r.on_message(
                ProcessId::new(3),
                SmrMsg::Slot {
                    slot: 500 + i,
                    msg: garbage_msg(),
                },
                &mut env,
            );
        }
        assert_eq!(r.buffered_len(), 0);
        assert_eq!(r.future_drops(), 100);
    }

    #[test]
    fn buffer_cap_bounds_in_horizon_flood() {
        let mut r: ReplicaNode<u64, TwoClientSource> =
            ReplicaNode::new(cfg4(), TwoClientSource::new(1), 1000).with_limits(SmrLimits {
                window: 64,
                future_horizon: 64,
                max_buffered: 16,
                ckpt_retry: 0,
            });
        let mut env = Env::new(4, 0);
        env.prepare(ProcessId::new(0), minsync_net::VirtualTime::ZERO);
        r.on_start(&mut env);
        let _ = env.take_buffer();
        // A flood of distinct in-horizon future slots: the total cap holds.
        for i in 0..200u64 {
            r.on_message(
                ProcessId::new(3),
                SmrMsg::Slot {
                    slot: 3 + (i % 60),
                    msg: garbage_msg(),
                },
                &mut env,
            );
        }
        assert_eq!(r.buffered_len(), 16);
        assert_eq!(r.future_drops(), 200 - 16);
    }

    #[test]
    fn retired_traffic_is_refused() {
        let mut r: ReplicaNode<u64, TwoClientSource> =
            ReplicaNode::new(cfg4(), TwoClientSource::new(1), 10);
        // Force the floor up without running a full execution.
        r.low_water = 3;
        let mut env = Env::new(4, 0);
        env.prepare(ProcessId::new(0), minsync_net::VirtualTime::ZERO);
        r.on_message(
            ProcessId::new(2),
            SmrMsg::Slot {
                slot: 2,
                msg: garbage_msg(),
            },
            &mut env,
        );
        assert_eq!(r.retired_drops(), 1);
    }

    #[test]
    fn checkpoint_plurality_commits_directly() {
        let mut r: ReplicaNode<u64, TwoClientSource> =
            ReplicaNode::new(cfg4(), TwoClientSource::new(1), 10);
        let mut env = Env::new(4, 0);
        env.prepare(ProcessId::new(0), minsync_net::VirtualTime::ZERO);
        r.on_start(&mut env);
        let _ = env.take_buffer();
        // One vote is not enough; a second distinct sender is (t + 1 = 2).
        r.on_message(
            ProcessId::new(1),
            SmrMsg::Checkpoint { slot: 1, value: 77 },
            &mut env,
        );
        assert_eq!(r.committed_count(), 0);
        // Repeated votes from the same sender don't count.
        r.on_message(
            ProcessId::new(1),
            SmrMsg::Checkpoint { slot: 1, value: 77 },
            &mut env,
        );
        assert_eq!(r.committed_count(), 0);
        r.on_message(
            ProcessId::new(2),
            SmrMsg::Checkpoint { slot: 1, value: 77 },
            &mut env,
        );
        assert_eq!(r.committed_count(), 1);
        let committed: Vec<_> = env
            .drain()
            .filter_map(|e| match e {
                Effect::Output(SmrEvent::Committed { slot, command }) => Some((slot, command)),
                _ => None,
            })
            .collect();
        assert_eq!(committed, [(1, 77)]);
    }

    #[test]
    fn ckpt_retry_clears_the_served_marks_and_reannounces_the_floor() {
        let mut r: ReplicaNode<u64, TwoClientSource> =
            ReplicaNode::new(cfg4(), TwoClientSource::new(1), 10).with_limits(SmrLimits {
                ckpt_retry: 10,
                ..SmrLimits::default()
            });
        let mut env = Env::new(4, 0);
        env.prepare(ProcessId::new(0), minsync_net::VirtualTime::ZERO);
        r.on_start(&mut env);
        let retry = env
            .drain()
            .find_map(|e| match e {
                Effect::SetTimer { id, delay: 10 } => Some(id),
                _ => None,
            })
            .expect("retry timer armed on start");
        // Commit slot 1 through the checkpoint plurality.
        for p in [1, 2] {
            r.on_message(
                ProcessId::new(p),
                SmrMsg::Checkpoint { slot: 1, value: 77 },
                &mut env,
            );
        }
        assert_eq!(r.committed_count(), 1);
        let _ = env.take_buffer();
        let serves_checkpoint =
            |r: &mut ReplicaNode<u64, TwoClientSource>,
             env: &mut Env<SmrMsg<u64>, SmrEvent<u64>>| {
                r.on_message(
                    ProcessId::new(3),
                    SmrMsg::Slot {
                        slot: 1,
                        msg: garbage_msg(),
                    },
                    env,
                );
                env.drain().any(|e| {
                    matches!(
                        e,
                        Effect::Send {
                            msg: SmrMsg::Checkpoint { slot: 1, value: 77 },
                            ..
                        }
                    )
                })
            };
        assert!(serves_checkpoint(&mut r, &mut env), "first request served");
        assert!(
            !serves_checkpoint(&mut r, &mut env),
            "second request rate-limited"
        );
        // The retry timer forgives the marks, re-announces our floor, and
        // pushes the next slot to the one peer whose ack floor trails us
        // (3 never acked; 1 and 2 acked implicitly via their checkpoint
        // votes) — so a dropped reply is a delay, not a wedge, even if
        // the laggard never asks again.
        r.on_timer(retry, &mut env);
        let effects: Vec<_> = env.drain().collect();
        assert!(
            effects.iter().any(|e| matches!(
                e,
                Effect::Broadcast {
                    msg: SmrMsg::Ack { slot: 1 }
                }
            )),
            "cumulative ack re-broadcast"
        );
        let pushes: Vec<_> = effects
            .iter()
            .filter_map(|e| match e {
                Effect::Send {
                    to,
                    msg: SmrMsg::Checkpoint { slot: 1, value: 77 },
                } => Some(to.index()),
                _ => None,
            })
            .collect();
        assert_eq!(pushes, vec![3], "push goes to the laggard alone");
        assert!(
            effects
                .iter()
                .any(|e| matches!(e, Effect::SetTimer { delay: 10, .. })),
            "timer re-armed"
        );
    }

    #[test]
    fn commit_log_hook_sees_fresh_commits_only() {
        let wal: Arc<std::sync::Mutex<Vec<(u64, u64)>>> = Arc::default();
        let sink = Arc::clone(&wal);
        let mut r: ReplicaNode<u64, TwoClientSource> =
            ReplicaNode::new(cfg4(), TwoClientSource::new(1), 10)
                .with_recovered_prefix(vec![1000, 2000])
                .with_commit_log(move |slot, value| sink.lock().unwrap().push((slot, *value)));
        let mut env = Env::new(4, 0);
        env.prepare(ProcessId::new(0), minsync_net::VirtualTime::ZERO);
        r.on_start(&mut env);
        let _ = env.take_buffer();
        assert!(
            wal.lock().unwrap().is_empty(),
            "replayed slots are already persisted and must not re-log"
        );
        for p in [1, 2] {
            r.on_message(
                ProcessId::new(p),
                SmrMsg::Checkpoint { slot: 3, value: 77 },
                &mut env,
            );
        }
        assert_eq!(r.committed_count(), 3);
        assert_eq!(*wal.lock().unwrap(), [(3, 77)]);
    }

    #[test]
    fn watch_gauges_track_floors_and_prefix_digest() {
        // Drive commits through the replay path: three replicas, two with
        // identical logs, one diverging at slot 2.
        let run = |id: usize, log: Vec<u64>| -> Registry {
            let registry = Registry::new();
            let mut r: ReplicaNode<u64, TwoClientSource> =
                ReplicaNode::new(cfg4(), TwoClientSource::new(1), 10)
                    .with_watch(&registry, id)
                    .with_recovered_prefix(log);
            let mut env = Env::new(4, 0);
            env.prepare(ProcessId::new(id), minsync_net::VirtualTime::ZERO);
            r.on_start(&mut env);
            let _ = env.drain().count();
            registry
        };
        let a = run(0, vec![1000, 2000]).snapshot();
        let b = run(1, vec![1000, 2000]).snapshot();
        let c = run(2, vec![1000, 2001]).snapshot();
        assert_eq!(a.gauge("watch.p0.submitted"), Some(10));
        assert_eq!(a.gauge("watch.p0.commit_floor"), Some(2));
        assert_eq!(a.gauge("watch.p0.committed_cmds"), Some(2));
        assert_eq!(a.gauge("watch.p0.ckpt_slot"), Some(2));
        assert_eq!(
            a.gauge("watch.p0.ckpt_digest"),
            b.gauge("watch.p1.ckpt_digest"),
            "identical prefixes expose identical digests"
        );
        assert_ne!(
            a.gauge("watch.p0.ckpt_digest"),
            c.gauge("watch.p2.ckpt_digest"),
            "a diverging prefix exposes a different digest"
        );
        assert!(a.gauge("watch.p0.ack_floor").is_some());
    }

    #[test]
    fn recovered_prefix_replays_then_tail_catches_up_by_checkpoint() {
        let mut r: ReplicaNode<u64, TwoClientSource> =
            ReplicaNode::new(cfg4(), TwoClientSource::new(1), 10)
                .with_recovered_prefix(vec![1000, 2000, 1001]);
        let mut env = Env::new(4, 0);
        env.prepare(ProcessId::new(0), minsync_net::VirtualTime::ZERO);
        r.on_start(&mut env);
        assert_eq!(r.committed_count(), 3, "prefix replayed");
        let effects: Vec<_> = env.drain().collect();
        let committed: Vec<_> = effects
            .iter()
            .filter_map(|e| match e {
                Effect::Output(SmrEvent::Committed { slot, command }) => Some((*slot, *command)),
                _ => None,
            })
            .collect();
        assert_eq!(committed, [(1, 1000), (2, 2000), (3, 1001)]);
        let acks: Vec<_> = effects
            .iter()
            .filter_map(|e| match e {
                Effect::Broadcast {
                    msg: SmrMsg::Ack { slot },
                } => Some(*slot),
                _ => None,
            })
            .collect();
        assert_eq!(acks, [3], "one cumulative ack for the whole prefix");
        assert!(
            effects.iter().any(|e| matches!(
                e,
                Effect::Broadcast {
                    msg: SmrMsg::Slot { slot: 4, .. }
                }
            )),
            "the slot after the prefix starts immediately"
        );
        // The tail arrives through the ordinary checkpoint path (t + 1
        // matching votes).
        for p in [1, 2] {
            r.on_message(
                ProcessId::new(p),
                SmrMsg::Checkpoint { slot: 4, value: 77 },
                &mut env,
            );
        }
        assert_eq!(r.committed_count(), 4, "caught up past the prefix");
        // And the recovered slots are servable to other laggards.
        let _ = env.take_buffer();
        r.on_message(
            ProcessId::new(3),
            SmrMsg::Slot {
                slot: 2,
                msg: garbage_msg(),
            },
            &mut env,
        );
        assert!(
            env.drain().any(|e| matches!(
                e,
                Effect::Send {
                    to,
                    msg: SmrMsg::Checkpoint {
                        slot: 2,
                        value: 2000
                    }
                } if to == ProcessId::new(3)
            )),
            "recovered value serves checkpoint catch-up"
        );
    }

    #[test]
    fn conflicting_checkpoint_votes_do_not_certify() {
        let mut r: ReplicaNode<u64, TwoClientSource> =
            ReplicaNode::new(cfg4(), TwoClientSource::new(1), 10);
        let mut env = Env::new(4, 0);
        env.prepare(ProcessId::new(0), minsync_net::VirtualTime::ZERO);
        r.on_start(&mut env);
        let _ = env.take_buffer();
        r.on_message(
            ProcessId::new(1),
            SmrMsg::Checkpoint { slot: 1, value: 7 },
            &mut env,
        );
        r.on_message(
            ProcessId::new(2),
            SmrMsg::Checkpoint { slot: 1, value: 8 },
            &mut env,
        );
        assert_eq!(r.committed_count(), 0, "split votes must not certify");
    }

    #[test]
    fn cumulative_acks_retire_everything_with_one_ack_per_peer() {
        let mut r: ReplicaNode<u64, TwoClientSource> =
            ReplicaNode::new(cfg4(), TwoClientSource::new(1), 10);
        let mut env = Env::new(4, 0);
        env.prepare(ProcessId::new(0), minsync_net::VirtualTime::ZERO);
        r.on_start(&mut env);
        // Commit slots 1 and 2 via checkpoint certification (t + 1 = 2
        // matching votes each). The checkpoints double as acks from their
        // senders.
        for slot in 1..=2u64 {
            for peer in [1, 2] {
                r.on_message(
                    ProcessId::new(peer),
                    SmrMsg::Checkpoint {
                        slot,
                        value: 100 + slot,
                    },
                    &mut env,
                );
            }
        }
        assert_eq!(r.committed_count(), 2);
        // Floors: me = 2 (own commits), p1 = p2 = 2 (implicit), p3 = 0 —
        // a 3-of-4 quorum reaches slot 2, full retirement does not.
        assert_eq!(r.quorum_floor(), 2);
        assert_eq!(r.low_water(), 0);
        // The instances behind the quorum floor are gone; only the active
        // slot (3) remains.
        assert_eq!(r.live_instances(), 1);
        let _ = env.take_buffer();
        // ONE cumulative ack from the last peer retires both slots: the
        // floor covers its whole committed prefix, so earlier per-slot
        // acks lost to any cause are irrelevant.
        r.on_message(ProcessId::new(3), SmrMsg::Ack { slot: 2 }, &mut env);
        assert_eq!(r.low_water(), 2);
        let retired: Vec<_> = env
            .drain()
            .filter_map(|e| match e {
                Effect::Output(SmrEvent::Retired { through }) => Some(through),
                _ => None,
            })
            .collect();
        assert_eq!(retired, [2]);
    }

    #[test]
    fn stale_and_out_of_range_acks_are_ignored() {
        let mut r: ReplicaNode<u64, TwoClientSource> =
            ReplicaNode::new(cfg4(), TwoClientSource::new(1), 10);
        let mut env = Env::new(4, 0);
        env.prepare(ProcessId::new(0), minsync_net::VirtualTime::ZERO);
        r.on_start(&mut env);
        let _ = env.take_buffer();
        r.on_message(ProcessId::new(1), SmrMsg::Ack { slot: 4 }, &mut env);
        // A lower ack from the same peer cannot regress its floor, and
        // out-of-range acks change nothing.
        r.on_message(ProcessId::new(1), SmrMsg::Ack { slot: 2 }, &mut env);
        r.on_message(ProcessId::new(2), SmrMsg::Ack { slot: 999 }, &mut env);
        assert_eq!(r.quorum_floor(), 0, "one peer is not a quorum");
        r.on_message(ProcessId::new(2), SmrMsg::Ack { slot: 3 }, &mut env);
        // Floors 0 (me), 4, 3, 0: the 3rd largest is 0 — still no quorum
        // past any slot.
        assert_eq!(r.quorum_floor(), 0);
        r.on_message(ProcessId::new(3), SmrMsg::Ack { slot: 5 }, &mut env);
        // Floors 0, 4, 3, 5 → quorum (3) reaches slot 3.
        assert_eq!(r.quorum_floor(), 3);
        // Retirement still requires *everyone* — and our own floor is 0.
        assert_eq!(r.low_water(), 0);
    }

    #[test]
    fn classify_names_the_control_plane() {
        assert_eq!(SmrMsg::<u64>::classify(&SmrMsg::Ack { slot: 1 }), "SMR_ACK");
        assert_eq!(
            SmrMsg::<u64>::classify(&SmrMsg::Checkpoint { slot: 1, value: 0 }),
            "SMR_CKPT"
        );
        let sig = ToySigner::new(ProcessId::new(0)).sign(b"s");
        assert_eq!(
            SmrMsg::<u64>::classify(&SmrMsg::SigAck { slot: 1, sig }),
            "SMR_SIGACK"
        );
        assert_eq!(
            SmrMsg::<u64>::classify(&SmrMsg::CertCheckpoint {
                slot: 1,
                value: 0,
                cert: QuorumCert::new()
            }),
            "SMR_CERT_CKPT"
        );
    }

    // -- certificate mode --------------------------------------------------

    use minsync_auth::{HmacAuthenticator, ToySigner};

    fn cert_replica(ring: &[HmacAuthenticator], me: usize) -> ReplicaNode<u64, TwoClientSource> {
        ReplicaNode::new(cfg4(), TwoClientSource::new(1), 10).with_certs(Arc::new(ring[me].clone()))
    }

    fn env_for(me: usize) -> Env<SmrMsg<u64>, SmrEvent<u64>> {
        let mut env = Env::new(4, 0);
        env.prepare(ProcessId::new(me), minsync_net::VirtualTime::ZERO);
        env
    }

    #[test]
    fn one_valid_cert_checkpoint_commits_a_laggard() {
        let ring = HmacAuthenticator::deal(b"smr-cert-test", 4);
        let mut r = cert_replica(&ring, 0);
        let mut env = env_for(0);
        r.on_start(&mut env);
        let _ = env.take_buffer();
        let statement = commit_statement(1, &77u64);
        let mut cert = QuorumCert::new();
        for (i, key) in ring.iter().enumerate().skip(1) {
            cert.add(ProcessId::new(i), key.sign(&statement));
        }
        // The echo path needs t + 1 = 2 matching checkpoints; one certified
        // message suffices.
        r.on_message(
            ProcessId::new(1),
            SmrMsg::CertCheckpoint {
                slot: 1,
                value: 77,
                cert,
            },
            &mut env,
        );
        assert_eq!(r.committed_count(), 1);
        assert_eq!(r.cert_rejects(), 0);
    }

    #[test]
    fn transplanted_and_short_certs_are_refused() {
        let ring = HmacAuthenticator::deal(b"smr-cert-test", 4);
        let mut r = cert_replica(&ring, 0);
        let mut env = env_for(0);
        r.on_start(&mut env);
        let _ = env.take_buffer();
        // A perfectly good certificate — for a different value.
        let statement = commit_statement(1, &78u64);
        let mut cert = QuorumCert::new();
        for (i, key) in ring.iter().enumerate().skip(1) {
            cert.add(ProcessId::new(i), key.sign(&statement));
        }
        r.on_message(
            ProcessId::new(1),
            SmrMsg::CertCheckpoint {
                slot: 1,
                value: 77,
                cert,
            },
            &mut env,
        );
        assert_eq!(r.committed_count(), 0, "transplanted cert must not commit");
        assert_eq!(r.cert_rejects(), 1);
        // A short certificate (t + 1 < n − t signers) is not commit
        // evidence either — that is the whole point of the quorum bound.
        let statement = commit_statement(1, &77u64);
        let mut short = QuorumCert::new();
        for (i, key) in ring.iter().enumerate().take(3).skip(1) {
            short.add(ProcessId::new(i), key.sign(&statement));
        }
        r.on_message(
            ProcessId::new(1),
            SmrMsg::CertCheckpoint {
                slot: 1,
                value: 77,
                cert: short,
            },
            &mut env,
        );
        assert_eq!(r.committed_count(), 0);
        assert_eq!(r.cert_rejects(), 2);
    }

    #[test]
    fn sig_acks_assemble_a_cert_that_serves_laggards() {
        let ring = HmacAuthenticator::deal(b"smr-cert-test", 4);
        let mut r = cert_replica(&ring, 0);
        let mut env = env_for(0);
        r.on_start(&mut env);
        let _ = env.take_buffer();
        // Commit slot 1 via the echo path (t + 1 matching checkpoints).
        for peer in [1, 2] {
            r.on_message(
                ProcessId::new(peer),
                SmrMsg::Checkpoint { slot: 1, value: 77 },
                &mut env,
            );
        }
        assert_eq!(r.committed_count(), 1);
        // Our commit broadcast a SigAck, not a plain Ack.
        let broadcast: Vec<_> = env
            .take_buffer()
            .into_iter()
            .filter_map(|e| match e {
                Effect::Broadcast { msg } => Some(SmrMsg::classify(&msg).to_owned()),
                _ => None,
            })
            .collect();
        assert!(
            broadcast.contains(&"SMR_SIGACK".to_owned()),
            "{broadcast:?}"
        );
        // Two peers' signatures complete the n − t = 3 certificate (ours
        // was added on commit).
        let statement = commit_statement(1, &77u64);
        for peer in [1usize, 2] {
            r.on_message(
                ProcessId::new(peer),
                SmrMsg::SigAck {
                    slot: 1,
                    sig: ring[peer].sign(&statement),
                },
                &mut env,
            );
        }
        let _ = env.take_buffer();
        // A laggard's slot traffic is now answered with one certified
        // checkpoint instead of an echo.
        r.on_message(
            ProcessId::new(3),
            SmrMsg::Slot {
                slot: 1,
                msg: garbage_msg(),
            },
            &mut env,
        );
        let replies: Vec<_> = env
            .drain()
            .filter_map(|e| match e {
                Effect::Send { to, msg } => Some((to, msg)),
                _ => None,
            })
            .collect();
        assert_eq!(replies.len(), 1);
        let (to, msg) = &replies[0];
        assert_eq!(*to, ProcessId::new(3));
        match msg {
            SmrMsg::CertCheckpoint { slot, value, cert } => {
                assert_eq!((*slot, *value), (1, 77));
                assert!(cert.verify(&ring[3], &statement, 4, 3));
            }
            other => panic!("expected a certified checkpoint, got {other:?}"),
        }
    }

    #[test]
    fn forged_sig_acks_are_counted_and_raise_no_floors() {
        let ring = HmacAuthenticator::deal(b"smr-cert-test", 4);
        let mut r = cert_replica(&ring, 0);
        let mut env = env_for(0);
        r.on_start(&mut env);
        let _ = env.take_buffer();
        for peer in [1, 2] {
            r.on_message(
                ProcessId::new(peer),
                SmrMsg::Checkpoint { slot: 1, value: 77 },
                &mut env,
            );
        }
        assert_eq!(r.committed_count(), 1);
        // Floors so far: me = 1, p1 = p2 = 1 (checkpoints double as acks),
        // p3 = 0 — retirement waits on p3.
        assert_eq!(r.low_water(), 0);
        // A forged signature from p3 is refused outright: it neither joins
        // the certificate nor counts as an ack.
        r.on_message(
            ProcessId::new(3),
            SmrMsg::SigAck {
                slot: 1,
                sig: ring[3].sign(b"some other statement"),
            },
            &mut env,
        );
        assert_eq!(r.cert_rejects(), 1);
        assert_eq!(r.low_water(), 0, "a forged ack must not advance GC");
        // The genuine article retires the slot.
        r.on_message(
            ProcessId::new(3),
            SmrMsg::SigAck {
                slot: 1,
                sig: ring[3].sign(&commit_statement(1, &77u64)),
            },
            &mut env,
        );
        assert_eq!(r.cert_rejects(), 1);
        assert_eq!(r.low_water(), 1);
    }
}
