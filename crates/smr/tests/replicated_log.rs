//! Integration tests of the replicated log: identical logs across replicas
//! under asynchrony and Byzantine faults, pipelined slots, log GC, and the
//! bounded future-slot buffer under a flooding adversary.

use minsync_adversary::{FloodNode, SilentNode};
use minsync_core::ConsensusConfig;
use minsync_net::sim::SimBuilder;
use minsync_net::{ChannelTiming, DelayLaw, NetworkTopology, Node};
use minsync_smr::{
    collect_logs, committed_count, ReplicaNode, SmrEvent, SmrLimits, SmrMsg, TwoClientSource,
};
use minsync_types::SystemConfig;

type Msg = SmrMsg<u64>;
type Out = SmrEvent<u64>;

fn run_replicas(
    n: usize,
    t: usize,
    slots: u64,
    silent: usize,
    topo: NetworkTopology,
    seed: u64,
) -> std::collections::BTreeMap<usize, std::collections::BTreeMap<u64, u64>> {
    let system = SystemConfig::new(n, t).unwrap();
    let cfg = ConsensusConfig::paper(system);
    let mut builder = SimBuilder::new(topo).seed(seed).max_events(20_000_000);
    let correct = n - silent;
    for i in 0..n {
        if i < correct {
            builder = builder.node(ReplicaNode::new(
                cfg,
                TwoClientSource::new(1 + (i as u64 % 2)),
                slots,
            ));
        } else {
            builder = builder
                .boxed_node(Box::new(SilentNode::<Msg, Out>::new())
                    as Box<dyn Node<Msg = Msg, Output = Out>>);
        }
    }
    let mut sim = builder.build();
    let report = sim.run_until(move |outs| {
        (0..correct).all(|p| committed_count(outs, minsync_types::ProcessId::new(p)) >= slots)
    });
    collect_logs(&report.outputs)
}

fn assert_logs_identical(
    logs: &std::collections::BTreeMap<usize, std::collections::BTreeMap<u64, u64>>,
    expected_replicas: usize,
    slots: u64,
) {
    assert_eq!(
        logs.len(),
        expected_replicas,
        "every correct replica commits"
    );
    let reference = logs.values().next().unwrap();
    assert_eq!(reference.len() as u64, slots);
    for (replica, log) in logs {
        assert_eq!(log, reference, "replica {replica} diverged");
    }
}

#[test]
fn four_replicas_six_slots_synchronous() {
    let logs = run_replicas(4, 1, 6, 0, NetworkTopology::all_timely(4, 3), 1);
    assert_logs_identical(&logs, 4, 6);
}

#[test]
fn logs_agree_under_asynchrony() {
    let topo = NetworkTopology::uniform(
        4,
        ChannelTiming::asynchronous(DelayLaw::Uniform { min: 1, max: 20 }),
    );
    for seed in 0..3 {
        let logs = run_replicas(4, 1, 5, 0, topo.clone(), seed);
        assert_logs_identical(&logs, 4, 5);
    }
}

#[test]
fn tolerates_silent_replica() {
    let logs = run_replicas(4, 1, 5, 1, NetworkTopology::all_timely(4, 3), 3);
    assert_logs_identical(&logs, 3, 5);
}

#[test]
fn seven_replicas_two_silent() {
    let logs = run_replicas(7, 2, 4, 2, NetworkTopology::all_timely(7, 2), 5);
    assert_logs_identical(&logs, 5, 4);
}

#[test]
fn every_committed_command_is_well_formed() {
    let logs = run_replicas(4, 1, 6, 0, NetworkTopology::all_timely(4, 3), 9);
    for log in logs.values() {
        for &cmd in log.values() {
            let client = TwoClientSource::client_of(cmd);
            assert!(
                client == 1 || client == 2,
                "command {cmd} from unknown client"
            );
        }
        // Per-client sequence numbers are committed in order without gaps.
        for client in [1u64, 2] {
            let seqs: Vec<u64> = log
                .values()
                .filter(|c| TwoClientSource::client_of(**c) == client)
                .map(|c| c % 1000)
                .collect();
            for (i, &s) in seqs.iter().enumerate() {
                assert_eq!(
                    s, i as u64,
                    "client {client} commands out of order: {seqs:?}"
                );
            }
        }
    }
}

#[test]
fn same_seed_same_log() {
    let a = run_replicas(4, 1, 5, 0, NetworkTopology::all_timely(4, 3), 11);
    let b = run_replicas(4, 1, 5, 0, NetworkTopology::all_timely(4, 3), 11);
    assert_eq!(a, b);
}

/// With every replica correct, acks retire every slot: each replica
/// announces `Retired` reaching the full log, so live state (instances,
/// ack sets, values) is dropped behind the pipeline.
#[test]
fn all_correct_run_retires_the_whole_log() {
    const SLOTS: u64 = 8;
    let system = SystemConfig::new(4, 1).unwrap();
    let cfg = ConsensusConfig::paper(system);
    let mut builder = SimBuilder::new(NetworkTopology::all_timely(4, 3)).seed(21);
    for i in 0..4 {
        builder = builder.node(ReplicaNode::new(
            cfg,
            TwoClientSource::new(1 + (i as u64 % 2)),
            SLOTS,
        ));
    }
    let mut sim = builder.build();
    let report = sim.run_until(|outs| {
        (0..4).all(|p| {
            outs.iter()
                .filter(|o| o.process.index() == p)
                .any(|o| matches!(o.event, SmrEvent::Retired { through } if through >= SLOTS))
        })
    });
    assert!(
        (0..4).all(|p| {
            report
                .outputs
                .iter()
                .filter(|o| o.process.index() == p)
                .any(|o| matches!(o.event, SmrEvent::Retired { through } if through >= SLOTS))
        }),
        "every replica retired the full log"
    );
    // Retirement floors only ever advance.
    for p in 0..4 {
        let floors: Vec<u64> = report
            .outputs
            .iter()
            .filter(|o| o.process.index() == p)
            .filter_map(|o| match o.event {
                SmrEvent::Retired { through } => Some(through),
                _ => None,
            })
            .collect();
        assert!(
            floors.windows(2).all(|w| w[0] < w[1]),
            "floor regressed: {floors:?}"
        );
    }
}

/// Regression test for the bounded future-slot buffer: a Byzantine flooder
/// sweeping *in-range* future slots (so every copy reaches the
/// horizon/buffer logic rather than the out-of-range early return) must
/// not stop the correct replicas from building identical logs, and the
/// flood volume must vastly exceed what any replica is allowed to buffer.
/// The exact `future_drops`/`buffered_len` arithmetic of the same drop
/// paths is pinned sans-io by the unit tests in `minsync-smr`.
#[test]
fn flooding_adversary_cannot_break_liveness_or_memory() {
    // The log is long (64 target slots) but the run only needs the first
    // few commits: the flood's slot sweep stays inside `target_slots`, so
    // replicas at slot ~2 see slots up to 64 — some within the horizon
    // (buffered until the 32-message cap), most beyond it (dropped).
    const TARGET: u64 = 64;
    const CHECK: u64 = 6;
    let n = 4;
    let system = SystemConfig::new(n, 1).unwrap();
    let cfg = ConsensusConfig::paper(system);
    let limits = SmrLimits {
        window: 8,
        future_horizon: 16,
        max_buffered: 32, // tiny on purpose: the flood must overflow it
        ckpt_retry: 0,
    };
    let mut builder = SimBuilder::new(NetworkTopology::all_timely(n, 3))
        .seed(13)
        .max_events(20_000_000);
    for i in 0..n - 1 {
        builder = builder.node(
            ReplicaNode::new(cfg, TwoClientSource::new(1 + (i as u64 % 2)), TARGET)
                .with_limits(limits),
        );
    }
    builder = builder.boxed_node(Box::new(FloodNode::<Msg, Out, _>::new(1, 16, 200, |i| {
        SmrMsg::Slot {
            slot: 2 + (i % (TARGET - 1)),
            msg: minsync_core::ProtocolMsg::EaProp2 {
                round: minsync_types::Round::FIRST,
                value: 0xDEAD,
            },
        }
    })) as Box<dyn Node<Msg = Msg, Output = Out>>);
    let mut sim = builder.build();
    let report = sim.run_until(move |outs| {
        (0..n - 1).all(|p| committed_count(outs, minsync_types::ProcessId::new(p)) >= CHECK)
    });
    // The flood really flowed (16 msgs × 200 bursts × n destinations),
    // and each replica could buffer at most 32 of those ~3200 copies.
    assert!(
        report
            .metrics
            .sent_by_process(minsync_types::ProcessId::new(n - 1))
            >= 10_000,
        "flood too small to prove anything"
    );
    // Liveness: every correct replica committed the checked prefix, and
    // the prefixes are identical.
    let logs = collect_logs(&report.outputs);
    assert_eq!(logs.len(), n - 1, "every correct replica commits");
    let reference: Vec<u64> = (1..=CHECK).map(|s| logs[&0][&s]).collect();
    for (replica, log) in &logs {
        let prefix: Vec<u64> = (1..=CHECK).map(|s| log[&s]).collect();
        assert_eq!(prefix, reference, "replica {replica} diverged");
        // No flooded command ever entered a log.
        assert!(log.values().all(|&c| c != 0xDEAD));
    }
}
