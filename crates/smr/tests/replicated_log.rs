//! Integration tests of the replicated log: identical logs across replicas
//! under asynchrony and Byzantine faults, with pipelined slots.

use minsync_adversary::SilentNode;
use minsync_core::ConsensusConfig;
use minsync_net::sim::SimBuilder;
use minsync_net::{ChannelTiming, DelayLaw, NetworkTopology, Node};
use minsync_smr::{collect_logs, ReplicaNode, SlotMsg, SmrEvent, TwoClientSource};
use minsync_types::SystemConfig;

type Msg = SlotMsg<u64>;
type Out = SmrEvent<u64>;

fn run_replicas(
    n: usize,
    t: usize,
    slots: u64,
    silent: usize,
    topo: NetworkTopology,
    seed: u64,
) -> std::collections::BTreeMap<usize, std::collections::BTreeMap<u64, u64>> {
    let system = SystemConfig::new(n, t).unwrap();
    let cfg = ConsensusConfig::paper(system);
    let mut builder = SimBuilder::new(topo).seed(seed).max_events(20_000_000);
    let correct = n - silent;
    for i in 0..n {
        if i < correct {
            builder = builder.node(ReplicaNode::new(
                cfg,
                TwoClientSource::new(1 + (i as u64 % 2)),
                slots,
            ));
        } else {
            builder = builder
                .boxed_node(Box::new(SilentNode::<Msg, Out>::new())
                    as Box<dyn Node<Msg = Msg, Output = Out>>);
        }
    }
    let mut sim = builder.build();
    let report = sim.run_until(move |outs| {
        (0..correct).all(|p| outs.iter().filter(|o| o.process.index() == p).count() as u64 >= slots)
    });
    collect_logs(&report.outputs)
}

fn assert_logs_identical(
    logs: &std::collections::BTreeMap<usize, std::collections::BTreeMap<u64, u64>>,
    expected_replicas: usize,
    slots: u64,
) {
    assert_eq!(
        logs.len(),
        expected_replicas,
        "every correct replica commits"
    );
    let reference = logs.values().next().unwrap();
    assert_eq!(reference.len() as u64, slots);
    for (replica, log) in logs {
        assert_eq!(log, reference, "replica {replica} diverged");
    }
}

#[test]
fn four_replicas_six_slots_synchronous() {
    let logs = run_replicas(4, 1, 6, 0, NetworkTopology::all_timely(4, 3), 1);
    assert_logs_identical(&logs, 4, 6);
}

#[test]
fn logs_agree_under_asynchrony() {
    let topo = NetworkTopology::uniform(
        4,
        ChannelTiming::asynchronous(DelayLaw::Uniform { min: 1, max: 20 }),
    );
    for seed in 0..3 {
        let logs = run_replicas(4, 1, 5, 0, topo.clone(), seed);
        assert_logs_identical(&logs, 4, 5);
    }
}

#[test]
fn tolerates_silent_replica() {
    let logs = run_replicas(4, 1, 5, 1, NetworkTopology::all_timely(4, 3), 3);
    assert_logs_identical(&logs, 3, 5);
}

#[test]
fn seven_replicas_two_silent() {
    let logs = run_replicas(7, 2, 4, 2, NetworkTopology::all_timely(7, 2), 5);
    assert_logs_identical(&logs, 5, 4);
}

#[test]
fn every_committed_command_is_well_formed() {
    let logs = run_replicas(4, 1, 6, 0, NetworkTopology::all_timely(4, 3), 9);
    for log in logs.values() {
        for &cmd in log.values() {
            let client = TwoClientSource::client_of(cmd);
            assert!(
                client == 1 || client == 2,
                "command {cmd} from unknown client"
            );
        }
        // Per-client sequence numbers are committed in order without gaps.
        for client in [1u64, 2] {
            let seqs: Vec<u64> = log
                .values()
                .filter(|c| TwoClientSource::client_of(**c) == client)
                .map(|c| c % 1000)
                .collect();
            for (i, &s) in seqs.iter().enumerate() {
                assert_eq!(
                    s, i as u64,
                    "client {client} commands out of order: {seqs:?}"
                );
            }
        }
    }
}

#[test]
fn same_seed_same_log() {
    let a = run_replicas(4, 1, 5, 0, NetworkTopology::all_timely(4, 3), 11);
    let b = run_replicas(4, 1, 5, 0, NetworkTopology::all_timely(4, 3), 11);
    assert_eq!(a, b);
}
