//! Property test: replicated-log safety over random seeds and slot counts.

use minsync_core::ConsensusConfig;
use minsync_net::sim::SimBuilder;
use minsync_net::{ChannelTiming, DelayLaw, NetworkTopology};
use minsync_smr::{collect_logs, committed_count, ReplicaNode, TwoClientSource};
use minsync_types::{ProcessId, SystemConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// All replicas commit identical logs of well-formed commands, for any
    /// seed and slot count, on a noisy asynchronous network.
    #[test]
    fn logs_are_identical_and_well_formed(seed in any::<u64>(), slots in 1u64..5) {
        let system = SystemConfig::new(4, 1).unwrap();
        let cfg = ConsensusConfig::paper(system);
        let topo = NetworkTopology::uniform(
            4,
            ChannelTiming::asynchronous(DelayLaw::Uniform { min: 1, max: 15 }),
        );
        let mut builder = SimBuilder::new(topo).seed(seed).max_events(10_000_000);
        for i in 0..4 {
            builder = builder.node(ReplicaNode::new(
                cfg,
                TwoClientSource::new(1 + (i as u64 % 2)),
                slots,
            ));
        }
        let mut sim = builder.build();
        let report =
            sim.run_until(move |outs| (0..4).all(|p| committed_count(outs, ProcessId::new(p)) >= slots));
        let logs = collect_logs(&report.outputs);
        prop_assert_eq!(logs.len(), 4, "every replica commits");
        let reference = logs.values().next().unwrap();
        prop_assert_eq!(reference.len() as u64, slots);
        for log in logs.values() {
            prop_assert_eq!(log, reference, "log divergence");
        }
        // Per-client sequence numbers commit in order without gaps.
        for client in [1u64, 2] {
            let seqs: Vec<u64> = reference
                .values()
                .filter(|c| TwoClientSource::client_of(**c) == client)
                .map(|c| c % 1000)
                .collect();
            for (i, &s) in seqs.iter().enumerate() {
                prop_assert_eq!(s, i as u64, "client {} out of order: {:?}", client, seqs);
            }
        }
    }
}
