//! Property tests: RB and CB properties under random delivery schedules and
//! Byzantine message injection.
//!
//! The harness here is a "message soup": every in-flight message sits in a
//! pool and a seeded RNG picks which (message, destination) pair fires next
//! — an arbitrary interleaving of an asynchronous reliable network.

use std::collections::{BTreeMap, BTreeSet};

use minsync_broadcast::{CbInstance, RbAction, RbActions, RbEngine, RbMsg};
use minsync_types::{ProcessId, SystemConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

type Tag = u32;
type Val = u64;
type Msg = RbMsg<Tag, Val>;

/// A pending delivery: message from `from`, still owed to `to`.
#[derive(Clone, Debug)]
struct Pending {
    from: ProcessId,
    to: ProcessId,
    msg: Msg,
}

struct Soup {
    engines: Vec<RbEngine<Tag, Val>>,
    /// Per-process CB instances fed by RB deliveries of tag 0.
    cbs: Vec<CbInstance<Val>>,
    correct: Vec<usize>,
    pool: Vec<Pending>,
    deliveries: Vec<(usize, ProcessId, Tag, Val)>,
    rng: StdRng,
    n: usize,
}

impl Soup {
    fn new(cfg: SystemConfig, correct: Vec<usize>, seed: u64) -> Self {
        let n = cfg.n();
        Soup {
            engines: (0..n)
                .map(|i| RbEngine::new(cfg, ProcessId::new(i)))
                .collect(),
            cbs: (0..n).map(|_| CbInstance::new(cfg)).collect(),
            correct,
            pool: Vec::new(),
            deliveries: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            n,
        }
    }

    fn broadcast_from(&mut self, origin: usize, tag: Tag, value: Val) {
        let actions = self.engines[origin].broadcast(tag, value);
        self.apply(origin, actions);
    }

    /// Byzantine injection: send `msg` to a single target only.
    fn inject(&mut self, from: usize, to: usize, msg: Msg) {
        self.pool.push(Pending {
            from: ProcessId::new(from),
            to: ProcessId::new(to),
            msg,
        });
    }

    fn apply(&mut self, process: usize, actions: RbActions<Tag, Val>) {
        for action in actions {
            match action {
                RbAction::Broadcast(msg) => {
                    for to in 0..self.n {
                        self.pool.push(Pending {
                            from: ProcessId::new(process),
                            to: ProcessId::new(to),
                            msg: msg.clone(),
                        });
                    }
                }
                RbAction::Deliver { origin, tag, value } => {
                    self.deliveries.push((process, origin, tag, value));
                    if tag == 0 {
                        self.cbs[process].on_rb_delivered(origin, value);
                    }
                }
            }
        }
    }

    /// Runs until the pool drains, delivering in random order. Byzantine
    /// processes swallow their deliveries (worst case: they never help).
    fn run(&mut self) {
        while !self.pool.is_empty() {
            let idx = self.rng.gen_range(0..self.pool.len());
            let Pending { from, to, msg } = self.pool.swap_remove(idx);
            if !self.correct.contains(&to.index()) {
                continue;
            }
            let actions = self.engines[to.index()].on_message(from, msg);
            self.apply(to.index(), actions);
        }
    }

    fn delivered_value(&self, process: usize, origin: ProcessId, tag: Tag) -> Option<Val> {
        self.deliveries
            .iter()
            .find(|&&(p, o, tg, _)| p == process && o == origin && tg == tag)
            .map(|&(_, _, _, v)| v)
    }
}

fn small_system() -> impl Strategy<Value = (SystemConfig, Vec<usize>)> {
    (1usize..=2).prop_flat_map(|t| {
        let n = 3 * t + 1;
        // Choose which t processes are Byzantine (possibly fewer).
        proptest::collection::btree_set(0..n, 0..=t).prop_map(move |byz| {
            let correct: Vec<usize> = (0..n).filter(|i| !byz.contains(i)).collect();
            (SystemConfig::new(n, t).unwrap(), correct)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// RB-Termination-1 + RB-Validity: a correct origin's broadcast is
    /// delivered by every correct process, with the origin's value,
    /// regardless of schedule and of silent Byzantine processes.
    #[test]
    fn correct_broadcast_delivered_by_all((cfg, correct) in small_system(), seed in any::<u64>()) {
        prop_assume!(!correct.is_empty());
        let origin = correct[0];
        let mut soup = Soup::new(cfg, correct.clone(), seed);
        soup.broadcast_from(origin, 1, 42);
        soup.run();
        for &p in &correct {
            prop_assert_eq!(
                soup.delivered_value(p, ProcessId::new(origin), 1),
                Some(42),
                "process {} missed the delivery", p
            );
        }
    }

    /// RB-Unicity: no correct process delivers twice for one instance.
    #[test]
    fn no_double_delivery((cfg, correct) in small_system(), seed in any::<u64>()) {
        prop_assume!(!correct.is_empty());
        let origin = correct[0];
        let mut soup = Soup::new(cfg, correct.clone(), seed);
        soup.broadcast_from(origin, 1, 9);
        soup.run();
        let mut seen: BTreeMap<(usize, ProcessId, Tag), usize> = BTreeMap::new();
        for &(p, o, tg, _) in &soup.deliveries {
            *seen.entry((p, o, tg)).or_insert(0) += 1;
        }
        prop_assert!(seen.values().all(|&c| c == 1), "double delivery detected");
    }

    /// RB-Termination-2: with an equivocating Byzantine origin, if any
    /// correct process delivers, all correct processes deliver the same
    /// value.
    #[test]
    fn equivocator_cannot_split_deliveries(
        (cfg, correct) in small_system(),
        seed in any::<u64>(),
        split in any::<u64>(),
    ) {
        prop_assume!(correct.len() < cfg.n()); // need at least one Byzantine slot
        let byz = (0..cfg.n()).find(|i| !correct.contains(i)).unwrap();
        let mut soup = Soup::new(cfg, correct.clone(), seed);
        // The equivocator sends INIT(a) to half the correct processes and
        // INIT(b) to the rest.
        for (i, &p) in correct.iter().enumerate() {
            let value = if (split >> (i % 64)) & 1 == 0 { 7 } else { 8 };
            soup.inject(byz, p, RbMsg::Init { tag: 3, value });
        }
        soup.run();
        let delivered: BTreeSet<Val> = soup
            .deliveries
            .iter()
            .filter(|&&(p, o, tg, _)| correct.contains(&p) && o == ProcessId::new(byz) && tg == 3)
            .map(|&(_, _, _, v)| v)
            .collect();
        prop_assert!(delivered.len() <= 1, "correct processes delivered {:?}", delivered);
        // And if one correct process delivered, all did (the soup runs to
        // quiescence, so "eventually" means "by the end").
        if delivered.len() == 1 {
            for &p in &correct {
                prop_assert!(
                    soup.delivered_value(p, ProcessId::new(byz), 3).is_some(),
                    "termination-2 violated at process {}", p
                );
            }
        }
    }

    /// CB properties (Figure 1 / Theorem 1) under the feasibility
    /// condition: all correct processes propose from a feasible value set;
    /// Byzantine processes RB-broadcast an alien value. Eventually:
    /// cb_valid sets are equal, non-empty, and contain no alien value.
    #[test]
    fn cb_sets_agree_and_exclude_byzantine_values(
        (cfg, correct) in small_system(),
        seed in any::<u64>(),
        assignment in proptest::collection::vec(0usize..2, 16),
    ) {
        // m = 2 is feasible for n = 3t+1 ⇔ ⌊(n−t−1)/t⌋ = 2 ≥ 2 ✓... only
        // if some value has t+1 correct proposers; pigeonhole over
        // 2t+1 correct and 2 values guarantees one has ≥ t+1.
        prop_assume!(correct.len() >= cfg.quorum());
        let values = [100u64, 200u64];
        let mut soup = Soup::new(cfg, correct.clone(), seed);
        for (i, &p) in correct.iter().enumerate() {
            soup.broadcast_from(p, 0, values[assignment[i % assignment.len()]]);
        }
        // Byzantine processes RB-broadcast the alien value 666 (tag 0).
        for b in (0..cfg.n()).filter(|i| !correct.contains(i)) {
            soup.broadcast_from(b, 0, 666);
        }
        soup.run();
        let sets: Vec<BTreeSet<Val>> = correct.iter().map(|&p| soup.cbs[p].cb_valid()).collect();
        for s in &sets {
            prop_assert!(!s.is_empty(), "CB-Set Termination violated");
            prop_assert!(!s.contains(&666), "CB-Set Validity violated: alien value admitted");
            prop_assert_eq!(s, &sets[0]);
        }
    }
}
