//! The cooperative broadcast (CB) abstraction — Section 2.3, Figure 1.
//!
//! CB is a one-shot **all-to-all** broadcast: every correct process
//! cb-broadcasts a value; each process maintains a read-only set `cb_valid`
//! and the operation returns a value from that set once it is non-empty.
//! Figure 1 implements it on top of RB:
//!
//! * line 1: `RB_broadcast CB_VAL(v_i)`;
//! * line 4: when `CB_VAL(v)` is RB-delivered from `t + 1` different
//!   processes, add `v` to `cb_valid_i` (at least one of the `t + 1` is
//!   correct, so `cb_valid` only ever contains values cb-broadcast by
//!   correct processes — CB-Set Validity);
//! * lines 2–3: wait until `cb_valid_i ≠ ∅`, return any value in it.
//!
//! Under the feasibility condition `n − t > m·t` some value is proposed by
//! `t + 1` correct processes, so every `cb_valid` set eventually fills
//! (CB-Set Termination) and, by RB-Termination-2, all correct processes end
//! up with equal sets (CB-Set Agreement).
//!
//! [`CbInstance`] is the per-instance bookkeeping hosted by the consensus
//! automaton: the host performs the RB broadcast itself (so all RB traffic
//! shares one engine) and feeds RB deliveries in.

use std::collections::{BTreeMap, BTreeSet};

use minsync_types::{ProcessId, SystemConfig, Value};

/// State of one cooperative-broadcast instance at one process.
///
/// ```rust
/// use minsync_broadcast::CbInstance;
/// use minsync_types::{ProcessId, SystemConfig};
///
/// # fn main() -> Result<(), minsync_types::ConfigError> {
/// let cfg = SystemConfig::new(4, 1)?; // t + 1 = 2
/// let mut cb: CbInstance<u64> = CbInstance::new(cfg);
/// assert!(cb.on_rb_delivered(ProcessId::new(0), 7).is_none());
/// // Second distinct RB-delivery of 7 → becomes valid.
/// assert_eq!(cb.on_rb_delivered(ProcessId::new(1), 7), Some(7));
/// assert_eq!(cb.returnable(), Some(&7));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct CbInstance<V> {
    cfg: SystemConfig,
    /// Which processes RB-delivered `CB_VAL(v)`, per value. RB-Unicity
    /// guarantees at most one value per origin, which `senders_seen`
    /// enforces defensively.
    support: BTreeMap<V, BTreeSet<ProcessId>>,
    senders_seen: BTreeSet<ProcessId>,
    /// Values with `t + 1` distinct supporters, in the order they became
    /// valid (the paper's `cb_valid_i`, plus a deterministic "first" for
    /// line 3's *any value*).
    valid_in_order: Vec<V>,
}

impl<V: Value> CbInstance<V> {
    /// Creates the instance bookkeeping for system `cfg`.
    pub fn new(cfg: SystemConfig) -> Self {
        CbInstance {
            cfg,
            support: BTreeMap::new(),
            senders_seen: BTreeSet::new(),
            valid_in_order: Vec::new(),
        }
    }

    /// Records that `CB_VAL(value)` was RB-delivered from `from` (Figure 1
    /// line 4). Returns `Some(value)` if this delivery just made the value
    /// valid, `None` otherwise.
    ///
    /// A second RB-delivery from the same origin is ignored (RB-Unicity
    /// makes this impossible with a correct RB layer; the guard keeps the
    /// object safe in isolation).
    pub fn on_rb_delivered(&mut self, from: ProcessId, value: V) -> Option<V> {
        if !self.senders_seen.insert(from) {
            return None;
        }
        let supporters = self.support.entry(value.clone()).or_default();
        supporters.insert(from);
        if supporters.len() == self.cfg.plurality() {
            self.valid_in_order.push(value.clone());
            Some(value)
        } else {
            None
        }
    }

    /// The paper's `cb_valid_i` set.
    pub fn cb_valid(&self) -> BTreeSet<V> {
        self.valid_in_order.iter().cloned().collect()
    }

    /// True if `value ∈ cb_valid_i`.
    pub fn is_valid(&self, value: &V) -> bool {
        self.valid_in_order.contains(value)
    }

    /// True once `cb_valid_i ≠ ∅` (the wait of Figure 1 line 2 can end).
    pub fn has_valid(&self) -> bool {
        !self.valid_in_order.is_empty()
    }

    /// Line 3's "any value in `cb_valid_i`": deterministically, the first
    /// value that became valid at this process. `None` while the set is
    /// empty.
    pub fn returnable(&self) -> Option<&V> {
        self.valid_in_order.first()
    }

    /// Number of distinct origins whose `CB_VAL` this process RB-delivered.
    pub fn deliveries(&self) -> usize {
        self.senders_seen.len()
    }

    /// Current support count for `value` (diagnostics / tests).
    pub fn support_of(&self, value: &V) -> usize {
        self.support.get(value).map_or(0, BTreeSet::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cb(n: usize, t: usize) -> CbInstance<u64> {
        CbInstance::new(SystemConfig::new(n, t).unwrap())
    }

    #[test]
    fn value_becomes_valid_at_exactly_t_plus_1() {
        let mut c = cb(7, 2); // plurality 3
        assert!(c.on_rb_delivered(ProcessId::new(0), 5).is_none());
        assert!(c.on_rb_delivered(ProcessId::new(1), 5).is_none());
        assert_eq!(c.on_rb_delivered(ProcessId::new(2), 5), Some(5));
        assert!(c.is_valid(&5));
        // Additional support does not re-announce.
        assert!(c.on_rb_delivered(ProcessId::new(3), 5).is_none());
    }

    #[test]
    fn byzantine_only_value_never_valid() {
        // t = 2: two Byzantine processes push 99; no correct process does.
        let mut c = cb(7, 2);
        assert!(c.on_rb_delivered(ProcessId::new(5), 99).is_none());
        assert!(c.on_rb_delivered(ProcessId::new(6), 99).is_none());
        assert!(
            !c.is_valid(&99),
            "CB-Set Validity: t supporters are not enough"
        );
        assert!(!c.has_valid());
    }

    #[test]
    fn duplicate_origin_is_ignored() {
        let mut c = cb(4, 1); // plurality 2
        assert!(c.on_rb_delivered(ProcessId::new(0), 5).is_none());
        // Same origin repeated — must not count twice.
        assert!(c.on_rb_delivered(ProcessId::new(0), 5).is_none());
        assert!(!c.has_valid());
        assert_eq!(c.deliveries(), 1);
    }

    #[test]
    fn returnable_is_first_valid_value() {
        let mut c = cb(7, 2);
        for p in 0..3 {
            c.on_rb_delivered(ProcessId::new(p), 10);
        }
        for p in 3..6 {
            c.on_rb_delivered(ProcessId::new(p), 4);
        }
        // 10 became valid first even though 4 < 10.
        assert_eq!(c.returnable(), Some(&10));
        assert_eq!(c.cb_valid(), [4u64, 10].into_iter().collect());
    }

    #[test]
    fn multiple_values_can_be_valid() {
        let mut c = cb(10, 3); // plurality 4
        for p in 0..4 {
            c.on_rb_delivered(ProcessId::new(p), 1);
        }
        for p in 4..8 {
            c.on_rb_delivered(ProcessId::new(p), 2);
        }
        assert!(c.is_valid(&1) && c.is_valid(&2));
        assert_eq!(c.cb_valid().len(), 2);
    }

    #[test]
    fn support_counts_are_visible() {
        let mut c = cb(4, 1);
        c.on_rb_delivered(ProcessId::new(2), 8);
        assert_eq!(c.support_of(&8), 1);
        assert_eq!(c.support_of(&9), 0);
    }
}
