//! Bracha's asynchronous reliable broadcast (Section 2.2 of the paper;
//! Bracha, *Information & Computation* 1987), multiplexed over instances.
//!
//! One instance per `(origin, tag)` pair. The protocol, for `t < n/3`:
//!
//! 1. The origin broadcasts `INIT(v)`.
//! 2. On the **first** `INIT(v)` from the origin, broadcast `ECHO(v)` (once).
//! 3. On `⌈(n+t+1)/2⌉` `ECHO(v)` from distinct senders, or `t+1` `READY(v)`
//!    from distinct senders, broadcast `READY(v)` (once).
//! 4. On `2t+1` `READY(v)` from distinct senders, deliver `v` (once).
//!
//! The quorum sizes come from [`SystemConfig`]; the §2.1 dedup rule (only
//! the first `INIT`/`ECHO`/`READY` of an instance from each sender counts)
//! is enforced here, which is what defeats equivocating Byzantine senders.

use core::fmt::Debug;
use std::collections::BTreeMap;

use minsync_types::{ProcessId, SystemConfig, Value};

/// Wire messages of the reliable-broadcast layer.
///
/// `T` tags instances so several concurrent RB uses share one engine; the
/// origin rides along explicitly in `Echo`/`Ready` because those are sent by
/// processes other than the origin.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RbMsg<T, V> {
    /// The origin's initial broadcast.
    Init {
        /// Instance tag.
        tag: T,
        /// Broadcast value.
        value: V,
    },
    /// Second-phase witness.
    Echo {
        /// Instance origin.
        origin: ProcessId,
        /// Instance tag.
        tag: T,
        /// Echoed value.
        value: V,
    },
    /// Third-phase commitment.
    Ready {
        /// Instance origin.
        origin: ProcessId,
        /// Instance tag.
        tag: T,
        /// Committed value.
        value: V,
    },
}

impl<T, V> RbMsg<T, V> {
    /// Short label for metrics classification.
    pub fn kind(&self) -> &'static str {
        match self {
            RbMsg::Init { .. } => "RB_INIT",
            RbMsg::Echo { .. } => "RB_ECHO",
            RbMsg::Ready { .. } => "RB_READY",
        }
    }
}

/// Effects the host must apply after feeding the engine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RbAction<T, V> {
    /// Best-effort-broadcast this message to **all** processes (self
    /// included).
    Broadcast(RbMsg<T, V>),
    /// RB-deliver `value` from `origin` for instance `tag` (fires at most
    /// once per instance — RB-Unicity).
    Deliver {
        /// Instance origin.
        origin: ProcessId,
        /// Instance tag.
        tag: T,
        /// Delivered value.
        value: V,
    },
}

/// Per-instance state.
#[derive(Clone, Debug)]
struct Instance<V> {
    /// Set when *this* process called [`RbEngine::broadcast`] for the
    /// instance (guards against accidental reuse; mere receipt of forged
    /// `ECHO`/`READY` naming us as origin must not count).
    initiated: bool,
    /// First INIT value seen from the origin (dedup of equivocating INITs).
    init_seen: bool,
    /// Have we broadcast our ECHO yet?
    echoed: bool,
    /// Have we broadcast our READY yet?
    readied: bool,
    /// Have we delivered yet?
    delivered: bool,
    /// First ECHO per sender.
    echoes: BTreeMap<ProcessId, V>,
    /// First READY per sender.
    readies: BTreeMap<ProcessId, V>,
}

impl<V> Default for Instance<V> {
    fn default() -> Self {
        Instance {
            initiated: false,
            init_seen: false,
            echoed: false,
            readied: false,
            delivered: false,
            echoes: BTreeMap::new(),
            readies: BTreeMap::new(),
        }
    }
}

/// Multi-instance Bracha reliable-broadcast engine for one host process.
///
/// See the [crate docs](crate) for a complete wiring example.
#[derive(Clone, Debug)]
pub struct RbEngine<T, V> {
    cfg: SystemConfig,
    me: ProcessId,
    instances: BTreeMap<(ProcessId, T), Instance<V>>,
}

impl<T, V> RbEngine<T, V>
where
    T: Clone + Ord + Debug,
    V: Value,
{
    /// Creates an engine for process `me` in system `cfg`.
    pub fn new(cfg: SystemConfig, me: ProcessId) -> Self {
        RbEngine {
            cfg,
            me,
            instances: BTreeMap::new(),
        }
    }

    /// RB-broadcasts `value` with this process as origin.
    ///
    /// Returns the `INIT` broadcast action; the origin's own `ECHO` follows
    /// when the network loops the `INIT` back (broadcast includes self).
    ///
    /// # Panics
    ///
    /// Panics if this process already RB-broadcast for `tag` — instances are
    /// one-shot.
    pub fn broadcast(&mut self, tag: T, value: V) -> Vec<RbAction<T, V>> {
        let key = (self.me, tag.clone());
        // A Byzantine process may have already sent us forged ECHO/READY
        // naming us as origin, creating the instance entry; only *our own*
        // initiation may exist once.
        let inst = self.instances.entry(key).or_default();
        assert!(
            !inst.initiated,
            "RB instance ({:?}, {:?}) already used by this origin",
            self.me, tag
        );
        inst.initiated = true;
        vec![RbAction::Broadcast(RbMsg::Init { tag, value })]
    }

    /// Feeds a received RB message (true sender stamped by the network).
    pub fn on_message(&mut self, from: ProcessId, msg: RbMsg<T, V>) -> Vec<RbAction<T, V>> {
        match msg {
            RbMsg::Init { tag, value } => self.on_init(from, tag, value),
            RbMsg::Echo { origin, tag, value } => self.on_echo(from, origin, tag, value),
            RbMsg::Ready { origin, tag, value } => self.on_ready(from, origin, tag, value),
        }
    }

    /// Has this process RB-delivered instance `(origin, tag)`?
    pub fn is_delivered(&self, origin: ProcessId, tag: &T) -> bool {
        self.instances
            .get(&(origin, tag.clone()))
            .is_some_and(|i| i.delivered)
    }

    /// Number of instances with any state (diagnostics).
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    fn on_init(&mut self, from: ProcessId, tag: T, value: V) -> Vec<RbAction<T, V>> {
        // The INIT of instance (origin, tag) is only meaningful from the
        // origin itself; a Byzantine process cannot impersonate (§2.1), so
        // `from` *is* the origin.
        let inst = self.instances.entry((from, tag.clone())).or_default();
        if inst.init_seen {
            return Vec::new(); // §2.1: discard duplicate INITs.
        }
        inst.init_seen = true;
        let mut actions = Vec::new();
        if !inst.echoed {
            inst.echoed = true;
            actions.push(RbAction::Broadcast(RbMsg::Echo {
                origin: from,
                tag,
                value,
            }));
        }
        actions
    }

    fn on_echo(
        &mut self,
        from: ProcessId,
        origin: ProcessId,
        tag: T,
        value: V,
    ) -> Vec<RbAction<T, V>> {
        let echo_quorum = self.cfg.echo_threshold();
        let inst = self.instances.entry((origin, tag.clone())).or_default();
        if inst.echoes.contains_key(&from) {
            return Vec::new(); // §2.1 dedup: first ECHO per sender only.
        }
        inst.echoes.insert(from, value.clone());
        let mut actions = Vec::new();
        if !inst.readied {
            let support = inst.echoes.values().filter(|v| **v == value).count();
            if support >= echo_quorum {
                inst.readied = true;
                actions.push(RbAction::Broadcast(RbMsg::Ready { origin, tag, value }));
            }
        }
        actions
    }

    fn on_ready(
        &mut self,
        from: ProcessId,
        origin: ProcessId,
        tag: T,
        value: V,
    ) -> Vec<RbAction<T, V>> {
        let amplify = self.cfg.ready_amplify_threshold();
        let deliver = self.cfg.ready_threshold();
        let inst = self.instances.entry((origin, tag.clone())).or_default();
        if inst.readies.contains_key(&from) {
            return Vec::new(); // §2.1 dedup: first READY per sender only.
        }
        inst.readies.insert(from, value.clone());
        let support = inst.readies.values().filter(|v| **v == value).count();
        let mut actions = Vec::new();
        if !inst.readied && support >= amplify {
            inst.readied = true;
            actions.push(RbAction::Broadcast(RbMsg::Ready {
                origin,
                tag: tag.clone(),
                value: value.clone(),
            }));
        }
        if !inst.delivered && support >= deliver {
            inst.delivered = true;
            actions.push(RbAction::Deliver { origin, tag, value });
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Engine = RbEngine<&'static str, u64>;

    fn cfg() -> SystemConfig {
        SystemConfig::new(4, 1).unwrap()
    }

    fn engines(n: usize) -> Vec<Engine> {
        (0..n)
            .map(|i| RbEngine::new(cfg(), ProcessId::new(i)))
            .collect()
    }

    /// Synchronously runs a message soup to quiescence, FIFO order.
    /// `byzantine` ids are excluded from processing (they only inject).
    fn run_soup(
        engines: &mut [Engine],
        mut wire: Vec<(ProcessId, RbMsg<&'static str, u64>)>,
        byzantine: &[usize],
    ) -> Vec<(usize, ProcessId, u64)> {
        let mut deliveries = Vec::new();
        let mut head = 0;
        while head < wire.len() {
            let (from, msg) = wire[head].clone();
            head += 1;
            for (i, engine) in engines.iter_mut().enumerate() {
                if byzantine.contains(&i) {
                    continue;
                }
                for action in engine.on_message(from, msg.clone()) {
                    match action {
                        RbAction::Broadcast(m) => wire.push((ProcessId::new(i), m)),
                        RbAction::Deliver { origin, value, .. } => {
                            deliveries.push((i, origin, value))
                        }
                    }
                }
            }
        }
        deliveries
    }

    fn start_broadcast(
        engines: &mut [Engine],
        origin: usize,
        tag: &'static str,
        value: u64,
    ) -> Vec<(ProcessId, RbMsg<&'static str, u64>)> {
        engines[origin]
            .broadcast(tag, value)
            .into_iter()
            .map(|a| match a {
                RbAction::Broadcast(m) => (ProcessId::new(origin), m),
                other => panic!("unexpected immediate action {other:?}"),
            })
            .collect()
    }

    #[test]
    fn correct_origin_everyone_delivers() {
        let mut e = engines(4);
        let wire = start_broadcast(&mut e, 0, "x", 7);
        let deliveries = run_soup(&mut e, wire, &[]);
        assert_eq!(deliveries.len(), 4);
        assert!(deliveries
            .iter()
            .all(|&(_, o, v)| o == ProcessId::new(0) && v == 7));
    }

    #[test]
    fn delivery_happens_once_per_instance() {
        let mut e = engines(4);
        let wire = start_broadcast(&mut e, 0, "x", 7);
        let deliveries = run_soup(&mut e, wire, &[]);
        let mut by_process: Vec<usize> = deliveries.iter().map(|&(i, _, _)| i).collect();
        by_process.sort();
        by_process.dedup();
        assert_eq!(by_process.len(), 4, "RB-Unicity violated");
    }

    #[test]
    fn distinct_tags_are_independent_instances() {
        let mut e = engines(4);
        let mut wire = start_broadcast(&mut e, 0, "a", 1);
        wire.extend(start_broadcast(&mut e, 0, "b", 2));
        let deliveries = run_soup(&mut e, wire, &[]);
        assert_eq!(deliveries.len(), 8);
        assert_eq!(deliveries.iter().filter(|&&(_, _, v)| v == 1).count(), 4);
        assert_eq!(deliveries.iter().filter(|&&(_, _, v)| v == 2).count(), 4);
    }

    #[test]
    #[should_panic(expected = "already used")]
    fn origin_cannot_reuse_instance() {
        let mut e = engines(4);
        let _ = e[0].broadcast("x", 1);
        let _ = e[0].broadcast("x", 2);
    }

    #[test]
    fn equivocating_init_yields_agreement_on_one_value() {
        // Byzantine p4 sends INIT(1) to p1, p2 and INIT(2) to p3.
        // Correct processes must not deliver different values
        // (RB-Termination-2 + RB-Unicity); with n = 4, t = 1 the echo
        // quorum is 3, so only a value echoed by ≥ 3 of {p1,p2,p3} can
        // progress — and at most one value can get 3 echoes.
        let mut e = engines(4);
        let byz = ProcessId::new(3);
        let mut wire = Vec::new();
        // Deliver the conflicting INITs directly to the targets.
        let mut deliveries = Vec::new();
        for (target, value) in [(0usize, 1u64), (1, 1), (2, 2)] {
            for action in e[target].on_message(byz, RbMsg::Init { tag: "x", value }) {
                match action {
                    RbAction::Broadcast(m) => wire.push((ProcessId::new(target), m)),
                    RbAction::Deliver { origin, value, .. } => {
                        deliveries.push((target, origin, value))
                    }
                }
            }
        }
        deliveries.extend(run_soup(&mut e, wire, &[3]));
        // With a 2/1 echo split no value reaches the quorum of 3:
        // nobody delivers anything — fine. The critical property: if any
        // correct process delivered, all delivered values agree.
        let values: std::collections::BTreeSet<u64> =
            deliveries.iter().map(|&(_, _, v)| v).collect();
        assert!(
            values.len() <= 1,
            "correct processes delivered different values"
        );
    }

    #[test]
    fn byzantine_echo_flood_cannot_force_wrong_value() {
        // p4 floods READY("x", 99) — a single Byzantine READY (t = 1) is
        // below both the amplification (2) and delivery (3) thresholds.
        let mut e = engines(4);
        let mut actions = Vec::new();
        for engine in e.iter_mut().take(3) {
            actions.extend(engine.on_message(
                ProcessId::new(3),
                RbMsg::Ready {
                    origin: ProcessId::new(3),
                    tag: "x",
                    value: 99,
                },
            ));
        }
        assert!(
            actions.is_empty(),
            "one Byzantine READY must not trigger anything"
        );
    }

    #[test]
    fn ready_amplification_carries_late_processes() {
        // RB-Termination-2 mechanism: a process that saw no INIT/ECHO still
        // delivers after 2t+1 READYs, and t+1 READYs make it broadcast its
        // own READY.
        let mut e = engines(4);
        let mut out = Vec::new();
        // p1 receives READY from p2 and p3 (2 = t+1): amplifies.
        out.extend(e[0].on_message(
            ProcessId::new(1),
            RbMsg::Ready {
                origin: ProcessId::new(1),
                tag: "x",
                value: 5,
            },
        ));
        assert!(out.is_empty());
        out.extend(e[0].on_message(
            ProcessId::new(2),
            RbMsg::Ready {
                origin: ProcessId::new(1),
                tag: "x",
                value: 5,
            },
        ));
        assert!(matches!(out[0], RbAction::Broadcast(RbMsg::Ready { .. })));
        // Its own READY loops back as the 3rd (2t+1): delivers.
        let acts = e[0].on_message(
            ProcessId::new(0),
            RbMsg::Ready {
                origin: ProcessId::new(1),
                tag: "x",
                value: 5,
            },
        );
        assert!(acts
            .iter()
            .any(|a| matches!(a, RbAction::Deliver { value: 5, .. })));
    }

    #[test]
    fn duplicate_messages_from_same_sender_discarded() {
        let mut e = engines(4);
        let ready = RbMsg::Ready {
            origin: ProcessId::new(1),
            tag: "x",
            value: 5,
        };
        // Same sender repeats READY 10 times: counts once.
        let mut actions = Vec::new();
        for _ in 0..10 {
            actions.extend(e[0].on_message(ProcessId::new(2), ready.clone()));
        }
        assert!(
            actions.is_empty(),
            "replays from one sender must not accumulate"
        );
    }

    #[test]
    fn echo_quorum_exact_boundary() {
        let cfg7 = SystemConfig::new(7, 2).unwrap(); // echo threshold 5
        let mut e: RbEngine<&'static str, u64> = RbEngine::new(cfg7, ProcessId::new(0));
        let mut actions = Vec::new();
        for sender in 1..=4 {
            actions.extend(e.on_message(
                ProcessId::new(sender),
                RbMsg::Echo {
                    origin: ProcessId::new(6),
                    tag: "x",
                    value: 9,
                },
            ));
        }
        assert!(actions.is_empty(), "4 echoes < threshold 5");
        actions.extend(e.on_message(
            ProcessId::new(5),
            RbMsg::Echo {
                origin: ProcessId::new(6),
                tag: "x",
                value: 9,
            },
        ));
        assert_eq!(actions.len(), 1, "5th echo crosses the quorum");
        assert!(matches!(
            &actions[0],
            RbAction::Broadcast(RbMsg::Ready { value: 9, .. })
        ));
    }

    #[test]
    fn mixed_value_echoes_do_not_cross_quorum() {
        // 5 echoes but split 3/2 between two values: no READY (n=7, t=2,
        // threshold 5 *per value*).
        let cfg7 = SystemConfig::new(7, 2).unwrap();
        let mut e: RbEngine<&'static str, u64> = RbEngine::new(cfg7, ProcessId::new(0));
        let mut actions = Vec::new();
        for (sender, value) in [(1, 9u64), (2, 9), (3, 9), (4, 8), (5, 8)] {
            actions.extend(e.on_message(
                ProcessId::new(sender),
                RbMsg::Echo {
                    origin: ProcessId::new(6),
                    tag: "x",
                    value,
                },
            ));
        }
        assert!(actions.is_empty());
    }

    #[test]
    fn kind_labels() {
        let m: RbMsg<u8, u8> = RbMsg::Init { tag: 0, value: 0 };
        assert_eq!(m.kind(), "RB_INIT");
        let m: RbMsg<u8, u8> = RbMsg::Echo {
            origin: ProcessId::new(0),
            tag: 0,
            value: 0,
        };
        assert_eq!(m.kind(), "RB_ECHO");
        let m: RbMsg<u8, u8> = RbMsg::Ready {
            origin: ProcessId::new(0),
            tag: 0,
            value: 0,
        };
        assert_eq!(m.kind(), "RB_READY");
    }
}
