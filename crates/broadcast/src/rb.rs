//! Bracha's asynchronous reliable broadcast (Section 2.2 of the paper;
//! Bracha, *Information & Computation* 1987), multiplexed over instances.
//!
//! One instance per `(origin, tag)` pair. The protocol, for `t < n/3`:
//!
//! 1. The origin broadcasts `INIT(v)`.
//! 2. On the **first** `INIT(v)` from the origin, broadcast `ECHO(v)` (once).
//! 3. On `⌈(n+t+1)/2⌉` `ECHO(v)` from distinct senders, or `t+1` `READY(v)`
//!    from distinct senders, broadcast `READY(v)` (once).
//! 4. On `2t+1` `READY(v)` from distinct senders, deliver `v` (once).
//!
//! The quorum sizes come from [`SystemConfig`]; the §2.1 dedup rule (only
//! the first `INIT`/`ECHO`/`READY` of an instance from each sender counts)
//! is enforced here, which is what defeats equivocating Byzantine senders.

use core::fmt::Debug;

use minsync_types::{ProcessId, SystemConfig, Value};

/// Wire messages of the reliable-broadcast layer.
///
/// `T` tags instances so several concurrent RB uses share one engine; the
/// origin rides along explicitly in `Echo`/`Ready` because those are sent by
/// processes other than the origin.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RbMsg<T, V> {
    /// The origin's initial broadcast.
    Init {
        /// Instance tag.
        tag: T,
        /// Broadcast value.
        value: V,
    },
    /// Second-phase witness.
    Echo {
        /// Instance origin.
        origin: ProcessId,
        /// Instance tag.
        tag: T,
        /// Echoed value.
        value: V,
    },
    /// Third-phase commitment.
    Ready {
        /// Instance origin.
        origin: ProcessId,
        /// Instance tag.
        tag: T,
        /// Committed value.
        value: V,
    },
}

impl<T, V> RbMsg<T, V> {
    /// Short label for metrics classification.
    pub fn kind(&self) -> &'static str {
        match self {
            RbMsg::Init { .. } => "RB_INIT",
            RbMsg::Echo { .. } => "RB_ECHO",
            RbMsg::Ready { .. } => "RB_READY",
        }
    }
}

/// Effects the host must apply after feeding the engine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RbAction<T, V> {
    /// Best-effort-broadcast this message to **all** processes (self
    /// included).
    Broadcast(RbMsg<T, V>),
    /// RB-deliver `value` from `origin` for instance `tag` (fires at most
    /// once per instance — RB-Unicity).
    Deliver {
        /// Instance origin.
        origin: ProcessId,
        /// Instance tag.
        tag: T,
        /// Delivered value.
        value: V,
    },
}

/// The actions one engine call produced: at most two (a READY
/// amplification plus a delivery), held inline so the per-message hot path
/// never allocates. Iterate it like the `Vec` it replaced.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RbActions<T, V>(Acts<T, V>);

#[derive(Clone, PartialEq, Eq, Debug)]
enum Acts<T, V> {
    Zero,
    One(RbAction<T, V>),
    Two(RbAction<T, V>, RbAction<T, V>),
}

impl<T, V> RbActions<T, V> {
    const NONE: Self = RbActions(Acts::Zero);

    fn one(a: RbAction<T, V>) -> Self {
        RbActions(Acts::One(a))
    }

    fn push(&mut self, a: RbAction<T, V>) {
        self.0 = match std::mem::replace(&mut self.0, Acts::Zero) {
            Acts::Zero => Acts::One(a),
            Acts::One(first) => Acts::Two(first, a),
            Acts::Two(..) => unreachable!("an RB step emits at most two actions"),
        };
    }

    /// Number of queued actions (0, 1, or 2).
    pub fn len(&self) -> usize {
        match self.0 {
            Acts::Zero => 0,
            Acts::One(_) => 1,
            Acts::Two(..) => 2,
        }
    }

    /// True if the call produced nothing.
    pub fn is_empty(&self) -> bool {
        matches!(self.0, Acts::Zero)
    }

    /// The `index`-th action, if present.
    pub fn get(&self, index: usize) -> Option<&RbAction<T, V>> {
        match (&self.0, index) {
            (Acts::One(a), 0) | (Acts::Two(a, _), 0) => Some(a),
            (Acts::Two(_, b), 1) => Some(b),
            _ => None,
        }
    }

    /// Borrowing iterator over the actions.
    pub fn iter(&self) -> impl Iterator<Item = &RbAction<T, V>> {
        (0..self.len()).filter_map(|i| self.get(i))
    }
}

impl<T, V> core::ops::Index<usize> for RbActions<T, V> {
    type Output = RbAction<T, V>;

    fn index(&self, index: usize) -> &RbAction<T, V> {
        self.get(index).expect("RbActions index out of range")
    }
}

impl<T, V> IntoIterator for RbActions<T, V> {
    type Item = RbAction<T, V>;
    type IntoIter = ActionsIter<T, V>;

    fn into_iter(self) -> ActionsIter<T, V> {
        ActionsIter(self.0)
    }
}

/// Owning iterator over an [`RbActions`].
#[derive(Debug)]
pub struct ActionsIter<T, V>(Acts<T, V>);

impl<T, V> Iterator for ActionsIter<T, V> {
    type Item = RbAction<T, V>;

    fn next(&mut self) -> Option<RbAction<T, V>> {
        match std::mem::replace(&mut self.0, Acts::Zero) {
            Acts::Zero => None,
            Acts::One(a) => Some(a),
            Acts::Two(a, b) => {
                self.0 = Acts::One(b);
                Some(a)
            }
        }
    }
}

/// Per-instance state. The per-sender dedup sets are flat vectors — at most
/// `n` entries each, scanned linearly, which beats a tree probe for every
/// realistic system size and keeps each instance in a handful of cache
/// lines.
#[derive(Clone, Debug)]
struct Instance<V> {
    /// Set when *this* process called [`RbEngine::broadcast`] for the
    /// instance (guards against accidental reuse; mere receipt of forged
    /// `ECHO`/`READY` naming us as origin must not count).
    initiated: bool,
    /// First INIT value seen from the origin (dedup of equivocating INITs).
    init_seen: bool,
    /// Have we broadcast our ECHO yet?
    echoed: bool,
    /// Have we broadcast our READY yet?
    readied: bool,
    /// Have we delivered yet?
    delivered: bool,
    /// First ECHO per sender (insertion order).
    echoes: Vec<(ProcessId, V)>,
    /// First READY per sender (insertion order).
    readies: Vec<(ProcessId, V)>,
}

impl<V> Instance<V> {
    /// A fresh instance with the dedup sets sized for `n` senders up
    /// front — one allocation each instead of a doubling ladder as
    /// echoes trickle in.
    fn sized_for(n: usize) -> Self {
        Instance {
            initiated: false,
            init_seen: false,
            echoed: false,
            readied: false,
            delivered: false,
            echoes: Vec::with_capacity(n),
            readies: Vec::with_capacity(n),
        }
    }
}

/// Multi-instance Bracha reliable-broadcast engine for one host process.
///
/// See the [crate docs](crate) for a complete wiring example.
#[derive(Clone, Debug)]
pub struct RbEngine<T, V> {
    cfg: SystemConfig,
    me: ProcessId,
    /// Instance state, split per origin: the origin's process id indexes a
    /// dense vector; within an origin, instances live in a flat vector in
    /// creation order, scanned backwards (protocols create instances
    /// round-by-round, so the live ones sit at the tail and a probe is one
    /// bounds-checked index plus a couple of tag compares).
    instances: Vec<Vec<(T, Instance<V>)>>,
}

impl<T, V> RbEngine<T, V>
where
    T: Clone + Ord + Debug,
    V: Value,
{
    /// Creates an engine for process `me` in system `cfg`.
    pub fn new(cfg: SystemConfig, me: ProcessId) -> Self {
        RbEngine {
            cfg,
            me,
            instances: Vec::new(),
        }
    }

    /// RB-broadcasts `value` with this process as origin.
    ///
    /// Returns the `INIT` broadcast action; the origin's own `ECHO` follows
    /// when the network loops the `INIT` back (broadcast includes self).
    ///
    /// # Panics
    ///
    /// Panics if this process already RB-broadcast for `tag` — instances are
    /// one-shot.
    pub fn broadcast(&mut self, tag: T, value: V) -> RbActions<T, V> {
        // A Byzantine process may have already sent us forged ECHO/READY
        // naming us as origin, creating the instance entry; only *our own*
        // initiation may exist once.
        let inst = Self::instance(&mut self.instances, self.cfg.n(), self.me, tag.clone());
        assert!(
            !inst.initiated,
            "RB instance ({:?}, {:?}) already used by this origin",
            self.me, tag
        );
        inst.initiated = true;
        RbActions::one(RbAction::Broadcast(RbMsg::Init { tag, value }))
    }

    /// Feeds a received RB message (true sender stamped by the network).
    pub fn on_message(&mut self, from: ProcessId, msg: RbMsg<T, V>) -> RbActions<T, V> {
        match msg {
            RbMsg::Init { tag, value } => self.on_init(from, tag, value),
            RbMsg::Echo { origin, tag, value } => self.on_echo(from, origin, tag, value),
            RbMsg::Ready { origin, tag, value } => self.on_ready(from, origin, tag, value),
        }
    }

    /// Has this process RB-delivered instance `(origin, tag)`?
    pub fn is_delivered(&self, origin: ProcessId, tag: &T) -> bool {
        self.instances
            .get(origin.index())
            .and_then(|tags| tags.iter().rev().find(|(t, _)| t == tag))
            .is_some_and(|(_, i)| i.delivered)
    }

    /// Number of instances with any state (diagnostics).
    pub fn instance_count(&self) -> usize {
        self.instances.iter().map(Vec::len).sum()
    }

    /// The (created-on-demand) instance for `(origin, tag)`.
    fn instance(
        instances: &mut Vec<Vec<(T, Instance<V>)>>,
        n: usize,
        origin: ProcessId,
        tag: T,
    ) -> &mut Instance<V> {
        let idx = origin.index();
        if idx >= instances.len() {
            instances.resize_with(idx + 1, Vec::new);
        }
        let tags = &mut instances[idx];
        // Backwards: the instance being exercised is almost always the most
        // recently created one.
        match tags.iter().rev().position(|(t, _)| *t == tag) {
            Some(back) => {
                let at = tags.len() - 1 - back;
                &mut tags[at].1
            }
            None => {
                tags.push((tag, Instance::sized_for(n)));
                &mut tags.last_mut().expect("just pushed").1
            }
        }
    }

    fn on_init(&mut self, from: ProcessId, tag: T, value: V) -> RbActions<T, V> {
        // The INIT of instance (origin, tag) is only meaningful from the
        // origin itself; a Byzantine process cannot impersonate (§2.1), so
        // `from` *is* the origin.
        let inst = Self::instance(&mut self.instances, self.cfg.n(), from, tag.clone());
        if inst.init_seen {
            return RbActions::NONE; // §2.1: discard duplicate INITs.
        }
        inst.init_seen = true;
        if !inst.echoed {
            inst.echoed = true;
            return RbActions::one(RbAction::Broadcast(RbMsg::Echo {
                origin: from,
                tag,
                value,
            }));
        }
        RbActions::NONE
    }

    fn on_echo(&mut self, from: ProcessId, origin: ProcessId, tag: T, value: V) -> RbActions<T, V> {
        let echo_quorum = self.cfg.echo_threshold();
        let inst = Self::instance(&mut self.instances, self.cfg.n(), origin, tag.clone());
        if inst.echoes.iter().any(|(p, _)| *p == from) {
            return RbActions::NONE; // §2.1 dedup: first ECHO per sender only.
        }
        inst.echoes.push((from, value.clone()));
        if !inst.readied {
            let support = inst.echoes.iter().filter(|(_, v)| *v == value).count();
            if support >= echo_quorum {
                inst.readied = true;
                return RbActions::one(RbAction::Broadcast(RbMsg::Ready { origin, tag, value }));
            }
        }
        RbActions::NONE
    }

    fn on_ready(
        &mut self,
        from: ProcessId,
        origin: ProcessId,
        tag: T,
        value: V,
    ) -> RbActions<T, V> {
        let amplify = self.cfg.ready_amplify_threshold();
        let deliver = self.cfg.ready_threshold();
        let inst = Self::instance(&mut self.instances, self.cfg.n(), origin, tag.clone());
        if inst.readies.iter().any(|(p, _)| *p == from) {
            return RbActions::NONE; // §2.1 dedup: first READY per sender only.
        }
        inst.readies.push((from, value.clone()));
        let support = inst.readies.iter().filter(|(_, v)| *v == value).count();
        let mut actions = RbActions::NONE;
        if !inst.readied && support >= amplify {
            inst.readied = true;
            actions.push(RbAction::Broadcast(RbMsg::Ready {
                origin,
                tag: tag.clone(),
                value: value.clone(),
            }));
        }
        if !inst.delivered && support >= deliver {
            inst.delivered = true;
            actions.push(RbAction::Deliver { origin, tag, value });
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Engine = RbEngine<&'static str, u64>;

    fn cfg() -> SystemConfig {
        SystemConfig::new(4, 1).unwrap()
    }

    fn engines(n: usize) -> Vec<Engine> {
        (0..n)
            .map(|i| RbEngine::new(cfg(), ProcessId::new(i)))
            .collect()
    }

    /// Synchronously runs a message soup to quiescence, FIFO order.
    /// `byzantine` ids are excluded from processing (they only inject).
    fn run_soup(
        engines: &mut [Engine],
        mut wire: Vec<(ProcessId, RbMsg<&'static str, u64>)>,
        byzantine: &[usize],
    ) -> Vec<(usize, ProcessId, u64)> {
        let mut deliveries = Vec::new();
        let mut head = 0;
        while head < wire.len() {
            let (from, msg) = wire[head].clone();
            head += 1;
            for (i, engine) in engines.iter_mut().enumerate() {
                if byzantine.contains(&i) {
                    continue;
                }
                for action in engine.on_message(from, msg.clone()) {
                    match action {
                        RbAction::Broadcast(m) => wire.push((ProcessId::new(i), m)),
                        RbAction::Deliver { origin, value, .. } => {
                            deliveries.push((i, origin, value))
                        }
                    }
                }
            }
        }
        deliveries
    }

    fn start_broadcast(
        engines: &mut [Engine],
        origin: usize,
        tag: &'static str,
        value: u64,
    ) -> Vec<(ProcessId, RbMsg<&'static str, u64>)> {
        engines[origin]
            .broadcast(tag, value)
            .into_iter()
            .map(|a| match a {
                RbAction::Broadcast(m) => (ProcessId::new(origin), m),
                other => panic!("unexpected immediate action {other:?}"),
            })
            .collect()
    }

    #[test]
    fn correct_origin_everyone_delivers() {
        let mut e = engines(4);
        let wire = start_broadcast(&mut e, 0, "x", 7);
        let deliveries = run_soup(&mut e, wire, &[]);
        assert_eq!(deliveries.len(), 4);
        assert!(deliveries
            .iter()
            .all(|&(_, o, v)| o == ProcessId::new(0) && v == 7));
    }

    #[test]
    fn delivery_happens_once_per_instance() {
        let mut e = engines(4);
        let wire = start_broadcast(&mut e, 0, "x", 7);
        let deliveries = run_soup(&mut e, wire, &[]);
        let mut by_process: Vec<usize> = deliveries.iter().map(|&(i, _, _)| i).collect();
        by_process.sort();
        by_process.dedup();
        assert_eq!(by_process.len(), 4, "RB-Unicity violated");
    }

    #[test]
    fn distinct_tags_are_independent_instances() {
        let mut e = engines(4);
        let mut wire = start_broadcast(&mut e, 0, "a", 1);
        wire.extend(start_broadcast(&mut e, 0, "b", 2));
        let deliveries = run_soup(&mut e, wire, &[]);
        assert_eq!(deliveries.len(), 8);
        assert_eq!(deliveries.iter().filter(|&&(_, _, v)| v == 1).count(), 4);
        assert_eq!(deliveries.iter().filter(|&&(_, _, v)| v == 2).count(), 4);
    }

    #[test]
    #[should_panic(expected = "already used")]
    fn origin_cannot_reuse_instance() {
        let mut e = engines(4);
        let _ = e[0].broadcast("x", 1);
        let _ = e[0].broadcast("x", 2);
    }

    #[test]
    fn equivocating_init_yields_agreement_on_one_value() {
        // Byzantine p4 sends INIT(1) to p1, p2 and INIT(2) to p3.
        // Correct processes must not deliver different values
        // (RB-Termination-2 + RB-Unicity); with n = 4, t = 1 the echo
        // quorum is 3, so only a value echoed by ≥ 3 of {p1,p2,p3} can
        // progress — and at most one value can get 3 echoes.
        let mut e = engines(4);
        let byz = ProcessId::new(3);
        let mut wire = Vec::new();
        // Deliver the conflicting INITs directly to the targets.
        let mut deliveries = Vec::new();
        for (target, value) in [(0usize, 1u64), (1, 1), (2, 2)] {
            for action in e[target].on_message(byz, RbMsg::Init { tag: "x", value }) {
                match action {
                    RbAction::Broadcast(m) => wire.push((ProcessId::new(target), m)),
                    RbAction::Deliver { origin, value, .. } => {
                        deliveries.push((target, origin, value))
                    }
                }
            }
        }
        deliveries.extend(run_soup(&mut e, wire, &[3]));
        // With a 2/1 echo split no value reaches the quorum of 3:
        // nobody delivers anything — fine. The critical property: if any
        // correct process delivered, all delivered values agree.
        let values: std::collections::BTreeSet<u64> =
            deliveries.iter().map(|&(_, _, v)| v).collect();
        assert!(
            values.len() <= 1,
            "correct processes delivered different values"
        );
    }

    #[test]
    fn byzantine_echo_flood_cannot_force_wrong_value() {
        // p4 floods READY("x", 99) — a single Byzantine READY (t = 1) is
        // below both the amplification (2) and delivery (3) thresholds.
        let mut e = engines(4);
        let mut actions = Vec::new();
        for engine in e.iter_mut().take(3) {
            actions.extend(engine.on_message(
                ProcessId::new(3),
                RbMsg::Ready {
                    origin: ProcessId::new(3),
                    tag: "x",
                    value: 99,
                },
            ));
        }
        assert!(
            actions.is_empty(),
            "one Byzantine READY must not trigger anything"
        );
    }

    #[test]
    fn ready_amplification_carries_late_processes() {
        // RB-Termination-2 mechanism: a process that saw no INIT/ECHO still
        // delivers after 2t+1 READYs, and t+1 READYs make it broadcast its
        // own READY.
        let mut e = engines(4);
        let mut out = Vec::new();
        // p1 receives READY from p2 and p3 (2 = t+1): amplifies.
        out.extend(e[0].on_message(
            ProcessId::new(1),
            RbMsg::Ready {
                origin: ProcessId::new(1),
                tag: "x",
                value: 5,
            },
        ));
        assert!(out.is_empty());
        out.extend(e[0].on_message(
            ProcessId::new(2),
            RbMsg::Ready {
                origin: ProcessId::new(1),
                tag: "x",
                value: 5,
            },
        ));
        assert!(matches!(out[0], RbAction::Broadcast(RbMsg::Ready { .. })));
        // Its own READY loops back as the 3rd (2t+1): delivers.
        let acts = e[0].on_message(
            ProcessId::new(0),
            RbMsg::Ready {
                origin: ProcessId::new(1),
                tag: "x",
                value: 5,
            },
        );
        assert!(acts
            .iter()
            .any(|a| matches!(a, RbAction::Deliver { value: 5, .. })));
    }

    #[test]
    fn duplicate_messages_from_same_sender_discarded() {
        let mut e = engines(4);
        let ready = RbMsg::Ready {
            origin: ProcessId::new(1),
            tag: "x",
            value: 5,
        };
        // Same sender repeats READY 10 times: counts once.
        let mut actions = Vec::new();
        for _ in 0..10 {
            actions.extend(e[0].on_message(ProcessId::new(2), ready.clone()));
        }
        assert!(
            actions.is_empty(),
            "replays from one sender must not accumulate"
        );
    }

    #[test]
    fn echo_quorum_exact_boundary() {
        let cfg7 = SystemConfig::new(7, 2).unwrap(); // echo threshold 5
        let mut e: RbEngine<&'static str, u64> = RbEngine::new(cfg7, ProcessId::new(0));
        let mut actions = Vec::new();
        for sender in 1..=4 {
            actions.extend(e.on_message(
                ProcessId::new(sender),
                RbMsg::Echo {
                    origin: ProcessId::new(6),
                    tag: "x",
                    value: 9,
                },
            ));
        }
        assert!(actions.is_empty(), "4 echoes < threshold 5");
        actions.extend(e.on_message(
            ProcessId::new(5),
            RbMsg::Echo {
                origin: ProcessId::new(6),
                tag: "x",
                value: 9,
            },
        ));
        assert_eq!(actions.len(), 1, "5th echo crosses the quorum");
        assert!(matches!(
            &actions[0],
            RbAction::Broadcast(RbMsg::Ready { value: 9, .. })
        ));
    }

    #[test]
    fn mixed_value_echoes_do_not_cross_quorum() {
        // 5 echoes but split 3/2 between two values: no READY (n=7, t=2,
        // threshold 5 *per value*).
        let cfg7 = SystemConfig::new(7, 2).unwrap();
        let mut e: RbEngine<&'static str, u64> = RbEngine::new(cfg7, ProcessId::new(0));
        let mut actions = Vec::new();
        for (sender, value) in [(1, 9u64), (2, 9), (3, 9), (4, 8), (5, 8)] {
            actions.extend(e.on_message(
                ProcessId::new(sender),
                RbMsg::Echo {
                    origin: ProcessId::new(6),
                    tag: "x",
                    value,
                },
            ));
        }
        assert!(actions.is_empty());
    }

    #[test]
    fn kind_labels() {
        let m: RbMsg<u8, u8> = RbMsg::Init { tag: 0, value: 0 };
        assert_eq!(m.kind(), "RB_INIT");
        let m: RbMsg<u8, u8> = RbMsg::Echo {
            origin: ProcessId::new(0),
            tag: 0,
            value: 0,
        };
        assert_eq!(m.kind(), "RB_ECHO");
        let m: RbMsg<u8, u8> = RbMsg::Ready {
            origin: ProcessId::new(0),
            tag: 0,
            value: 0,
        };
        assert_eq!(m.kind(), "RB_READY");
    }
}
