//! Broadcast abstractions of the paper: Bracha's reliable broadcast
//! (Section 2.2) and the new cooperative broadcast (Section 2.3, Figure 1).
//!
//! Both are implemented as *engines*: pure state machines hosted inside a
//! network node (the consensus automaton). The host feeds them received
//! messages and applies the actions they emit (best-effort broadcasts and
//! deliveries). This keeps the protocol logic independent of the substrate
//! and directly unit-testable.
//!
//! * [`RbEngine`] — multi-instance Bracha reliable broadcast. An instance is
//!   keyed by `(origin, tag)`; the tag type is generic so one engine
//!   multiplexes every RB use of the consensus stack (`CB_VAL`, `AC_EST`,
//!   `DECIDE`). Implements the paper's §2.1 rule of discarding all but the
//!   first message of each kind from every sender.
//! * [`CbInstance`] — the cooperative broadcast of Figure 1, built on RB:
//!   `cb_valid` collects every value RB-delivered from `t + 1` distinct
//!   processes; the operation returns once `cb_valid` is non-empty.
//!
//! # Example: three correct processes RB-broadcast and deliver
//!
//! ```rust
//! use minsync_broadcast::{RbEngine, RbAction, RbActions};
//! use minsync_types::{ProcessId, SystemConfig};
//!
//! # fn main() -> Result<(), minsync_types::ConfigError> {
//! let cfg = SystemConfig::new(4, 1)?;
//! let mut engines: Vec<RbEngine<&'static str, u64>> = (0..4)
//!     .map(|i| RbEngine::new(cfg, ProcessId::new(i)))
//!     .collect();
//!
//! // p1 RB-broadcasts; relay every emitted broadcast to every engine until
//! // quiescence (a zero-delay, reliable network).
//! let mut wire: Vec<(ProcessId, minsync_broadcast::RbMsg<&'static str, u64>)> = Vec::new();
//! let mut deliveries = Vec::new();
//! let mut apply = |from: ProcessId,
//!                  actions: RbActions<&'static str, u64>,
//!                  wire: &mut Vec<_>,
//!                  deliveries: &mut Vec<_>| {
//!     for a in actions {
//!         match a {
//!             RbAction::Broadcast(m) => wire.push((from, m)),
//!             RbAction::Deliver { origin, value, .. } => deliveries.push((from, origin, value)),
//!         }
//!     }
//! };
//! let acts = engines[0].broadcast("demo", 42);
//! apply(ProcessId::new(0), acts, &mut wire, &mut deliveries);
//! while let Some((from, msg)) = wire.pop() {
//!     for i in 0..4 {
//!         let acts = engines[i].on_message(from, msg.clone());
//!         apply(ProcessId::new(i), acts, &mut wire, &mut deliveries);
//!     }
//! }
//! assert_eq!(deliveries.len(), 4, "all four processes RB-deliver");
//! assert!(deliveries.iter().all(|&(_, o, v)| o == ProcessId::new(0) && v == 42));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cb;
mod rb;

pub use cb::CbInstance;
pub use rb::{ActionsIter, RbAction, RbActions, RbEngine, RbMsg};
